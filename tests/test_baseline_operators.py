"""Correctness tests for the iterator engine's operators.

Each operator is checked against a naive Python evaluation of the same
query over the raw rows.
"""

import pytest

from repro.baseline.engine import IteratorEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    MergeJoin,
    NLJoin,
    Project,
    Sort,
    TableScan,
    UpdateRows,
)


def run(db, plan):
    host, sm, _r, _s = db
    engine = IteratorEngine(sm)
    return engine.run_query(plan)


def test_full_scan(db):
    host, sm, r_rows, _s = db
    rows = run(db, TableScan("r"))
    assert sorted(rows) == sorted(r_rows)


def test_scan_with_predicate_and_projection(db):
    _h, _sm, r_rows, _s = db
    plan = TableScan("r", predicate=Col("grp") == 3, project=["id", "val"])
    rows = run(db, plan)
    expected = [(r[0], r[2]) for r in r_rows if r[1] == 3]
    assert sorted(rows) == sorted(expected)


def test_scan_charges_disk_reads(db):
    host, sm, _r, _s = db
    run(db, TableScan("r"))
    assert host.disk.stats.blocks_read == sm.num_pages("r")


def test_index_scan_clustered_range_ordered(db):
    _h, _sm, r_rows, _s = db
    plan = IndexScan("r", "r_id", lo=50, hi=99, ordered=True)
    rows = run(db, plan)
    expected = sorted(r for r in r_rows if 50 <= r[0] <= 99)
    assert rows == expected  # exact order: clustered key order


def test_index_scan_unclustered(db):
    _h, _sm, r_rows, _s = db
    plan = IndexScan("r", "r_grp", lo=2, hi=2)
    rows = run(db, plan)
    expected = [r for r in r_rows if r[1] == 2]
    assert sorted(rows) == sorted(expected)


def test_index_scan_with_residual_predicate(db):
    _h, _sm, r_rows, _s = db
    plan = IndexScan(
        "r", "r_grp", lo=2, hi=4, predicate=Col("val") > 50.0
    )
    rows = run(db, plan)
    expected = [r for r in r_rows if 2 <= r[1] <= 4 and r[2] > 50.0]
    assert sorted(rows) == sorted(expected)


def test_project_with_expressions(db):
    _h, _sm, r_rows, _s = db
    plan = Project(
        TableScan("r"), ["double_val"], exprs=[Col("val") * 2]
    )
    rows = run(db, plan)
    assert sorted(rows) == sorted((r[2] * 2,) for r in r_rows)


def test_sort_in_memory(db):
    _h, _sm, r_rows, _s = db
    plan = Sort(TableScan("r"), keys=["val"])
    rows = run(db, plan)
    assert rows == sorted(r_rows, key=lambda r: (r[2],))


def test_sort_descending(db):
    _h, _sm, r_rows, _s = db
    plan = Sort(TableScan("r"), keys=["val"], descending=True)
    rows = run(db, plan)
    assert [r[2] for r in rows] == sorted(
        (r[2] for r in r_rows), reverse=True
    )


def test_sort_external_spills(db):
    host, sm, r_rows, _s = db
    engine = IteratorEngine(sm, work_mem_tuples=50)  # forces spills
    plan = Sort(TableScan("r"), keys=["id"])
    proc = sm.sim.spawn(engine.execute(plan))
    sm.sim.run()
    rows = proc.value.rows
    assert rows == sorted(r_rows, key=lambda r: (r[0],))
    assert host.disk.stats.blocks_written > 0  # runs actually spilled


def test_hash_join(db):
    _h, _sm, r_rows, s_rows = db
    plan = HashJoin(TableScan("r"), TableScan("s"), "id", "rid")
    rows = run(db, plan)
    expected = [r + s for s in s_rows for r in r_rows if r[0] == s[1]]
    assert sorted(rows) == sorted(expected)


def test_hash_join_partitioned(db):
    host, sm, r_rows, s_rows = db
    engine = IteratorEngine(sm, work_mem_tuples=40)  # force Grace spill
    plan = HashJoin(TableScan("r"), TableScan("s"), "id", "rid")
    proc = sm.sim.spawn(engine.execute(plan))
    sm.sim.run()
    expected = [r + s for s in s_rows for r in r_rows if r[0] == s[1]]
    assert sorted(proc.value.rows) == sorted(expected)
    assert host.disk.stats.blocks_written > 0


def test_merge_join(db):
    _h, _sm, r_rows, s_rows = db
    plan = MergeJoin(
        Sort(TableScan("r"), keys=["id"]),
        Sort(TableScan("s"), keys=["rid"]),
        "id",
        "rid",
    )
    rows = run(db, plan)
    expected = [r + s for s in s_rows for r in r_rows if r[0] == s[1]]
    assert sorted(rows) == sorted(expected)


def test_merge_join_with_duplicates(db):
    _h, _sm, r_rows, s_rows = db
    # Join on grp (7 distinct values in r) against s.rid%7 via projection.
    plan = MergeJoin(
        Sort(TableScan("r", project=["grp", "val"]), keys=["grp"]),
        Sort(TableScan("s", project=["sid"]), keys=["sid"]),
        "grp",
        "sid",
    )
    rows = run(db, plan)
    expected = [
        (r[1], r[2], s[0])
        for r in r_rows
        for s in s_rows
        if r[1] == s[0]
    ]
    assert sorted(rows) == sorted(expected)


def test_nl_join(db):
    _h, _sm, r_rows, s_rows = db
    plan = NLJoin(
        TableScan("r", project=["id", "grp"]),
        TableScan("s"),
        predicate=Col("id") == Col("rid"),
    )
    rows = run(db, plan)
    expected = [
        (r[0], r[1]) + s for r in r_rows for s in s_rows if r[0] == s[1]
    ]
    assert sorted(rows) == sorted(expected)


def test_single_aggregate(db):
    _h, _sm, r_rows, _s = db
    plan = Aggregate(
        TableScan("r"),
        [
            AggSpec("sum", Col("val"), "sv"),
            AggSpec("count", None, "n"),
            AggSpec("min", Col("id"), "lo"),
            AggSpec("max", Col("id"), "hi"),
            AggSpec("avg", Col("val"), "av"),
        ],
    )
    rows = run(db, plan)
    assert len(rows) == 1
    total = sum(r[2] for r in r_rows)
    assert rows[0][0] == pytest.approx(total)
    assert rows[0][1] == len(r_rows)
    assert rows[0][2] == 0 and rows[0][3] == len(r_rows) - 1
    assert rows[0][4] == pytest.approx(total / len(r_rows))


def test_group_by(db):
    _h, _sm, r_rows, _s = db
    plan = GroupBy(
        TableScan("r"), ["grp"], [AggSpec("count", None, "n")]
    )
    rows = run(db, plan)
    expected = {}
    for r in r_rows:
        expected[r[1]] = expected.get(r[1], 0) + 1
    assert dict(rows) == expected


def test_group_by_on_aggregate_filtered(db):
    _h, _sm, r_rows, _s = db
    plan = GroupBy(
        TableScan("r", predicate=Col("val") > 30.0),
        ["tag"],
        [AggSpec("sum", Col("val"), "sv")],
    )
    rows = run(db, plan)
    expected = {}
    for r in r_rows:
        if r[2] > 30.0:
            expected[r[3]] = expected.get(r[3], 0) + r[2]
    assert {k: pytest.approx(v) for k, v in rows} == expected


def test_insert(db):
    host, sm, _r, _s = db
    plan = InsertRows("s", [(9991, 1, 0.5), (9992, 2, 0.6)])
    rows = run(db, plan)
    assert rows == [(2,)]
    assert sm.num_rows("s") == 122


def test_update(db):
    host, sm, r_rows, _s = db
    plan = UpdateRows(
        "r",
        predicate=Col("grp") == 0,
        apply=lambda row: (row[0], row[1], 0.0, row[3]),
    )
    rows = run(db, plan)
    changed = sum(1 for r in r_rows if r[1] == 0)
    assert rows == [(changed,)]
    stored = sm.catalog.table("r").heap.all_rows()
    assert all(r[2] == 0.0 for r in stored if r[1] == 0)


def test_composed_tpch_like_plan(db):
    """scan -> filter -> join -> group-by composition."""
    _h, _sm, r_rows, s_rows = db
    plan = GroupBy(
        HashJoin(
            TableScan("r", predicate=Col("grp") <= 3),
            TableScan("s"),
            "id",
            "rid",
        ),
        ["grp"],
        [AggSpec("sum", Col("w"), "sw"), AggSpec("count", None, "n")],
    )
    rows = run(db, plan)
    expected = {}
    for s in s_rows:
        r = r_rows[s[1]]
        if r[1] <= 3:
            agg = expected.setdefault(r[1], [0.0, 0])
            agg[0] += s[2]
            agg[1] += 1
    assert {k: (pytest.approx(sw), n) for k, sw, n in rows} == {
        k: (pytest.approx(v[0]), v[1]) for k, v in expected.items()
    }


def test_engine_reports_response_time(db):
    _h, sm, _r, _s = db
    engine = IteratorEngine(sm)
    proc = sm.sim.spawn(engine.execute(TableScan("r")))
    sm.sim.run()
    result = proc.value
    assert result.finished_at > result.submitted_at
    assert result.response_time > 0
