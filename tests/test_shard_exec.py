"""Distributed execution differentials: byte-identical to single-host.

Every test runs real partitioned Wisconsin deployments built by the
harness builder (range-partitioned BIG tables, replicated SMALL) and
compares full result rows -- not digests -- across host counts, engine
backends, and planner strategies.  The reference is always the 1-host
deployment, where every table is unpartitioned and the executor runs
plans locally on the plain engine.
"""

from dataclasses import replace

import pytest

from repro.harness.config import SMOKE, build_sharded_wisconsin_system
from repro.relational.expressions import AggSpec, Between, Col
from repro.relational.plans import (
    Aggregate,
    Gather,
    GroupBy,
    HashJoin,
    Limit,
    MergeJoin,
    Sort,
    TableScan,
)
from repro.sql.planner import UnshardablePlan, plan_distributed

#: Small-but-real deployment: keeps 9 cluster builds per test run cheap.
TINY = replace(SMOKE, name="tiny", wisconsin_big_rows=900)

ENGINES = [
    pytest.param("qpipe", "packets", id="qpipe-packets"),
    pytest.param("dbmsx", "packets", id="dbmsx-iterator"),
    pytest.param("qpipe", "pushed", id="qpipe-pushed"),
]


def _plans():
    """One plan per distribution strategy (built fresh per deployment)."""
    count = AggSpec("count", None)
    return {
        "local": Aggregate(  # replicated table only: runs on one shard
            TableScan("small"), [AggSpec("sum", Col("unique2")), count]
        ),
        "gather": Aggregate(  # partitioned scan, order-insensitive suffix
            TableScan("big1", predicate=Between(Col("onepercent"), 0, 1)),
            [AggSpec("sum", Col("unique2")), count],
        ),
        "shuffle": GroupBy(  # grouped aggregate: hash repartition
            TableScan("big2"),
            ["ten"],
            [AggSpec("sum", Col("unique1")), count],
        ),
        "broadcast": Limit(  # partitioned x partitioned hash join
            HashJoin(
                TableScan(
                    "big2",
                    predicate=Between(Col("unique1"), 0, 60),
                    project=["unique1", "four"],
                ),
                # ordered: the probe order flows through to the LIMIT.
                TableScan(
                    "big1", project=["unique1", "twenty"], alias="b",
                    ordered=True,
                ),
                "unique1",
                "b.unique1",
            ),
            500,
        ),
        "repl-join": Sort(  # replicated build, partitioned probe: gather
            HashJoin(
                TableScan("small", project=["unique1", "unique2"]),
                TableScan(
                    "big1",
                    predicate=Between(Col("unique1"), 0, 300),
                    project=["unique1", "ten"],
                    alias="b",
                ),
                "unique1",
                "b.unique1",
            ),
            ["unique2"],
        ),
    }


def _run_all(engine, backend, hosts, prefer_shuffle=True):
    _cluster, system, executor = build_sharded_wisconsin_system(
        TINY, hosts, system=engine, backend=backend,
        prefer_shuffle=prefer_shuffle,
    )
    rows = {
        name: executor.run_query(plan) for name, plan in _plans().items()
    }
    return rows, executor, system


# ---------------------------------------------------------------------------
# The ISSUE differential: every engine, every host count, same bytes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("engine,backend", ENGINES)
def test_sharded_rows_identical_across_host_counts(engine, backend):
    reference, ref_exec, _ = _run_all(engine, backend, hosts=1)
    assert set(ref_exec.stats.strategies) == {"local"}  # 1 host = no dist
    for hosts in (2, 4):
        rows, executor, _ = _run_all(engine, backend, hosts=hosts)
        for name in reference:
            assert rows[name] == reference[name], (
                f"{name} diverged at {hosts} hosts on {engine}/{backend}"
            )
        assert executor.stats.strategies == {
            "local": 1, "gather": 2, "shuffle": 1, "broadcast": 1,
        }
        assert executor.stats.queries == len(reference)
        assert executor.stats.bytes_shipped > 0


def test_sharded_rows_identical_across_engines():
    """The relational answer is engine-independent, sharded or not."""
    runs = {
        (engine, backend): _run_all(engine, backend, hosts=2)[0]
        for engine, backend in (
            ("qpipe", "packets"), ("dbmsx", "packets"), ("qpipe", "pushed"),
        )
    }
    reference = runs[("qpipe", "packets")]
    for combo, rows in runs.items():
        assert rows == reference, f"{combo} diverged from qpipe/packets"


def test_prefer_shuffle_off_falls_back_to_gather():
    """With shuffle disabled the grouped aggregate gathers raw rows to
    the coordinator instead -- a different exchange pattern, the same
    answer."""
    shuffled, exec_s, _ = _run_all("qpipe", "packets", hosts=2)
    gathered, exec_g, _ = _run_all(
        "qpipe", "packets", hosts=2, prefer_shuffle=False
    )
    assert gathered == shuffled
    assert "shuffle" in exec_s.stats.strategies
    assert "shuffle" not in exec_g.stats.strategies
    assert exec_g.stats.strategies.get("gather") == 3


def test_network_traffic_flows_only_when_partitioned():
    _, exec1, sys1 = _run_all("qpipe", "packets", hosts=1)
    _, exec4, sys4 = _run_all("qpipe", "packets", hosts=4)
    assert sys1.network.stats.messages == 0  # everything is loopback
    assert exec1.stats.bytes_shipped == 0  # nothing is partitioned
    assert sys4.network.stats.messages > 0
    assert sys4.network.stats.bytes_on_wire > 0
    # Coordinator-resident shards exchange over loopback, off the wire.
    assert sys4.network.stats.loopback_messages > 0


# ---------------------------------------------------------------------------
# Planner classification
# ---------------------------------------------------------------------------
def test_planner_picks_documented_strategies():
    _, system, _executor = _run_all("qpipe", "packets", hosts=2)
    catalog = system.catalog
    for expected, plan in _plans().items():
        dist = plan_distributed(plan, catalog)
        want = {"repl-join": "gather"}.get(expected, expected)
        assert dist.strategy == want, f"{expected}: got {dist.strategy}"


def test_planner_rejects_unshardable_shapes():
    _, system, _executor = _run_all("qpipe", "packets", hosts=2)
    catalog = system.catalog
    # MergeJoin's interleaved consumption has no partition-safe rewrite.
    with pytest.raises(UnshardablePlan):
        plan_distributed(
            MergeJoin(
                TableScan("big1", project=["unique1", "two"]),
                TableScan("big2", project=["unique1", "four"], alias="b"),
                "unique1",
                "b.unique1",
            ),
            catalog,
        )
    # Partitioned build with a replicated probe: the probe (driver) side
    # is whole, so neither gather nor broadcast reproduces the answer.
    with pytest.raises(UnshardablePlan):
        plan_distributed(
            HashJoin(
                TableScan("big1", project=["unique1", "two"]),
                TableScan("small", project=["unique1", "four"], alias="b"),
                "unique1",
                "b.unique1",
            ),
            catalog,
        )
    # Explicit exchange operators belong to the planner, not user plans.
    with pytest.raises(UnshardablePlan):
        plan_distributed(Gather(TableScan("big1")), catalog)
