"""Unit tests for the MicroEngine base: workers, queueing, OSP hooks."""

import pytest

from repro.engine.buffers import FanOut, TupleBuffer
from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet, PacketState, QueryContext
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, TableScan


def make_engine(db, **kwargs):
    _h, sm, _r, _s = db
    return QPipeEngine(sm, QPipeConfig(**kwargs))


def make_packet(engine, plan=None, query_id=1):
    plan = plan or TableScan("r")
    query = QueryContext(
        query_id=query_id, plan=plan, sm=engine.sm,
        host_machine=engine.host,
    )
    return engine.dispatcher.build_subtree(
        query, plan, parent=None, parent_order_insensitive=True
    )


def test_workers_spawned_at_construction(db):
    engine = make_engine(db, workers=3)
    assert len(engine.engines["sort"]._worker_procs) == 3
    assert len(engine.engines["fscan"]._worker_procs) == 12  # 4x scans


def test_cancelled_packet_skipped_by_workers(db):
    engine = make_engine(db)
    packet = make_packet(engine)
    packet.state = PacketState.CANCELLED
    engine.engines["fscan"].enqueue(packet)
    engine.sim.run(until=1.0)
    assert packet.state is PacketState.CANCELLED
    assert engine.engines["fscan"].packets_served == 0


def test_packet_marked_done_after_serve(db):
    _h, sm, r_rows, _s = db
    engine = make_engine(db)
    packet = make_packet(engine)
    engine.engines["fscan"].enqueue(packet)
    rows = []

    def reader():
        got = yield from packet.primary_output.drain()
        rows.extend(got)

    engine.sim.spawn(reader())
    engine.sim.run()
    assert packet.state is PacketState.DONE
    assert sorted(rows) == sorted(r_rows)
    assert packet not in engine.engines["fscan"].active


def test_queue_overflow_waits_for_free_worker(db):
    """More packets than workers: the extras queue and run later."""
    _h, sm, r_rows, _s = db
    engine = make_engine(db, workers=1, osp_enabled=False)
    micro = engine.engines["fscan"]
    # fscan gets 4x workers; saturate all of them with held packets.
    packets = [make_packet(engine, query_id=i) for i in range(6)]
    for packet in packets:
        micro.enqueue(packet)
    readers = [
        engine.sim.spawn(p.primary_output.drain()) for p in packets
    ]
    engine.sim.run_until_done(readers)
    assert all(p.state is PacketState.DONE for p in packets)
    assert micro.packets_served == 6


def test_generic_attach_requires_same_signature(db):
    engine = make_engine(db)
    agg_a = make_packet(
        engine,
        Aggregate(TableScan("r"), [AggSpec("count", None, "n")]),
        query_id=1,
    )
    agg_b = make_packet(
        engine,
        Aggregate(TableScan("r"), [AggSpec("sum", Col("val"), "s")]),
        query_id=2,
    )
    micro = engine.engines["agg"]
    micro.active.append(agg_a)
    agg_a.state = PacketState.RUNNING
    assert micro.find_host(agg_b) is None  # different aggregates


def test_generic_attach_rejects_same_query(db):
    engine = make_engine(db)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    first = make_packet(engine, plan, query_id=7)
    second = make_packet(engine, plan, query_id=7)
    second.query = first.query  # same query object
    micro = engine.engines["agg"]
    micro.active.append(first)
    first.state = PacketState.RUNNING
    assert micro.find_host(second) is None


def test_can_attach_respects_replay_window(db):
    engine = make_engine(db, replay_tuples=4)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    host_packet = make_packet(engine, plan, query_id=1)
    newcomer = make_packet(engine, plan, query_id=2)
    host_packet.state = PacketState.RUNNING
    micro = engine.engines["agg"]
    assert micro.can_attach(host_packet, newcomer)  # nothing emitted

    def producer():
        yield from host_packet.output.put([(1,)] * 8)  # exceeds the ring

    def consumer():
        yield from host_packet.primary_output.drain()

    engine.sim.spawn(producer())
    engine.sim.spawn(consumer())
    engine.sim.run(until=1)
    assert not micro.can_attach(host_packet, newcomer)


def test_cancel_subtree_interrupts_running_worker(db):
    _h, sm, _r, _s = db
    engine = make_engine(db, osp_enabled=False)
    root = make_packet(
        engine, Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    )
    engine.dispatcher.enqueue_tree(root)
    engine.sim.run(until=0.01)  # let the scan start
    child = root.children[0]
    assert child.state is PacketState.RUNNING
    root.cancel_subtree()
    engine.sim.run(until=0.02)
    assert child.state is PacketState.CANCELLED
    assert child.output.closed


def test_release_inputs_cancels_orphan_children(db):
    """A parent finishing early cancels children nobody else needs."""
    _h, sm, r_rows, _s = db
    from repro.relational.plans import Limit

    engine = make_engine(db, osp_enabled=False)
    plan = Limit(TableScan("r"), count=3)
    rows = engine.run_query(plan)
    assert len(rows) == 3
    # The scan child must not be left running or queued.
    assert engine.engines["fscan"].active == []
