"""Unit tests for virtual-time synchronisation primitives."""

import pytest

from repro.sim import (
    Channel,
    ChannelClosed,
    Condition,
    Gate,
    Lock,
    Resource,
    Semaphore,
    Simulator,
)


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------
def test_channel_rejects_nonpositive_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, 0)


def test_channel_fifo_order():
    sim = Simulator()
    ch = Channel(sim, capacity=10)
    got = []

    def producer():
        for i in range(5):
            yield ch.put(i)

    def consumer():
        for _ in range(5):
            got.append((yield ch.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_channel_backpressure_blocks_producer():
    sim = Simulator()
    ch = Channel(sim, capacity=2)
    put_times = []

    def producer():
        for i in range(4):
            yield ch.put(i)
            put_times.append(sim.now)

    def consumer():
        for _ in range(4):
            yield sim.timeout(10)
            yield ch.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    # First two puts accepted immediately; later ones gated by consumption.
    assert put_times[0] == 0.0 and put_times[1] == 0.0
    assert put_times[2] == 10.0 and put_times[3] == 20.0


def test_channel_get_blocks_until_item_arrives():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    got = []

    def consumer():
        got.append(((yield ch.get()), sim.now))

    def producer():
        yield sim.timeout(7)
        yield ch.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [("x", 7.0)]


def test_channel_sized_items_respect_capacity():
    sim = Simulator()
    ch = Channel(sim, capacity=100)
    times = []

    def producer():
        yield ch.put("a", size=60)
        times.append(sim.now)
        yield ch.put("b", size=60)  # must wait for 'a' to drain
        times.append(sim.now)

    def consumer():
        yield sim.timeout(5)
        yield ch.get()
        yield ch.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert times == [0.0, 5.0]


def test_channel_item_bigger_than_capacity_fails():
    sim = Simulator()
    ch = Channel(sim, capacity=10)
    caught = []

    def producer():
        try:
            yield ch.put("huge", size=11)
        except ValueError:
            caught.append(True)

    sim.spawn(producer())
    sim.run()
    assert caught == [True]


def test_channel_close_drains_then_raises():
    sim = Simulator()
    ch = Channel(sim, capacity=10)
    got, done = [], []

    def producer():
        yield ch.put(1)
        yield ch.put(2)
        ch.close()

    def consumer():
        while True:
            try:
                got.append((yield ch.get()))
            except ChannelClosed:
                done.append(True)
                break

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [1, 2] and done == [True]


def test_channel_put_after_close_fails():
    sim = Simulator()
    ch = Channel(sim, capacity=10)
    ch.close()
    caught = []

    def producer():
        try:
            yield ch.put(1)
        except ChannelClosed:
            caught.append(True)

    sim.spawn(producer())
    sim.run()
    assert caught == [True]


def test_channel_close_fails_blocked_producers():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    caught = []

    def producer():
        yield ch.put("a")
        try:
            yield ch.put("b")  # blocks: capacity 1
        except ChannelClosed:
            caught.append(sim.now)

    def closer():
        yield sim.timeout(3)
        ch.close()

    sim.spawn(producer())
    sim.spawn(closer())
    sim.run()
    assert caught == [3.0]


def test_channel_try_put():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    assert ch.try_put("a") is True
    assert ch.try_put("b") is False  # full
    got = []

    def consumer():
        got.append((yield ch.get()))

    sim.spawn(consumer())
    sim.run()
    assert got == ["a"]


def test_channel_force_capacity_releases_blocked_producer():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    times = []

    def producer():
        yield ch.put("a")
        yield ch.put("b")
        times.append(sim.now)

    def grower():
        yield sim.timeout(4)
        ch.force_capacity(10)

    sim.spawn(producer())
    sim.spawn(grower())
    sim.run()
    assert times == [4.0]


def test_channel_force_capacity_cannot_shrink():
    sim = Simulator()
    ch = Channel(sim, capacity=5)
    with pytest.raises(ValueError):
        ch.force_capacity(2)


def test_channel_blocked_party_introspection():
    sim = Simulator()
    ch = Channel(sim, capacity=1)

    def producer():
        yield ch.put("a")
        yield ch.put("b", owner="P")

    sim.spawn(producer())
    sim.run()
    assert ch.blocked_producers() == ["P"]
    assert ch.full


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------
def test_resource_serialises_access():
    sim = Simulator()
    disk = Resource(sim, capacity=1, name="disk")
    log = []

    def user(name, service):
        grant = yield disk.request()
        log.append((name, "start", sim.now))
        yield sim.timeout(service)
        disk.release(grant)
        log.append((name, "end", sim.now))

    sim.spawn(user("a", 5))
    sim.spawn(user("b", 3))
    sim.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "end", 5.0),
        ("b", "start", 5.0),
        ("b", "end", 8.0),
    ]


def test_resource_parallel_capacity():
    sim = Simulator()
    cpu = Resource(sim, capacity=2, name="cpu")
    ends = []

    def user(service):
        grant = yield cpu.request()
        yield sim.timeout(service)
        cpu.release(grant)
        ends.append(sim.now)

    for _ in range(4):
        sim.spawn(user(10))
    sim.run()
    # Two run immediately, two queue behind them.
    assert ends == [10.0, 10.0, 20.0, 20.0]


def test_resource_release_when_idle_raises():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    with pytest.raises(Exception):
        r.release()


def test_resource_utilization_accounting():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def user():
        grant = yield r.request()
        yield sim.timeout(4)
        r.release(grant)
        yield sim.timeout(6)

    p = sim.spawn(user())
    sim.run_until_done([p])
    assert r.utilization() == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# Gate, Semaphore, Lock, Condition
# ---------------------------------------------------------------------------
def test_gate_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(name):
        yield gate.wait()
        woke.append((name, sim.now))

    def opener():
        yield sim.timeout(9)
        gate.open()

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(opener())
    sim.run()
    assert woke == [("a", 9.0), ("b", 9.0)]


def test_gate_open_is_sticky():
    sim = Simulator()
    gate = Gate(sim, opened=True)
    woke = []

    def waiter():
        yield gate.wait()
        woke.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert woke == [0.0]


def test_semaphore_counts():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    starts = []

    def user(hold):
        yield sem.acquire()
        starts.append(sim.now)
        yield sim.timeout(hold)
        sem.release()

    for _ in range(3):
        sim.spawn(user(5))
    sim.run()
    assert starts == [0.0, 0.0, 5.0]


def test_lock_is_mutual_exclusion():
    sim = Simulator()
    lock = Lock(sim)
    order = []

    def user(name):
        yield lock.acquire()
        order.append((name, sim.now))
        yield sim.timeout(2)
        lock.release()

    sim.spawn(user("a"))
    sim.spawn(user("b"))
    sim.run()
    assert order == [("a", 0.0), ("b", 2.0)]


def test_condition_notify_all():
    sim = Simulator()
    cond = Condition(sim)
    woke = []

    def waiter(name):
        value = yield cond.wait()
        woke.append((name, value, sim.now))

    def notifier():
        yield sim.timeout(3)
        assert cond.notify_all("go") == 2

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(notifier())
    sim.run()
    assert woke == [("a", "go", 3.0), ("b", "go", 3.0)]


def test_condition_notify_one():
    sim = Simulator()
    cond = Condition(sim)
    woke = []

    def waiter(name):
        yield cond.wait()
        woke.append(name)

    def notifier():
        yield sim.timeout(1)
        cond.notify()

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.spawn(notifier())
    sim.run(until=100)
    assert woke == ["a"]
