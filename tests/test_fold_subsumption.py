"""Unit tests for the predicate subsumption lattice (repro.sql.planner).

The fold coordinator admits a mid-scan member only when
``predicate_implies(member, wide)`` proves the member's rows are a
subset of what the widened scan already emits -- so soundness here is a
correctness property of folding, not just a planner nicety.
"""

from repro.relational.expressions import And, Between, Col, InList, Like, Or
from repro.sql.planner import (
    fold_union,
    normalize_predicate,
    predicate_implies,
    predicate_selectivity,
)


def between(col, lo, hi):
    return Between(Col(col), lo, hi)


# ---------------------------------------------------------------------------
# predicate_implies
# ---------------------------------------------------------------------------
def test_none_is_match_everything():
    assert predicate_implies(between("a", 0, 10), None)
    assert predicate_implies(None, None)
    assert not predicate_implies(None, between("a", 0, 10))


def test_identical_signatures_imply():
    p = between("unique1", 0, 100)
    q = between("unique1", 0, 100)
    assert predicate_implies(p, q)


def test_nested_ranges_imply_wider():
    assert predicate_implies(between("a", 10, 20), between("a", 0, 100))
    assert not predicate_implies(between("a", 0, 100), between("a", 10, 20))
    # Partial overlap proves nothing either way.
    assert not predicate_implies(between("a", 0, 50), between("a", 25, 75))


def test_comparison_atoms():
    assert predicate_implies(Col("a") < 5, Col("a") < 10)
    assert not predicate_implies(Col("a") < 10, Col("a") < 5)
    # Strictness at the shared bound: a < 5 entails a <= 5, not vice versa.
    assert predicate_implies(Col("a") < 5, Col("a") <= 5)
    assert not predicate_implies(Col("a") <= 5, Col("a") < 5)
    assert predicate_implies(Col("a") > 7, Col("a") >= 7)
    # Constant-on-the-left comparisons are flipped, not misread.
    flipped = 10 > Col("a")  # noqa: SIM300 -- the flip is the point
    assert predicate_implies(flipped, Col("a") < 11)


def test_equality_and_in_lists():
    assert predicate_implies(Col("a") == 3, InList(Col("a"), [1, 3, 5]))
    assert not predicate_implies(Col("a") == 4, InList(Col("a"), [1, 3, 5]))
    assert predicate_implies(InList(Col("a"), [1, 3]), between("a", 0, 10))
    assert not predicate_implies(between("a", 0, 10), InList(Col("a"), [1, 3]))


def test_conjunctions():
    p = And(between("a", 10, 20), between("b", 0, 5))
    assert predicate_implies(p, between("a", 0, 100))
    assert predicate_implies(p, And(between("a", 0, 100), between("b", 0, 9)))
    # The conjunct order must not matter.
    assert predicate_implies(
        And(between("b", 0, 5), between("a", 10, 20)),
        And(between("a", 0, 100), between("b", 0, 9)),
    )
    assert not predicate_implies(between("a", 10, 20), p)


def test_disjunctions():
    p = Or(between("a", 0, 10), between("a", 50, 60))
    assert predicate_implies(p, between("a", 0, 100))
    assert predicate_implies(between("a", 2, 4), p)
    assert not predicate_implies(between("a", 0, 100), p)


def test_different_columns_never_imply():
    assert not predicate_implies(between("a", 0, 10), between("b", 0, 100))


def test_unsupported_atoms_fail_closed():
    # LIKE has no domain form: implication must refuse, not guess.
    fuzzy = Like(Col("name"), "%x%")
    assert not predicate_implies(fuzzy, between("a", 0, 10))
    assert predicate_implies(fuzzy, None)
    # As a *conjunct of p* it only narrows p, so it is sound to ignore.
    assert predicate_implies(And(fuzzy, between("a", 2, 4)),
                             between("a", 0, 10))
    # As a conjunct of q it must block the proof.
    assert not predicate_implies(between("a", 2, 4),
                                 And(fuzzy, between("a", 0, 10)))


# ---------------------------------------------------------------------------
# normalize_predicate / fold_union / selectivity
# ---------------------------------------------------------------------------
def test_normalize_intersects_per_column():
    domains = normalize_predicate(
        And(between("a", 0, 100), Col("a") <= 50, Col("b") == 7)
    )
    assert domains is not None
    assert domains["a"].lo == 0 and domains["a"].hi == 50
    assert domains["b"].allowed == {7}


def test_fold_union_prefers_the_wider_side():
    wide = between("a", 0, 100)
    narrow = between("a", 10, 20)
    assert fold_union(wide, narrow) is wide
    assert fold_union(narrow, wide) is wide
    assert fold_union(wide, None) is None
    disjoint = fold_union(between("a", 0, 10), between("a", 50, 60))
    assert isinstance(disjoint, Or) and len(disjoint.terms) == 2
    # Widening again flattens instead of nesting Or-of-Or.
    wider = fold_union(disjoint, between("a", 80, 90))
    assert isinstance(wider, Or) and len(wider.terms) == 3


def test_fold_union_stays_a_superset():
    """Rows matching either input always match the union (sampled)."""
    p, q = between("a", 0, 10), between("a", 5, 60)
    union = fold_union(p, q)
    from repro.relational.schema import Column, Schema

    schema = Schema([Column("a", "int")])
    bound = {e.signature(): e.bind(schema) for e in (p, q, union)}
    for v in range(-5, 70):
        row = (v,)
        if bound[p.signature()](row) or bound[q.signature()](row):
            assert bound[union.signature()](row)


def test_selectivity_monotone_under_narrowing():
    assert predicate_selectivity(None) == 1.0
    wide = predicate_selectivity(between("unique1", 0, 1000))
    narrow = predicate_selectivity(between("unique1", 0, 100))
    assert 0.0 < narrow <= wide <= 1.0
