"""The write-ahead lineage log and tracker primitives.

Covers the checksummed record format (intact / torn detection), the
durable-frontier contract (``durable()`` truncates strictly before the
first torn record), WAL-style block charging on flush, the injected
log-fault flags, deterministic serialisation, and the tracker's
contiguity checking plus frontier arithmetic.
"""

import pytest

from repro.faults.errors import LogWriteError
from repro.hw.disk import Disk
from repro.hw.host import Host, HostConfig
from repro.lineage import LineageLog, LineageRecord, LineageTracker
from repro.lineage.tracker import resume_shape
from repro.relational.expressions import AggSpec
from repro.relational.plans import Aggregate, Filter, TableScan


def make_log(records_per_block=4):
    host = Host(HostConfig())
    device = Disk(host.sim, transfer_time=0.004, seek_time=0.0,
                  name="lineage-log")
    return host, LineageLog(host.sim, device, query_id=7,
                            records_per_block=records_per_block)


def run_flush(host, log):
    proc = host.sim.spawn(log.flush(), name="flush")
    host.sim.run()
    assert proc.alive is False
    return proc


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------
def test_record_checksum_roundtrip():
    rec = LineageRecord.make(seq=0, kind="batch", rows=40, table="r",
                             first_page=0, pages=4)
    assert rec.intact
    wire = rec.to_wire()
    again = LineageRecord(**wire)
    assert again.intact and again == rec


def test_record_detects_corruption():
    rec = LineageRecord.make(seq=1, kind="batch", rows=40)
    from dataclasses import replace

    assert not replace(rec, rows=41).intact
    assert not replace(rec, checksum=rec.checksum ^ 1).intact


# ---------------------------------------------------------------------------
# The log
# ---------------------------------------------------------------------------
def test_flush_charges_blocks_and_advances_frontier():
    host, log = make_log(records_per_block=4)
    for i in range(5):
        log.append("batch", rows=10 * (i + 1), table="r",
                   first_page=0, pages=i + 1)
    assert log.flushed == -1 and log.durable() == []
    run_flush(host, log)
    # 5 records at 4/block -> 2 sequential block writes.
    assert log.blocks_written == 2
    assert log.flushed == 4
    assert [r.rows for r in log.durable()] == [10, 20, 30, 40, 50]
    # Idempotent: nothing pending, no extra blocks.
    run_flush(host, log)
    assert log.blocks_written == 2


def test_flush_failure_keeps_records_volatile():
    host, log = make_log()
    log.append("batch", rows=10, table="r", first_page=0, pages=1)
    log.fail_next_flush = True
    log.fail_transient = False

    def driver():
        with pytest.raises(LogWriteError) as info:
            yield from log.flush()
        assert info.value.transient is False
        return True

    proc = host.sim.spawn(driver(), name="driver")
    host.sim.run()
    assert proc.value is True
    assert log.flushed == -1 and log.blocks_written == 0
    # The flag is consumed: the retry succeeds.
    run_flush(host, log)
    assert log.flushed == 0


def test_torn_tail_truncates_durable_prefix():
    host, log = make_log()
    for i in range(3):
        log.append("batch", rows=10 * (i + 1), table="r",
                   first_page=0, pages=i + 1)
    log.tear_next_flush = True
    run_flush(host, log)
    assert log.flushed == 2
    durable = log.durable()
    # The torn tail is excluded; the intact prefix survives.
    assert [r.rows for r in durable] == [10, 20]
    assert all(r.intact for r in durable)


def test_serialize_is_deterministic():
    _, log_a = make_log()
    _, log_b = make_log()
    for log in (log_a, log_b):
        log.append("batch", rows=10, table="r", first_page=0, pages=1)
        log.append("checkpoint", rows=80, pages=8,
                   payload=[[3, 1.5, None]])
    assert log_a.serialize() == log_b.serialize()


# ---------------------------------------------------------------------------
# The tracker
# ---------------------------------------------------------------------------
def test_resume_shape_classification():
    scan = TableScan("r")
    assert resume_shape(scan) == "scan"
    agg = Aggregate(scan, [AggSpec("count", None, "n")])
    assert resume_shape(agg) == "agg"
    assert resume_shape(Filter(scan, lambda row: True)) is None


def test_tracker_frontier_arithmetic():
    host, log = make_log()
    tracker = LineageTracker(host.sim, log, TableScan("r"))
    for page, rows_out in enumerate((10, 0, 7)):
        tracker.scan_page("s1", "r", page, rows_out, num_pages=8)
    # 12 delivered rows cover pages 0..1 (10 + 0 rows); page 2 is
    # partially consumed and must be rescanned.
    tracker.rows = 12
    assert tracker.frontier() == (2, 10)
    # 17 rows cover all three scanned pages.
    tracker.rows = 17
    assert tracker.frontier() == (3, 17)


def test_tracker_breaks_on_noncontiguous_pages():
    host, log = make_log()
    tracker = LineageTracker(host.sim, log, TableScan("r"))
    tracker.scan_page("s1", "r", 5, 10, num_pages=8)
    tracker.scan_page("s1", "r", 6, 10, num_pages=8)
    assert not tracker.broken
    tracker.scan_page("s1", "r", 3, 10, num_pages=8)  # gap
    assert tracker.broken


def test_tracker_allows_circular_wraparound():
    host, log = make_log()
    tracker = LineageTracker(host.sim, log, TableScan("r"))
    for i in range(4):
        page = (6 + i) % 8
        tracker.scan_page("s1", "r", page, 10, num_pages=8)
    assert not tracker.broken
    assert tracker.first_page == 6
