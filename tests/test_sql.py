"""SQL front-end tests: lexer, parser, planner, end-to-end on both engines."""

import pytest

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.sql import SqlError, plan, run, tokenize
from repro.sql.parser import parse


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_tokenize_basics():
    assert kinds("SELECT a, 1.5 FROM t") == [
        ("KEYWORD", "SELECT"),
        ("IDENT", "a"),
        ("SYMBOL", ","),
        ("NUMBER", "1.5"),
        ("KEYWORD", "FROM"),
        ("IDENT", "t"),
    ]


def test_tokenize_strings_and_comments():
    tokens = kinds("SELECT 'hello' -- a comment\nFROM t")
    assert ("STRING", "hello") in tokens
    assert all(value not in ("a", "comment") for _k, value in tokens)


def test_tokenize_qualified_names_vs_decimals():
    assert kinds("a.b 1.5 c.2") [0:3] == [
        ("IDENT", "a"), ("SYMBOL", "."), ("IDENT", "b"),
    ]


def test_tokenize_rejects_garbage():
    with pytest.raises(SqlError):
        tokenize("SELECT ;")


def test_tokenize_unterminated_string():
    with pytest.raises(SqlError):
        tokenize("SELECT 'oops")


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def test_parse_full_statement():
    stmt = parse(
        "SELECT grp, COUNT(*) AS n FROM r WHERE val > 10 "
        "GROUP BY grp HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 3"
    )
    assert len(stmt.items) == 2
    assert stmt.items[1].alias == "n"
    assert stmt.group_by[0].name == "grp"
    assert stmt.having is not None
    assert stmt.order_by[0].descending
    assert stmt.limit == 3


def test_parse_joins():
    stmt = parse(
        "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.y = c.z"
    )
    assert [t.join_type for t in stmt.tables] == ["inner", "inner", "left"]
    assert stmt.tables[1].condition is not None


def test_parse_aliases():
    stmt = parse("SELECT o.id FROM orders AS o, lineitem l")
    assert stmt.tables[0].alias == "o"
    assert stmt.tables[1].alias == "l"


def test_parse_between_in_like():
    stmt = parse(
        "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) "
        "AND c LIKE 'x%' AND d IS NOT NULL"
    )
    assert stmt.where is not None


def test_parse_date_literal():
    stmt = parse("SELECT * FROM t WHERE d >= DATE '1995-01-01'")
    # 1995-01-01 is 9131 days after the epoch.
    assert "9131" in repr(stmt.where.right.value)


def test_parse_errors():
    for bad in (
        "SELECT",  # missing FROM
        "SELECT * FROM",  # missing table
        "SELECT a FROM t WHERE",  # missing predicate
        "SELECT SUM(*) FROM t",  # SUM(*) invalid
        "SELECT * FROM t LIMIT x",  # LIMIT wants a number
    ):
        with pytest.raises(SqlError):
            parse(bad)


# ---------------------------------------------------------------------------
# Planner + execution (both engines, vs raw rows)
# ---------------------------------------------------------------------------
def run_sql(db, sql, ordered=False):
    _h, sm, _r, _s = db
    reference = run(IteratorEngine(sm), sql)
    qpipe = run(QPipeEngine(sm, QPipeConfig()), sql)
    if ordered:
        assert qpipe == reference
    else:
        assert sorted(qpipe) == sorted(reference)
    return reference


def test_select_star(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(db, "SELECT * FROM r")
    assert sorted(rows) == sorted(r_rows)


def test_select_columns_with_pushdown(db):
    _h, sm, r_rows, _s = db
    sql = "SELECT id, val FROM r WHERE grp = 3 AND val > 20"
    rows = run_sql(db, sql)
    expected = [(r[0], r[2]) for r in r_rows if r[1] == 3 and r[2] > 20]
    assert sorted(rows) == sorted(expected)
    # The predicate was pushed into the scan, not a Filter above it.
    from repro.relational.plans import Project, TableScan

    compiled = plan(sql, sm.catalog)
    assert isinstance(compiled, Project)
    assert isinstance(compiled.child, TableScan)
    assert compiled.child.predicate is not None


def test_computed_select_items(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(db, "SELECT val * 2 AS double_val FROM r WHERE id < 5")
    assert sorted(rows) == sorted((r[2] * 2,) for r in r_rows if r[0] < 5)


def test_between_in_like_execution(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(
        db,
        "SELECT id FROM r WHERE grp BETWEEN 2 AND 4 "
        "AND tag IN ('t1', 't2') AND tag LIKE 't%'",
    )
    expected = [
        (r[0],)
        for r in r_rows
        if 2 <= r[1] <= 4 and r[3] in ("t1", "t2")
    ]
    assert sorted(rows) == sorted(expected)


def test_group_by_with_having(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(
        db,
        "SELECT grp, COUNT(*) AS n, SUM(val) AS sv FROM r "
        "GROUP BY grp HAVING COUNT(*) > 40",
    )
    counts = {}
    sums = {}
    for r in r_rows:
        counts[r[1]] = counts.get(r[1], 0) + 1
        sums[r[1]] = sums.get(r[1], 0.0) + r[2]
    expected = [
        (g, counts[g], pytest.approx(sums[g]))
        for g in counts
        if counts[g] > 40
    ]
    assert sorted(rows) == sorted(expected)


def test_global_aggregates(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(
        db, "SELECT COUNT(*), MIN(id), MAX(id), AVG(val) FROM r"
    )
    assert rows[0][0] == len(r_rows)
    assert rows[0][1] == 0 and rows[0][2] == len(r_rows) - 1
    assert rows[0][3] == pytest.approx(
        sum(r[2] for r in r_rows) / len(r_rows)
    )


def test_order_by_and_limit(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(
        db, "SELECT id, val FROM r ORDER BY val DESC LIMIT 5", ordered=True
    )
    expected = sorted(
        ((r[0], r[2]) for r in r_rows), key=lambda t: t[1], reverse=True
    )[:5]
    assert rows == expected


def test_limit_offset(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(
        db, "SELECT id FROM r ORDER BY id LIMIT 4 OFFSET 10", ordered=True
    )
    assert rows == [(i,) for i in range(10, 14)]


def test_distinct(db):
    _h, _sm, r_rows, _s = db
    rows = run_sql(db, "SELECT DISTINCT grp FROM r")
    assert sorted(rows) == sorted({(r[1],) for r in r_rows})


def test_explicit_join(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT r.id, s.w FROM r JOIN s ON r.id = s.rid WHERE s.w > 5",
    )
    expected = [
        (r[0], s[2]) for s in s_rows for r in r_rows
        if r[0] == s[1] and s[2] > 5
    ]
    assert sorted(rows) == sorted(expected)


def test_comma_join_uses_where_equality(db):
    _h, sm, r_rows, s_rows = db
    sql = "SELECT r.id FROM r, s WHERE r.id = s.rid AND s.w > 5"
    rows = run_sql(db, sql)
    expected = [
        (r[0],) for s in s_rows for r in r_rows
        if r[0] == s[1] and s[2] > 5
    ]
    assert sorted(rows) == sorted(expected)
    # The equality became a hash join, not a filtered cross product.
    from repro.relational.plans import HashJoin, walk_plan

    compiled = plan(sql, sm.catalog)
    assert any(isinstance(n, HashJoin) for n in walk_plan(compiled))


def test_left_join(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT r.id, s.sid FROM r LEFT JOIN s ON r.id = s.rid",
    )
    referenced = {s[1] for s in s_rows}
    unmatched = [row for row in rows if row[1] is None]
    assert len(unmatched) == sum(
        1 for r in r_rows if r[0] not in referenced
    )


def test_three_way_join(db):
    """r x s x r (self-join through s) with aliases."""
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT a.id, b.id FROM r a JOIN s ON a.id = s.rid "
        "JOIN r b ON s.rid = b.id",
    )
    expected = [(s[1], s[1]) for s in s_rows]
    assert sorted(rows) == sorted(expected)


def test_group_by_over_join(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT r.grp, SUM(s.w) AS total FROM r JOIN s ON r.id = s.rid "
        "GROUP BY r.grp ORDER BY total",
    )
    expected = {}
    for s in s_rows:
        grp = r_rows[s[1]][1]
        expected[grp] = expected.get(grp, 0.0) + s[2]
    assert {g: pytest.approx(v) for g, v in rows} == expected
    totals = [v for _g, v in rows]
    assert totals == sorted(totals)


def test_ambiguous_column_rejected(db):
    _h, sm, _r, _s = db
    # both big1-style fixtures: r and s share no names, so fabricate one
    with pytest.raises(SqlError):
        plan("SELECT id FROM r a, r b", sm.catalog)


def test_unknown_column_rejected(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan("SELECT nope FROM r", sm.catalog)


def test_ungrouped_column_rejected(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan("SELECT id, COUNT(*) FROM r GROUP BY grp", sm.catalog)


def test_mixed_sort_direction_rejected(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan("SELECT id, val FROM r ORDER BY id ASC, val DESC", sm.catalog)


def test_sql_q6_matches_plan_builder(tpch_sql_db):
    """The TPC-H Q6 written as SQL agrees with the hand-built plan."""
    host, sm = tpch_sql_db
    from repro.workloads.tpch import queries as Q

    sql = """
    SELECT SUM(l_extendedprice * l_discount) AS revenue
    FROM lineitem
    WHERE l_shipdate >= DATE '1996-01-01'
      AND l_shipdate < DATE '1997-01-01'
      AND l_discount BETWEEN 0.059 AND 0.081
      AND l_quantity < 24
    """
    engine = IteratorEngine(sm)
    got = run(engine, sql)
    # Equivalent hand-built plan.
    from repro.relational.expressions import AggSpec, Col
    from repro.relational.plans import Aggregate, TableScan
    from repro.workloads.tpch.schema import date_int

    pred = (
        (Col("l_shipdate") >= date_int(1996, 1, 1))
        & (Col("l_shipdate") < date_int(1997, 1, 1))
        & (Col("l_discount") >= 0.059)
        & (Col("l_discount") <= 0.081)
        & (Col("l_quantity") < 24)
    )
    manual = engine.run_query(
        Aggregate(
            TableScan("lineitem", predicate=pred),
            [AggSpec("sum", Col("l_extendedprice") * Col("l_discount"), "r")],
        )
    )
    assert got[0][0] == pytest.approx(manual[0][0])


import pytest as _pytest


@_pytest.fixture(scope="module")
def tpch_sql_db():
    from repro.hw.host import Host, HostConfig
    from repro.storage.manager import StorageManager
    from repro.workloads.tpch import TpchScale, load_tpch

    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=256)
    load_tpch(sm, TpchScale(factor=0.03), seed=3)
    return host, sm


# ---------------------------------------------------------------------------
# EXISTS / NOT EXISTS subqueries (semi/anti joins)
# ---------------------------------------------------------------------------
def test_exists_subquery(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT id FROM r WHERE EXISTS "
        "(SELECT * FROM s WHERE s.rid = r.id AND s.w > 5)",
    )
    heavy = {s[1] for s in s_rows if s[2] > 5}
    assert sorted(rows) == sorted((r[0],) for r in r_rows if r[0] in heavy)


def test_not_exists_subquery(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT id FROM r WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.rid = r.id)",
    )
    referenced = {s[1] for s in s_rows}
    assert sorted(rows) == sorted(
        (r[0],) for r in r_rows if r[0] not in referenced
    )


def test_exists_composes_with_other_predicates(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT id FROM r WHERE grp = 2 AND EXISTS "
        "(SELECT * FROM s WHERE s.rid = r.id)",
    )
    referenced = {s[1] for s in s_rows}
    assert sorted(rows) == sorted(
        (r[0],) for r in r_rows if r[1] == 2 and r[0] in referenced
    )


def test_exists_compiles_to_semijoin(db):
    _h, sm, _r, _s = db
    from repro.relational.plans import AntiJoin, SemiJoin, walk_plan

    semi = plan(
        "SELECT id FROM r WHERE EXISTS (SELECT * FROM s WHERE s.rid = r.id)",
        sm.catalog,
    )
    assert any(isinstance(n, SemiJoin) for n in walk_plan(semi))
    anti = plan(
        "SELECT id FROM r WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.rid = r.id)",
        sm.catalog,
    )
    assert any(isinstance(n, AntiJoin) for n in walk_plan(anti))


def test_spec_exact_q4_in_sql(tpch_sql_db):
    """TPC-H Q4 written as its specification SQL (EXISTS form)."""
    host, sm = tpch_sql_db
    sql = """
    SELECT o_orderpriority, COUNT(*) AS order_count
    FROM orders
    WHERE o_orderdate >= DATE '1995-03-01'
      AND o_orderdate < DATE '1995-05-30'
      AND EXISTS (
        SELECT * FROM lineitem
        WHERE l_orderkey = o_orderkey
          AND l_commitdate < l_receiptdate
      )
    GROUP BY o_orderpriority
    ORDER BY o_orderpriority
    """
    got = run(IteratorEngine(sm), sql)
    # Naive reference over the raw rows.
    import datetime

    epoch = datetime.date(1970, 1, 1)
    lo = (datetime.date(1995, 3, 1) - epoch).days
    hi = (datetime.date(1995, 5, 30) - epoch).days
    li = sm.catalog.table("lineitem").heap.all_rows()
    orders = sm.catalog.table("orders").heap.all_rows()
    late = {l[0] for l in li if l[11] < l[12]}
    expected = {}
    for o in orders:
        if lo <= o[4] < hi and o[0] in late:
            expected[o[6]] = expected.get(o[6], 0) + 1
    assert dict(got) == expected
    assert [g for g, _n in got] == sorted(expected)


def test_exists_error_cases(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan(  # no correlation equality
            "SELECT id FROM r WHERE EXISTS (SELECT * FROM s WHERE w > 1)",
            sm.catalog,
        )
    with pytest.raises(SqlError):
        plan(  # multi-table subquery unsupported
            "SELECT id FROM r WHERE EXISTS "
            "(SELECT * FROM s, r WHERE s.rid = r.id)",
            sm.catalog,
        )


# ---------------------------------------------------------------------------
# DML statements
# ---------------------------------------------------------------------------
def test_insert_statement(db):
    _h, sm, r_rows, _s = db
    before = sm.num_rows("r")
    result = run_sql_dml(
        db, "INSERT INTO r VALUES (7001, 1, 2.5, 'zz'), (7002, 2, 3.5, 'yy')"
    )
    assert result == [(2,)]
    assert sm.num_rows("r") == before + 2


def test_insert_arity_checked_in_sql(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan("INSERT INTO r VALUES (1, 2)", sm.catalog)


def test_update_statement(db):
    _h, sm, r_rows, _s = db
    result = run_sql_dml(db, "UPDATE r SET val = 0 WHERE grp = 5")
    expected = sum(1 for r in r_rows if r[1] == 5)
    assert result == [(expected,)]
    stored = sm.catalog.table("r").heap.all_rows()
    assert all(r[2] == 0 for r in stored if r[1] == 5)


def test_update_with_expression(db):
    _h, sm, r_rows, _s = db
    run_sql_dml(db, "UPDATE r SET val = val + 100 WHERE id = 0")
    stored = {r[0]: r for r in sm.catalog.table("r").heap.all_rows()}
    assert stored[0][2] == pytest.approx(r_rows[0][2] + 100)


def test_delete_statement(db):
    _h, sm, r_rows, _s = db
    before = sm.num_rows("r")
    victims = sum(1 for r in r_rows if r[1] == 6)
    result = run_sql_dml(db, "DELETE FROM r WHERE grp = 6")
    assert result == [(victims,)]
    assert sm.num_rows("r") == before - victims
    survivors = sm.catalog.table("r").heap.all_rows()
    assert all(r[1] != 6 for r in survivors)


def test_delete_unknown_column_rejected(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan("DELETE FROM r WHERE nope = 1", sm.catalog)


def run_sql_dml(db, sql):
    """DML mutates shared state: run on one engine only."""
    _h, sm, _r, _s = db
    return run(IteratorEngine(sm), sql)


# ---------------------------------------------------------------------------
# Join planning corner cases
# ---------------------------------------------------------------------------
def test_cross_join_without_equality_uses_nljoin(db):
    _h, sm, r_rows, s_rows = db
    sql = "SELECT r.id, s.sid FROM r, s WHERE r.grp = 6 AND s.w > 9"
    rows = run_sql(db, sql)
    expected = [
        (r[0], s[0]) for r in r_rows for s in s_rows
        if r[1] == 6 and s[2] > 9
    ]
    assert sorted(rows) == sorted(expected)
    from repro.relational.plans import NLJoin, walk_plan

    compiled = plan(sql, sm.catalog)
    assert any(isinstance(n, NLJoin) for n in walk_plan(compiled))


def test_extra_on_conjuncts_become_filters(db):
    _h, sm, r_rows, s_rows = db
    sql = (
        "SELECT r.id FROM r JOIN s ON r.id = s.rid AND s.w > 5 "
        "WHERE r.grp < 3"
    )
    rows = run_sql(db, sql)
    expected = [
        (r[0],) for s in s_rows for r in r_rows
        if r[0] == s[1] and s[2] > 5 and r[1] < 3
    ]
    assert sorted(rows) == sorted(expected)


def test_multi_table_residual_predicate(db):
    """A non-equality cross-table conjunct lands in a Filter."""
    _h, sm, r_rows, s_rows = db
    sql = "SELECT r.id FROM r JOIN s ON r.id = s.rid WHERE r.val > s.w"
    rows = run_sql(db, sql)
    by_id = {r[0]: r for r in r_rows}
    expected = [
        (s[1],) for s in s_rows
        if s[1] in by_id and by_id[s[1]][2] > s[2]
    ]
    assert sorted(rows) == sorted(expected)


def test_qualified_star_not_supported_cleanly(db):
    _h, sm, _r, _s = db
    with pytest.raises(SqlError):
        plan("SELECT id, * FROM r", sm.catalog)


def test_order_by_qualified_column_in_join(db):
    _h, _sm, r_rows, s_rows = db
    rows = run_sql(
        db,
        "SELECT r.id, s.w FROM r JOIN s ON r.id = s.rid ORDER BY w",
        ordered=True,
    )
    weights = [row[1] for row in rows]
    assert weights == sorted(weights)
