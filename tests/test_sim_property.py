"""Property tests for the DES kernel under random interleavings.

Invariants:

* channel conservation -- every item put is either delivered or still
  buffered; FIFO order holds per channel;
* resource conservation -- grants never exceed capacity, and every
  acquisition is eventually released;
* determinism -- the same program yields the same trace.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Resource, Simulator


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_producers=st.integers(1, 4),
    n_consumers=st.integers(1, 4),
    items_each=st.integers(1, 20),
    capacity=st.integers(1, 8),
)
def test_property_channel_conserves_items(
    seed, n_producers, n_consumers, items_each, capacity
):
    rng = random.Random(seed)
    sim = Simulator()
    ch = Channel(sim, capacity=capacity)
    delivered = []
    total = n_producers * items_each
    delays = [rng.uniform(0, 5) for _ in range(n_producers + n_consumers)]

    def producer(pid, delay):
        yield sim.timeout(delay)
        for i in range(items_each):
            yield ch.put((pid, i))

    def consumer(delay, quota):
        yield sim.timeout(delay)
        for _ in range(quota):
            item = yield ch.get()
            delivered.append(item)

    # Partition the consumption quota over the consumers.
    quotas = [total // n_consumers] * n_consumers
    quotas[0] += total - sum(quotas)
    procs = []
    for pid in range(n_producers):
        procs.append(sim.spawn(producer(pid, delays[pid])))
    for cid in range(n_consumers):
        procs.append(
            sim.spawn(consumer(delays[n_producers + cid], quotas[cid]))
        )
    sim.run_until_done(procs)
    # Conservation: every item delivered exactly once.
    assert sorted(delivered) == sorted(
        (pid, i) for pid in range(n_producers) for i in range(items_each)
    )
    # Per-producer FIFO: each producer's items arrive in order.
    for pid in range(n_producers):
        seq = [i for p, i in delivered if p == pid]
        assert seq == sorted(seq)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    capacity=st.integers(1, 4),
    n_users=st.integers(1, 10),
)
def test_property_resource_never_overcommits(seed, capacity, n_users):
    rng = random.Random(seed)
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    peak = [0]

    def user(delay, hold):
        yield sim.timeout(delay)
        grant = yield res.request()
        peak[0] = max(peak[0], res.in_use)
        assert res.in_use <= capacity
        yield sim.timeout(hold)
        res.release(grant)

    procs = [
        sim.spawn(user(rng.uniform(0, 3), rng.uniform(0.1, 2)))
        for _ in range(n_users)
    ]
    sim.run_until_done(procs)
    assert res.in_use == 0
    assert 1 <= peak[0] <= capacity


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_simulation_is_deterministic(seed):
    def trace(run_seed):
        rng = random.Random(run_seed)
        sim = Simulator()
        ch = Channel(sim, capacity=3)
        res = Resource(sim, capacity=2)
        log = []

        def worker(wid, delay):
            yield sim.timeout(delay)
            grant = yield res.request()
            yield sim.timeout(0.5)
            res.release(grant)
            yield ch.put(wid)

        def collector(count):
            for _ in range(count):
                wid = yield ch.get()
                log.append((round(sim.now, 6), wid))

        n = 6
        procs = [
            sim.spawn(worker(i, rng.uniform(0, 4))) for i in range(n)
        ]
        procs.append(sim.spawn(collector(n)))
        sim.run_until_done(procs)
        return log

    assert trace(seed) == trace(seed)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    kills=st.integers(0, 3),
)
def test_property_interrupts_never_wedge_resources(seed, kills):
    """Randomly interrupting waiters must never leak resource units."""
    rng = random.Random(seed)
    sim = Simulator()
    res = Resource(sim, capacity=1)
    survivors = []

    def user(uid, delay, hold):
        yield sim.timeout(delay)
        grant = yield res.request()
        try:
            # Like every real holder (disk reads, CPU bursts), release on
            # interrupt via finally.
            yield sim.timeout(hold)
            survivors.append(uid)
        finally:
            res.release(grant)

    procs = [
        sim.spawn(user(i, rng.uniform(0, 2), rng.uniform(0.5, 1.5)))
        for i in range(6)
    ]

    def killer():
        for _ in range(kills):
            yield sim.timeout(rng.uniform(0.1, 2))
            victim = procs[rng.randrange(len(procs))]
            victim.interrupt("chaos")

    sim.spawn(killer())
    sim.run()
    # Everyone not killed finished; the resource ends idle.
    assert res.in_use == 0
    assert len(survivors) >= len(procs) - kills
