"""Determinism of the lineage/recovery path.

The recovery experiment is cell-based, so the same seed and plan must
produce byte-identical payloads -- including the sha256 digest of the
serialised lineage log -- whether the cells run serially or on a
process pool, and across repeated runs.  ``random_plan``'s log-fault
draws must also never perturb the disk/process schedule an existing
seed produces (chaos seeds are pinned in CI).
"""

from repro.faults import random_plan
from repro.harness.config import SMOKE
from repro.harness.experiments import (
    recovery,
    recovery_cells,
    recovery_merge,
)
from repro.parallel import PoolRunner


def test_same_seed_same_lineage_digest():
    a = recovery(SMOKE, fault_seed=1)
    b = recovery(SMOKE, fault_seed=1)
    assert a == b
    for scenario, payload in a.items():
        assert payload["lineage_digest"] == b[scenario]["lineage_digest"]


def test_different_seed_moves_the_crash():
    a = recovery(SMOKE, fault_seed=1)
    b = recovery(SMOKE, fault_seed=2)
    # Different crash points -> different durable frontiers somewhere.
    assert any(
        a[s]["pages_saved"] != b[s]["pages_saved"] for s in a
    )
    # But both recover cleanly.
    assert all(p["outcome"] == "ok" for p in b.values())


def test_pool_runs_byte_identical_to_serial():
    """``--jobs 2`` must reproduce the serial run exactly: same rows,
    same recovery decisions, same lineage log bytes."""
    specs = recovery_cells(SMOKE, fault_seed=1)
    with PoolRunner(jobs=2) as runner:
        results = runner.run(specs)
    pooled = recovery_merge(
        specs, {s: r.payload for s, r in results.items()}
    )
    serial = recovery(SMOKE, fault_seed=1)
    assert pooled == serial


def test_log_fault_draws_do_not_perturb_existing_seeds():
    """Enabling log faults appends draws strictly after every disk and
    process draw, so a pinned chaos seed keeps its exact disk/process
    schedule when the recovery leg turns log faults on."""
    for seed in (1, 2, 3, 4, 5):
        base = random_plan(seed, disk_faults=8, process_faults=4,
                           tables=["lineitem", "orders"])
        extended = random_plan(seed, disk_faults=8, process_faults=4,
                               tables=["lineitem", "orders"], log_faults=2)
        assert len(extended) == len(base) + 2
        base_lines = base.describe()
        extended_lines = extended.describe()
        # describe() is time-ordered; compare the non-log entries.
        log_lines = [l for l in extended_lines if "log" in l]
        assert len(log_lines) == 2
        rest = [l for l in extended_lines if "log" not in l]
        assert rest == base_lines
