"""Query abort, cancellation, deadlines, and resource reclamation.

An abort -- explicit cancel, deadline, injected fault, client disconnect
-- must tear the whole packet tree down, close every buffer so consumers
see EOF, and release every buffer-pool pin and table lock.  Also covers
the starvation diagnostics (each stuck process names what it waits on)
and the deadlock detector's stale-edge filtering.
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.faults import QueryAborted
from repro.faults.errors import FaultError
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, Sort, TableScan, UpdateRows
from repro.sim import Channel, Interrupted, Simulator, StarvationError


def count_plan():
    return Aggregate(TableScan("r"), [AggSpec("count", None, "n")])


def no_locks(sm) -> bool:
    return all(not grants for grants in sm.locks._granted.values())


def spawn_catching(host, engine, plan, name="client", delay=0.0):
    box = {}

    def client():
        if delay:
            yield host.sim.timeout(delay)
        try:
            result = yield from engine.execute(plan)
        except FaultError as exc:
            box["error"] = exc
            return None
        box["rows"] = result.rows
        return result

    box["proc"] = host.sim.spawn(client(), name=name)
    return box


# ---------------------------------------------------------------------------
# Explicit cancellation and deadlines
# ---------------------------------------------------------------------------
def test_explicit_cancel_mid_query(big_db):
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    box = spawn_catching(host, engine, count_plan())
    # Cancel mid-scan (a big_db scan takes ~0.4 virtual seconds).
    host.sim.schedule(0.05, engine.cancel, 1, "user hit ctrl-c")
    host.sim.run()
    assert isinstance(box["error"], QueryAborted)
    assert "user hit ctrl-c" in str(box["error"])
    assert engine.queries_aborted == 1
    assert engine.active_queries == 0
    assert sm.pool._pins == {}
    assert no_locks(sm)


def test_cancel_unknown_or_finished_query_is_false(db):
    host, sm, r_rows, _s = db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    assert engine.cancel(999) is False
    assert engine.run_query(count_plan()) == [(len(r_rows),)]
    assert engine.cancel(1) is False  # already finished


def test_deadline_aborts_slow_query(big_db):
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    box = {}

    def client():
        try:
            yield from engine.execute(count_plan(), deadline=0.05)
        except QueryAborted as exc:
            box["error"] = exc

    host.sim.spawn(client())
    host.sim.run()
    assert "deadline" in str(box["error"])
    assert engine.active_queries == 0
    assert sm.pool._pins == {}
    assert no_locks(sm)


def test_deadline_far_away_does_not_fire(db):
    host, sm, r_rows, _s = db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    box = spawn_catching(host, engine, count_plan())

    def run_with_deadline():
        result = yield from engine.execute(count_plan(), deadline=1e6)
        box["deadline_rows"] = result.rows

    host.sim.spawn(run_with_deadline())
    host.sim.run()
    assert box["deadline_rows"] == [(len(r_rows),)]
    assert engine.queries_aborted == 0


def test_client_disconnect_cleans_up_server_side(big_db):
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))

    def client():
        yield from engine.execute(count_plan())

    proc = host.sim.spawn(client(), name="doomed-client")
    host.sim.schedule(0.05, proc.interrupt, "connection lost")
    host.sim.run()
    assert not proc.alive
    assert engine.queries_aborted == 1
    assert engine.active_queries == 0
    assert sm.pool._pins == {}
    assert no_locks(sm)


# ---------------------------------------------------------------------------
# Aborted writers leave no residual locks
# ---------------------------------------------------------------------------
def test_aborted_update_releases_exclusive_lock(big_db):
    """Killing an Update mid-write must drop its X lock so later scans
    and writers proceed (no residual exclusive lock)."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    update = UpdateRows(
        "r", Col("grp") == 3, lambda row: (row[0], row[1], 0.0, row[3])
    )
    box = spawn_catching(host, engine, update, name="writer")
    host.sim.schedule(0.1, engine.cancel, 1, "abort the writer")
    host.sim.run()
    assert isinstance(box["error"], QueryAborted)
    assert no_locks(sm)

    # A follow-up scan must acquire the shared lock immediately and run.
    after = spawn_catching(host, engine, count_plan(), name="reader")
    host.sim.run()
    assert after["rows"] == [(len(r_rows),)]


def test_lock_release_where_and_release_if_held(db):
    host, sm, _r, _s = db
    locks = sm.locks
    from repro.storage.locks import LockMode

    def holder():
        yield locks.acquire(("q", 1, "p0"), "r", LockMode.SHARED)
        yield locks.acquire(("q", 2, "p0"), "r", LockMode.SHARED)

    host.sim.spawn(holder())
    host.sim.run()
    # Quiet no-op for a grant that is not held.
    assert locks.release_if_held(("q", 3, "p0"), "r") is False
    assert locks.release_if_held(("q", 1, "p0"), "r") is True
    assert locks.release_if_held(("q", 1, "p0"), "r") is False
    # Sweep by predicate (the abort path's reclamation).
    dropped = locks.release_where(
        lambda owner: isinstance(owner, tuple) and owner[1] == 2
    )
    assert dropped == 1
    assert no_locks(sm)


# ---------------------------------------------------------------------------
# Starvation diagnostics (StarvationError names the blockers)
# ---------------------------------------------------------------------------
def test_starvation_error_names_blocked_processes():
    sim = Simulator()
    channel = Channel(sim, capacity=4, name="stuck-pipe")

    def consumer():
        yield channel.get()

    proc = sim.spawn(consumer(), name="starving-consumer")
    with pytest.raises(StarvationError) as exc:
        sim.run_until_done([proc])
    message = str(exc.value)
    assert "starving-consumer" in message
    assert "get on channel stuck-pipe" in message


def test_starvation_error_describes_lock_waits(db):
    host, sm, _r, _s = db
    from repro.storage.locks import LockMode

    def writer():
        yield sm.locks.acquire(("q", 1, "p0"), "r", LockMode.EXCLUSIVE)
        yield host.sim.timeout(1e9)  # never releases

    def blocked():
        yield sm.locks.acquire(("q", 2, "p0"), "r", LockMode.EXCLUSIVE)

    host.sim.spawn(writer(), name="writer")
    proc = host.sim.spawn(blocked(), name="blocked-writer")
    with pytest.raises(StarvationError) as exc:
        host.sim.run_until_done([proc])
    message = str(exc.value)
    assert "blocked-writer" in message
    assert "lock on 'r'" in message


# ---------------------------------------------------------------------------
# Deadlock detector: stale waits-for edges
# ---------------------------------------------------------------------------
def test_deadlock_detector_ignores_stale_edges(db):
    """A completed/aborted endpoint must not contribute waits-for edges:
    phantom cycles during teardown would materialise innocent buffers."""
    from repro.engine.buffers import TupleBuffer
    from repro.engine.packets import Packet, PacketState, QueryContext
    from repro.osp.deadlock import DeadlockDetector

    host, sm, _r, _s = db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    sim = host.sim
    query = QueryContext(query_id=1, plan=None, sm=sm, host_machine=host)

    def packet(pid):
        p = Packet(query=query, plan=None, signature=pid, engine_name="x")
        p.packet_id = pid
        p.state = PacketState.RUNNING
        return p

    a, b = packet("pA"), packet("pB")

    def wire(producer, consumer, name):
        buf = TupleBuffer(
            sim, capacity_tuples=1, name=name,
            producer=producer, consumer=consumer,
        )
        engine.register_buffer(buf)
        return buf

    ab = wire(a, b, "a->b")
    ba = wire(b, a, "b->a")

    # Fill both buffers and park a blocked producer on each: a real cycle.
    def stuff(buf):
        yield from buf.put([(1,)])
        yield from buf.put([(2,)])  # blocks: capacity 1

    sim.spawn(stuff(ab))
    sim.spawn(stuff(ba))
    sim.run()
    detector = DeadlockDetector(engine)

    # The cycle exists, but a cancelled endpoint makes its edges stale.
    a.state = PacketState.CANCELLED
    assert detector.check_once() is None
    a.state = PacketState.RUNNING
    # Likewise an aborted query: teardown must not look like a deadlock.
    query.aborted = True
    assert detector.check_once() is None
    query.aborted = False

    # With both endpoints live again, the cycle is real and gets resolved.
    assert detector.check_once() is not None
    assert engine.osp_stats.deadlocks_resolved == 1
