"""Tests for the client driver and workload metrics."""

import random

import pytest

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, TableScan
from repro.storage.manager import StorageManager
from repro.workloads.clients import (
    ClosedLoopClient,
    mixed_tpch_factory,
    run_workload,
)

import tests.conftest as cf


def build_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=32)
    sm.create_table("r", cf.BIG_R_SCHEMA)
    sm.load_table("r", cf.make_big_r_rows(n=1200))
    return host, sm


def count_plan(_rng=None):
    return Aggregate(TableScan("r"), [AggSpec("count", None, "n")])


def test_closed_loop_client_runs_n_queries():
    host, sm = build_db()
    engine = QPipeEngine(sm)
    client = ClosedLoopClient(0, count_plan, queries=3, think_time=1.0)
    metrics = run_workload(engine, [client])
    assert metrics.queries_completed == 3
    assert all(r.rows == [(1200,)] for r in metrics.results)


def test_think_time_separates_submissions():
    host, sm = build_db()
    engine = QPipeEngine(sm)
    client = ClosedLoopClient(0, count_plan, queries=2, think_time=50.0)
    metrics = run_workload(engine, [client])
    submits = sorted(r.submitted_at for r in metrics.results)
    assert submits[1] - submits[0] >= 50.0


def test_start_delay_staggers_clients():
    host, sm = build_db()
    engine = QPipeEngine(sm)
    clients = [
        ClosedLoopClient(i, count_plan, queries=1, start_delay=i * 5.0)
        for i in range(3)
    ]
    metrics = run_workload(engine, clients)
    submits = sorted(r.submitted_at for r in metrics.results)
    assert submits == [0.0, 5.0, 10.0]


def test_metrics_throughput_and_response():
    host, sm = build_db()
    engine = QPipeEngine(sm)
    clients = [ClosedLoopClient(i, count_plan, queries=2) for i in range(2)]
    metrics = run_workload(engine, clients)
    assert metrics.queries_completed == 4
    assert metrics.makespan > 0
    assert metrics.throughput_qph == pytest.approx(
        4 * 3600.0 / metrics.makespan
    )
    assert metrics.avg_response_time > 0
    assert metrics.max_response_time >= metrics.avg_response_time
    assert metrics.blocks_read > 0


def test_metrics_windowing_excludes_prior_io():
    host, sm = build_db()
    engine = QPipeEngine(sm)
    first = run_workload(engine, [ClosedLoopClient(0, count_plan)])
    second = run_workload(engine, [ClosedLoopClient(1, count_plan)])
    # The second window counts only its own reads.
    assert second.blocks_read <= first.blocks_read


def test_percentile_response_time():
    host, sm = build_db()
    engine = IteratorEngine(sm)
    clients = [ClosedLoopClient(i, count_plan, queries=1) for i in range(4)]
    metrics = run_workload(engine, clients)
    assert metrics.percentile_response_time(0.0) <= (
        metrics.percentile_response_time(0.99)
    )


def _metrics_with_times(times):
    from repro.results import QueryResult
    from repro.workloads.metrics import WorkloadMetrics

    return WorkloadMetrics(
        results=[
            QueryResult(i, [], 0.0, 0.0, t) for i, t in enumerate(times)
        ]
    )


def test_percentile_nearest_rank_pinned():
    # Nearest rank: value at 1-based rank ceil(q * n).
    metrics = _metrics_with_times(
        [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
    )
    assert metrics.percentile_response_time(0.50) == 50.0  # rank ceil(5)=5
    assert metrics.percentile_response_time(0.95) == 100.0  # rank ceil(9.5)=10
    assert metrics.percentile_response_time(1.00) == 100.0
    assert metrics.percentile_response_time(0.0) == 10.0
    # Odd-length list: p50 is the exact middle element.
    metrics = _metrics_with_times([3.0, 1.0, 2.0])
    assert metrics.percentile_response_time(0.50) == 2.0
    assert metrics.percentile_response_time(0.99) == 3.0
    # Singleton and empty edge cases.
    assert _metrics_with_times([7.0]).percentile_response_time(0.5) == 7.0
    assert _metrics_with_times([]).percentile_response_time(0.5) == 0.0


def test_mixed_factory_draws_varied_plans():
    factory = mixed_tpch_factory(
        [count_plan, lambda rng: Aggregate(
            TableScan("r", predicate=Col("grp") == rng.randrange(5)),
            [AggSpec("count", None, "n")],
        )]
    )
    rng = random.Random(4)
    plans = [factory(rng) for _ in range(10)]
    assert len({p.signature.__self__ if False else repr(p) for p in plans}) >= 1
    assert len(plans) == 10


def test_same_seed_same_workload():
    def run_once():
        host, sm = build_db()
        engine = QPipeEngine(sm)
        clients = [
            ClosedLoopClient(i, count_plan, queries=2) for i in range(3)
        ]
        return run_workload(engine, clients, seed=11).makespan

    assert run_once() == run_once()


def test_engines_interchangeable_in_driver():
    host, sm = build_db()
    for engine in (IteratorEngine(sm), QPipeEngine(sm)):
        metrics = run_workload(engine, [ClosedLoopClient(0, count_plan)])
        assert metrics.queries_completed == 1
