"""Table partitioning: metadata validation, stable hashing, row routing."""

import zlib

import pytest

from repro.relational.schema import Column, Schema
from repro.storage.partition import (
    PartitionInfo,
    hash_partition,
    partition_rows,
    range_partition,
    stable_hash,
)

SCHEMA = Schema([Column("k", "int"), Column("v", "str")])
ROWS = [(i, f"v{i}") for i in range(10)]


# ---------------------------------------------------------------------------
# PartitionInfo validation
# ---------------------------------------------------------------------------
def test_partition_info_validates():
    with pytest.raises(ValueError):
        PartitionInfo("round-robin", 2, 0)
    with pytest.raises(ValueError):
        PartitionInfo("range", 0, 0)
    with pytest.raises(ValueError):
        PartitionInfo("range", 2, 2)  # index out of 0..count-1
    with pytest.raises(ValueError):
        PartitionInfo("hash", 2, 0)  # hash needs a key column
    with pytest.raises(ValueError):
        PartitionInfo("range", 2, 0, column="k")  # range takes none


def test_partitioned_property():
    assert PartitionInfo("range", 4, 1).partitioned
    assert PartitionInfo("hash", 2, 0, column="k").partitioned
    # A 1-way "partition" holds everything; replication always does.
    assert not PartitionInfo("range", 1, 0).partitioned
    assert not PartitionInfo("replicated", 4, 2).partitioned


def test_signature_is_descriptive():
    assert PartitionInfo("hash", 4, 2, column="k").signature() == (
        "hash(k;2/4)"
    )
    assert PartitionInfo("range", 2, 0).signature() == "range(-;0/2)"


# ---------------------------------------------------------------------------
# stable_hash
# ---------------------------------------------------------------------------
def test_stable_hash_is_crc32_of_repr():
    for value in (0, 17, "abc", 3.5, None, ("a", 1)):
        assert stable_hash(value) == zlib.crc32(repr(value).encode("utf-8"))


def test_stable_hash_spreads_buckets():
    buckets = {stable_hash(i) % 4 for i in range(100)}
    assert buckets == {0, 1, 2, 3}


# ---------------------------------------------------------------------------
# Row routing
# ---------------------------------------------------------------------------
def test_range_partition_preserves_order():
    parts = range_partition(ROWS, 3)
    assert [len(p) for p in parts] == [3, 3, 4]
    assert [row for part in parts for row in part] == ROWS


def test_range_partition_more_parts_than_rows():
    parts = range_partition(ROWS[:2], 4)
    assert sum(len(p) for p in parts) == 2
    assert [row for part in parts for row in part] == ROWS[:2]
    with pytest.raises(ValueError):
        range_partition(ROWS, 0)


def test_hash_partition_routes_by_key():
    parts = hash_partition(ROWS, SCHEMA, "k", 3)
    assert sorted(row for part in parts for row in part) == ROWS
    for i, part in enumerate(parts):
        for row in part:
            assert stable_hash(row[0]) % 3 == i
        # stable routing: within a bucket, input order is preserved
        assert part == sorted(part, key=lambda r: r[0])


def test_partition_rows_dispatch():
    assert partition_rows(ROWS, SCHEMA, "range", 2) == range_partition(
        ROWS, 2
    )
    assert partition_rows(
        ROWS, SCHEMA, "hash", 2, column="k"
    ) == hash_partition(ROWS, SCHEMA, "k", 2)
    replicas = partition_rows(ROWS, SCHEMA, "replicated", 3)
    assert replicas == [ROWS, ROWS, ROWS]
    assert replicas[0] is not replicas[1]  # independent copies
    with pytest.raises(ValueError):
        partition_rows(ROWS, SCHEMA, "hash", 2)  # no key column
    with pytest.raises(ValueError):
        partition_rows(ROWS, SCHEMA, "mystery", 2)
