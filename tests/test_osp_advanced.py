"""Advanced OSP scenarios: satellite fleets, group-by windows, spills."""

import pytest

from repro.engine.packets import PacketState
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, GroupBy, Sort, TableScan


def run_staggered(big_db, engine, plans, delays):
    host, _sm, _r, _s = big_db
    procs = []

    def client(plan, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(plan)
        return result

    for plan, delay in zip(plans, delays):
        procs.append(host.sim.spawn(client(plan, delay)))
    host.sim.run_until_done(procs)
    return [p.value for p in procs]


def agg_plan():
    return Aggregate(TableScan("r"), [AggSpec("sum", Col("val"), "sv")])


def test_many_satellites_one_host(big_db):
    """Five identical aggregates: one host, four satellites, one answer."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    results = run_staggered(
        big_db, engine, [agg_plan() for _ in range(5)],
        delays=[0.0, 0.01, 0.02, 0.03, 0.04],
    )
    expected = pytest.approx(sum(r[2] for r in r_rows))
    for result in results:
        assert result.rows[0][0] == expected
    assert engine.osp_stats.attaches["agg"] == 4
    # All five finish within a whisker of each other.
    finishes = [r.finished_at for r in results]
    assert max(finishes) - min(finishes) < 0.5


def test_satellite_fleet_costs_one_scan(big_db):
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    run_staggered(
        big_db, engine, [agg_plan() for _ in range(4)],
        delays=[0.0, 0.05, 0.1, 0.15],
    )
    assert host.disk.stats.blocks_read <= sm.num_pages("r") + 2


def test_groupby_window_open_until_emission(big_db):
    """GroupBy is blocking: it admits satellites through its whole
    consumption phase (no output until input is drained)."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))

    def plan():
        return GroupBy(
            TableScan("r"), ["grp"], [AggSpec("count", None, "n")]
        )

    # Arrive well into the host's consumption phase.
    results = run_staggered(
        big_db, engine, [plan(), plan()], delays=[0.0, 0.3]
    )
    expected = {}
    for r in r_rows:
        expected[r[1]] = expected.get(r[1], 0) + 1
    assert dict(results[0].rows) == expected
    assert dict(results[1].rows) == expected
    assert engine.osp_stats.attaches["groupby"] == 1


def test_sort_reemission_with_spilled_runs(big_db):
    """A satellite arriving during emission of an EXTERNAL sort still
    gets the full materialised result."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(
        sm,
        QPipeConfig(
            osp_enabled=True,
            work_mem_tuples=500,  # force run spills (4000 rows)
            buffer_tuples=128,  # slow emission
            replay_tuples=32,
        ),
    )
    expected = sorted(r_rows, key=lambda r: (r[2],))

    def plan():
        return Sort(TableScan("r"), keys=["val"])

    # Measure the host's sort-finish point first.
    probe_engine = QPipeEngine(sm, QPipeConfig(work_mem_tuples=500))
    solo = run_staggered(big_db, probe_engine, [plan()], [0.0])[0]
    late = solo.response_time * 0.9

    results = run_staggered(big_db, engine, [plan(), plan()], [0.0, late])
    assert results[0].rows == expected
    assert results[1].rows == expected
    assert host.disk.stats.blocks_written > 0  # spills really happened


def test_satellite_marked_done_with_host(big_db):
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    run_staggered(big_db, engine, [agg_plan(), agg_plan()], [0.0, 0.1])
    agg_engine = engine.engines["agg"]
    assert agg_engine.active == []
    # One packet served, one shared.
    assert agg_engine.packets_served == 1
    assert agg_engine.packets_shared == 1


def test_chained_arrivals_attach_to_original_host(big_db):
    """Late arrivals attach to the still-active host, not to satellites."""
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    results = run_staggered(
        big_db, engine,
        [agg_plan(), agg_plan(), agg_plan()],
        delays=[0.0, 0.2, 0.4],
    )
    served = engine.engines["agg"].packets_served
    shared = engine.engines["agg"].packets_shared
    assert (served, shared) == (1, 2)
    assert len({tuple(r.rows[0]) for r in results}) == 1


def test_no_attach_across_different_tables(big_db):
    host, sm, _r, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    plans = [
        Aggregate(TableScan("r"), [AggSpec("count", None, "n")]),
        Aggregate(TableScan("s"), [AggSpec("count", None, "n")]),
    ]
    results = run_staggered(big_db, engine, plans, [0.0, 0.0])
    assert engine.osp_stats.attaches["agg"] == 0
    assert results[0].rows != results[1].rows
