"""Serial-vs-parallel differential: figures must not care how their
cells were executed.

Three properties cover the fabric end to end:

1. every figure's merge orders output by the declarative spec list, so
   feeding it payloads in a scrambled completion order changes nothing;
2. payloads survive a JSON roundtrip unchanged, so a cache-served cell
   merges byte-identically with a freshly computed one;
3. a real spawn-context pool (fresh worker interpreters) reproduces the
   serial payloads exactly -- module state cannot leak into results.
"""

import json

import pytest

from repro.harness import experiments as E
from repro.harness.config import SMOKE
from repro.parallel import PoolRunner
from repro.parallel.cells import run_cells_serial

#: Reduced grids: same structure as the CLI figures, minutes less work.
REDUCED = {
    "fig1a": lambda: E.fig1a_cells(SMOKE),
    "fig1b": lambda: E.fig1b_cells(SMOKE, client_counts=(1, 2)),
    "fig4": lambda: E.fig4_cells(SMOKE, progress_points=(0.0, 0.5)),
    "fig8": lambda: E.fig8_cells(
        SMOKE, client_counts=(2,), interarrivals=(0, 20)
    ),
    "fig9": lambda: E.fig9_cells(SMOKE, interarrivals=(0, 40)),
    "fig10": lambda: E.fig10_cells(SMOKE, interarrivals=(0, 40)),
    "fig11": lambda: E.fig11_cells(SMOKE, interarrivals=(0, 40)),
    "fig12": lambda: E.fig12_cells(SMOKE, client_counts=(1, 2)),
    "fig13": lambda: E.fig13_cells(
        SMOKE, think_times=(0, 20), clients=2
    ),
    "overhead": lambda: E.osp_overhead_cells(SMOKE, queries=2),
    "ablation-policies": lambda: E.ablation_policies_cells(
        SMOKE, policies=("lru", "mru"), clients=2
    ),
    "ablation-replay": lambda: E.ablation_replay_cells(
        SMOKE, ring_sizes=(16, 4096)
    ),
    "ablation-wraparound": lambda: E.ablation_wraparound_cells(
        SMOKE, clients=2, interarrivals=(0, 20)
    ),
    "ablation-late-activation": lambda: E.ablation_late_activation_cells(
        SMOKE, clients=2
    ),
}

_PAYLOADS = {}


def _payloads(name):
    if name not in _PAYLOADS:
        _PAYLOADS[name] = run_cells_serial(REDUCED[name]())
    return _PAYLOADS[name]


@pytest.mark.parametrize("name", sorted(REDUCED))
def test_merge_is_execution_order_independent(name):
    specs = REDUCED[name]()
    payloads = _payloads(name)
    reference = E.FIGURES[name].render(specs, payloads)
    scrambled = dict(reversed(list(payloads.items())))
    assert E.FIGURES[name].render(specs, scrambled) == reference
    assert "None" not in reference.splitlines()[0]


@pytest.mark.parametrize("name", sorted(REDUCED))
def test_merge_survives_json_roundtrip(name):
    """A cache-served payload must merge byte-identically with a fresh
    one, so payloads may use only JSON-faithful types."""
    specs = REDUCED[name]()
    payloads = _payloads(name)
    roundtripped = {
        spec: json.loads(json.dumps(payload))
        for spec, payload in payloads.items()
    }
    assert E.FIGURES[name].render(specs, roundtripped) == E.FIGURES[
        name
    ].render(specs, payloads)


def test_spawn_pool_matches_serial_exactly():
    """Real process pool: byte-identical renders, not just close ones."""
    specs = E.fig8_cells(SMOKE, client_counts=(2,), interarrivals=(0, 20))
    serial = _payloads("fig8")
    with PoolRunner(jobs=2) as runner:
        results = runner.run(specs)
    parallel = {spec: r.payload for spec, r in results.items()}
    assert parallel == serial
    assert E.FIGURES["fig8"].render(specs, parallel) == E.FIGURES[
        "fig8"
    ].render(specs, serial)


def test_public_wrappers_accept_precomputed_results():
    """`figN_*(..., results=...)` is the bridge the CLI uses: wrappers
    must render from supplied payloads without re-executing."""
    specs = E.fig8_cells(SMOKE, client_counts=(2,), interarrivals=(0, 20))
    payloads = _payloads("fig8")
    out = E.fig8_scan_sharing(
        SMOKE, client_counts=(2,), interarrivals=(0, 20), results=payloads
    )
    direct = E.fig8_merge(specs, payloads)
    assert out[2].render() == direct[2].render()
