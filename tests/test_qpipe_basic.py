"""QPipe engine correctness: every operator, OSP on and off.

The iterator engine's results (already verified against naive Python)
are the reference: both engines must return identical row sets.
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    MergeJoin,
    NLJoin,
    Project,
    Sort,
    TableScan,
    UpdateRows,
)


def qpipe(db, osp=True, **kwargs):
    _host, sm, _r, _s = db
    return QPipeEngine(sm, QPipeConfig(osp_enabled=osp, **kwargs))


@pytest.mark.parametrize("osp", [True, False], ids=["osp", "no-osp"])
class TestOperators:
    def test_full_scan(self, db, osp):
        _h, _sm, r_rows, _s = db
        rows = qpipe(db, osp).run_query(TableScan("r"))
        assert sorted(rows) == sorted(r_rows)

    def test_scan_with_predicate_and_projection(self, db, osp):
        _h, _sm, r_rows, _s = db
        plan = TableScan("r", predicate=Col("grp") == 3, project=["id", "val"])
        rows = qpipe(db, osp).run_query(plan)
        assert sorted(rows) == sorted(
            (r[0], r[2]) for r in r_rows if r[1] == 3
        )

    def test_ordered_scan(self, db, osp):
        _h, _sm, r_rows, _s = db
        rows = qpipe(db, osp).run_query(TableScan("r", ordered=True))
        assert rows == sorted(r_rows)  # r clustered on id

    def test_index_scan_ordered(self, db, osp):
        _h, _sm, r_rows, _s = db
        plan = IndexScan("r", "r_id", lo=50, hi=99, ordered=True)
        rows = qpipe(db, osp).run_query(plan)
        assert rows == sorted(r for r in r_rows if 50 <= r[0] <= 99)

    def test_index_scan_unclustered(self, db, osp):
        _h, _sm, r_rows, _s = db
        plan = IndexScan("r", "r_grp", lo=2, hi=2)
        rows = qpipe(db, osp).run_query(plan)
        assert sorted(rows) == sorted(r for r in r_rows if r[1] == 2)

    def test_project(self, db, osp):
        _h, _sm, r_rows, _s = db
        plan = Project(TableScan("r"), ["v2"], exprs=[Col("val") * 2])
        rows = qpipe(db, osp).run_query(plan)
        assert sorted(rows) == sorted((r[2] * 2,) for r in r_rows)

    def test_sort(self, db, osp):
        _h, _sm, r_rows, _s = db
        rows = qpipe(db, osp).run_query(Sort(TableScan("r"), keys=["val"]))
        assert rows == sorted(r_rows, key=lambda r: (r[2],))

    def test_sort_external(self, db, osp):
        _h, _sm, r_rows, _s = db
        engine = qpipe(db, osp, work_mem_tuples=50)
        rows = engine.run_query(Sort(TableScan("r"), keys=["id"]))
        assert rows == sorted(r_rows, key=lambda r: (r[0],))

    def test_hash_join(self, db, osp):
        _h, _sm, r_rows, s_rows = db
        plan = HashJoin(TableScan("r"), TableScan("s"), "id", "rid")
        rows = qpipe(db, osp).run_query(plan)
        expected = [r + s for s in s_rows for r in r_rows if r[0] == s[1]]
        assert sorted(rows) == sorted(expected)

    def test_hash_join_grace(self, db, osp):
        _h, _sm, r_rows, s_rows = db
        engine = qpipe(db, osp, work_mem_tuples=40)
        plan = HashJoin(TableScan("r"), TableScan("s"), "id", "rid")
        rows = engine.run_query(plan)
        expected = [r + s for s in s_rows for r in r_rows if r[0] == s[1]]
        assert sorted(rows) == sorted(expected)

    def test_merge_join(self, db, osp):
        _h, _sm, r_rows, s_rows = db
        plan = MergeJoin(
            Sort(TableScan("r"), keys=["id"]),
            Sort(TableScan("s"), keys=["rid"]),
            "id",
            "rid",
        )
        rows = qpipe(db, osp).run_query(plan)
        expected = [r + s for s in s_rows for r in r_rows if r[0] == s[1]]
        assert sorted(rows) == sorted(expected)

    def test_nl_join(self, db, osp):
        _h, _sm, r_rows, s_rows = db
        plan = NLJoin(
            TableScan("r", project=["id", "grp"]),
            TableScan("s"),
            predicate=Col("id") == Col("rid"),
        )
        rows = qpipe(db, osp).run_query(plan)
        expected = [
            (r[0], r[1]) + s for r in r_rows for s in s_rows if r[0] == s[1]
        ]
        assert sorted(rows) == sorted(expected)

    def test_aggregate(self, db, osp):
        _h, _sm, r_rows, _s = db
        plan = Aggregate(
            TableScan("r"),
            [AggSpec("sum", Col("val"), "sv"), AggSpec("count", None, "n")],
        )
        rows = qpipe(db, osp).run_query(plan)
        assert len(rows) == 1
        assert rows[0][0] == pytest.approx(sum(r[2] for r in r_rows))
        assert rows[0][1] == len(r_rows)

    def test_group_by(self, db, osp):
        _h, _sm, r_rows, _s = db
        plan = GroupBy(TableScan("r"), ["grp"], [AggSpec("count", None, "n")])
        rows = qpipe(db, osp).run_query(plan)
        expected = {}
        for r in r_rows:
            expected[r[1]] = expected.get(r[1], 0) + 1
        assert dict(rows) == expected

    def test_insert(self, db, osp):
        _h, sm, _r, _s = db
        rows = qpipe(db, osp).run_query(
            InsertRows("s", [(9991, 1, 0.5)])
        )
        assert rows == [(1,)]
        assert sm.num_rows("s") == 121

    def test_update(self, db, osp):
        _h, sm, r_rows, _s = db
        plan = UpdateRows(
            "r",
            predicate=Col("grp") == 1,
            apply=lambda row: (row[0], row[1], -1.0, row[3]),
        )
        rows = qpipe(db, osp).run_query(plan)
        assert rows == [(sum(1 for r in r_rows if r[1] == 1),)]

    def test_composed_plan(self, db, osp):
        _h, _sm, r_rows, s_rows = db
        plan = GroupBy(
            HashJoin(
                TableScan("r", predicate=Col("grp") <= 3),
                TableScan("s"),
                "id",
                "rid",
            ),
            ["grp"],
            [AggSpec("sum", Col("w"), "sw")],
        )
        rows = qpipe(db, osp).run_query(plan)
        expected = {}
        for s in s_rows:
            r = r_rows[s[1]]
            if r[1] <= 3:
                expected[r[1]] = expected.get(r[1], 0.0) + s[2]
        assert {k: pytest.approx(v) for k, v in rows} == expected


def test_qpipe_matches_iterator_engine(db):
    """Cross-engine equivalence on a three-table-ish composite plan."""
    from repro.baseline.engine import IteratorEngine

    _h, sm, _r, _s = db
    plan = Sort(
        HashJoin(
            TableScan("r", predicate=Col("val") > 20.0),
            TableScan("s"),
            "id",
            "rid",
        ),
        keys=["w"],
    )
    reference = IteratorEngine(sm).run_query(plan)
    got = QPipeEngine(sm).run_query(plan)
    assert sorted(got) == sorted(reference)
    assert [row[-1] for row in got] == [row[-1] for row in reference]
