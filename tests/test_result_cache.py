"""Query result cache tests (section 2.3)."""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.engine.result_cache import ResultCache
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, InsertRows, TableScan


def make_engine(db, rows=10_000):
    _h, sm, _r, _s = db
    return QPipeEngine(
        sm, QPipeConfig(osp_enabled=True, result_cache_rows=rows)
    )


def agg_plan():
    return Aggregate(TableScan("r"), [AggSpec("count", None, "n")])


# ---------------------------------------------------------------------------
# Unit level
# ---------------------------------------------------------------------------
def test_cache_disabled_at_zero_capacity():
    cache = ResultCache(0)
    cache.store("sig", TableScan("r"), [(1,)])
    assert cache.lookup("sig") is None
    assert not cache.enabled


def test_cache_roundtrip_and_lru_eviction():
    cache = ResultCache(capacity_rows=5)
    cache.store("a", TableScan("r"), [(1,), (2,)])
    cache.store("b", TableScan("r"), [(3,), (4,)])
    assert cache.lookup("a") == [(1,), (2,)]
    # 'b' is now least-recent; adding 3 rows evicts it.
    cache.store("c", TableScan("r"), [(5,), (6,), (7,)])
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None
    assert cache.stats.evictions == 1


def test_oversized_results_not_cached():
    cache = ResultCache(capacity_rows=2)
    cache.store("big", TableScan("r"), [(i,) for i in range(5)])
    assert cache.lookup("big") is None


def test_invalidation_by_table():
    from repro.relational.plans import HashJoin

    cache = ResultCache(capacity_rows=100)
    join = HashJoin(TableScan("r"), TableScan("s"), "id", "rid")
    cache.store("j", join, [(1,)])
    cache.store("solo", TableScan("s"), [(2,)])
    cache.store("other", TableScan("t"), [(3,)])
    assert cache.invalidate_table("s") == 2
    assert cache.lookup("j") is None
    assert cache.lookup("other") is not None


def test_cached_rows_are_copies():
    cache = ResultCache(capacity_rows=10)
    cache.store("a", TableScan("r"), [(1,)])
    got = cache.lookup("a")
    got.append(("mutant",))
    assert cache.lookup("a") == [(1,)]


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1)


def test_eviction_cascade_under_capacity_pressure():
    """One oversized arrival may evict several older entries, and the
    row accounting must stay exact throughout."""
    cache = ResultCache(capacity_rows=6)
    cache.store("a", TableScan("r"), [(1,), (2,), (3,)])
    cache.store("b", TableScan("r"), [(4,), (5,), (6,)])
    assert cache._rows_cached == 6
    # 6 new rows force out both 'a' and 'b' (oldest first).
    cache.store("c", TableScan("r"), [(i,) for i in range(6)])
    assert cache.lookup("a") is None
    assert cache.lookup("b") is None
    assert cache.lookup("c") is not None
    assert cache.stats.evictions == 2
    assert cache._rows_cached == 6


def test_lru_order_updated_by_lookup():
    """A lookup refreshes recency, changing who gets evicted."""
    cache = ResultCache(capacity_rows=4)
    cache.store("a", TableScan("r"), [(1,), (2,)])
    cache.store("b", TableScan("r"), [(3,), (4,)])
    assert cache.lookup("a") is not None  # 'b' becomes least-recent
    cache.store("c", TableScan("r"), [(5,), (6,)])
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None


def test_duplicate_store_keeps_original_and_row_count():
    cache = ResultCache(capacity_rows=10)
    cache.store("a", TableScan("r"), [(1,)])
    cache.store("a", TableScan("r"), [(2,), (3,)])
    assert cache.lookup("a") == [(1,)]
    assert cache._rows_cached == 1


def test_hit_after_invalidation_requires_restore():
    """Invalidation makes the next lookup a miss; only a fresh store
    makes the signature hit again."""
    cache = ResultCache(capacity_rows=10)
    plan = TableScan("r")
    sig = "count-r"
    cache.store(sig, plan, [(42,)])
    assert cache.lookup(sig) == [(42,)]
    assert cache.invalidate_table("r") == 1
    assert cache.lookup(sig) is None
    assert cache.stats.misses == 1
    assert cache._rows_cached == 0
    cache.store(sig, plan, [(43,)])
    assert cache.lookup(sig) == [(43,)]
    assert cache.stats.hits == 2


def test_invalidating_unknown_table_is_a_no_op():
    cache = ResultCache(capacity_rows=10)
    cache.store("a", TableScan("r"), [(1,)])
    assert cache.invalidate_table("nope") == 0
    assert cache.lookup("a") == [(1,)]


def test_clear_resets_rows_accounting():
    cache = ResultCache(capacity_rows=4)
    cache.store("a", TableScan("r"), [(1,), (2,)])
    cache.clear()
    assert len(cache) == 0
    assert cache._rows_cached == 0
    # Full capacity is available again after the clear.
    cache.store("b", TableScan("r"), [(i,) for i in range(4)])
    assert cache.lookup("b") is not None
    assert cache.stats.evictions == 0


# ---------------------------------------------------------------------------
# Engine level
# ---------------------------------------------------------------------------
def test_sequential_repeat_hits_cache(db):
    host, sm, r_rows, _s = db
    engine = make_engine(db)
    first = engine.run_query(agg_plan())
    blocks_after_first = host.disk.stats.blocks_read
    t_before = host.sim.now
    second = engine.run_query(agg_plan())
    assert second == first == [(len(r_rows),)]
    # The repeat did no I/O and took no time.
    assert host.disk.stats.blocks_read == blocks_after_first
    assert engine.result_cache.stats.hits == 1


def test_update_invalidates_dependent_results(db):
    host, sm, r_rows, _s = db
    engine = make_engine(db)
    assert engine.run_query(agg_plan()) == [(len(r_rows),)]
    engine.run_query(InsertRows("r", [(9999, 0, 1.0, "zz")]))
    # The cached count would now be stale; it must be recomputed.
    assert engine.run_query(agg_plan()) == [(len(r_rows) + 1,)]
    assert engine.result_cache.stats.invalidations >= 1


def test_different_predicates_are_different_entries(db):
    host, sm, r_rows, _s = db
    engine = make_engine(db)

    def plan(g):
        return Aggregate(
            TableScan("r", predicate=Col("grp") == g),
            [AggSpec("count", None, "n")],
        )

    a = engine.run_query(plan(1))
    b = engine.run_query(plan(2))
    assert a != b or a == b  # both executed; now both cached
    assert len(engine.result_cache) == 2
    assert engine.run_query(plan(1)) == a
    assert engine.result_cache.stats.hits == 1


def test_cache_off_by_default(db):
    _h, sm, _r, _s = db
    engine = QPipeEngine(sm, QPipeConfig())
    engine.run_query(agg_plan())
    engine.run_query(agg_plan())
    assert engine.result_cache.stats.hits == 0
    assert len(engine.result_cache) == 0
