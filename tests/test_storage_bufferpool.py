"""Unit tests for the buffer pool: hits/misses, coalescing, pins, eviction."""

import pytest

from repro.hw.disk import Disk
from repro.sim import Simulator
from repro.storage.bufferpool import BufferPool, BufferPoolFull
from repro.storage.file import BlockStore


def make_pool(capacity=4, policy="lru"):
    sim = Simulator()
    disk = Disk(sim, transfer_time=1.0, seek_time=2.0)
    store = BlockStore()
    fid = store.create_file("t")
    for i in range(10):
        store.append_block(fid, f"payload{i}")
    pool = BufferPool(
        sim=sim,
        disk=disk,
        store=store,
        capacity=capacity,
        policy_name=policy,
        page_hit_cost=0.001,
    )
    return sim, disk, pool, fid


def drive(sim, gen):
    """Run one coroutine to completion; returns its value."""
    proc = sim.spawn(gen)
    sim.run()
    assert proc.triggered
    return proc.value


def test_miss_reads_disk_then_hit_is_cheap():
    sim, disk, pool, fid = make_pool()

    def reader():
        payload = yield from pool.get_page(fid, 0)
        assert payload == "payload0"
        first_time = sim.now
        payload = yield from pool.get_page(fid, 0)
        return first_time, sim.now - first_time

    miss_time, hit_time = drive(sim, reader())
    assert miss_time == pytest.approx(3.0)  # seek + transfer
    assert hit_time == pytest.approx(0.001)
    assert pool.stats.misses == 1 and pool.stats.hits == 1
    assert disk.stats.blocks_read == 1


def test_sequential_reads_avoid_seeks():
    sim, disk, pool, fid = make_pool(capacity=8)

    def reader():
        for block in range(4):
            yield from pool.get_page(fid, block)

    drive(sim, reader())
    assert disk.stats.seeks == 1  # only the first access seeks
    assert disk.stats.sequential_hits == 3


def test_concurrent_miss_coalesces_to_one_read():
    sim, disk, pool, fid = make_pool()
    done = []

    def reader(name):
        payload = yield from pool.get_page(fid, 0)
        done.append((name, sim.now, payload))

    sim.spawn(reader("a"))
    sim.spawn(reader("b"))
    sim.run()
    assert disk.stats.blocks_read == 1  # one physical read
    assert pool.stats.misses == 1 and pool.stats.coalesced == 1
    assert [d[2] for d in done] == ["payload0", "payload0"]
    assert done[0][1] == done[1][1]  # both complete together


def test_eviction_at_capacity():
    sim, disk, pool, fid = make_pool(capacity=2)

    def reader():
        for block in range(3):
            yield from pool.get_page(fid, block)

    drive(sim, reader())
    assert pool.resident == 2
    assert pool.stats.evictions == 1
    assert not pool.contains(fid, 0)  # LRU victim


def test_pinned_pages_survive_eviction():
    sim, disk, pool, fid = make_pool(capacity=2)

    def reader():
        yield from pool.get_page(fid, 0, pin=True)
        yield from pool.get_page(fid, 1)
        yield from pool.get_page(fid, 2)  # must evict 1, not pinned 0

    drive(sim, reader())
    assert pool.contains(fid, 0)
    assert not pool.contains(fid, 1)
    assert pool.pin_count(fid, 0) == 1
    pool.unpin(fid, 0)
    assert pool.pin_count(fid, 0) == 0


def test_all_pinned_raises():
    sim, disk, pool, fid = make_pool(capacity=2)

    def reader():
        yield from pool.get_page(fid, 0, pin=True)
        yield from pool.get_page(fid, 1, pin=True)
        yield from pool.get_page(fid, 2)

    proc = sim.spawn(reader())
    with pytest.raises(Exception) as err:
        sim.run()
    assert "pinned" in str(err.value.__cause__ or err.value)


def test_unpin_unpinned_raises():
    sim, disk, pool, fid = make_pool()
    with pytest.raises(Exception):
        pool.unpin(fid, 0)


def test_invalidate_file_drops_frames():
    sim, disk, pool, fid = make_pool(capacity=8)

    def reader():
        for block in range(3):
            yield from pool.get_page(fid, block)

    drive(sim, reader())
    assert pool.resident == 3
    pool.invalidate_file(fid)
    assert pool.resident == 0


def test_hit_ratio_statistic():
    sim, disk, pool, fid = make_pool(capacity=8)

    def reader():
        yield from pool.get_page(fid, 0)
        yield from pool.get_page(fid, 0)
        yield from pool.get_page(fid, 0)

    drive(sim, reader())
    assert pool.stats.hit_ratio == pytest.approx(2 / 3)


def test_write_page_charges_disk():
    sim, disk, pool, fid = make_pool()

    def writer():
        yield from pool.write_page(fid, 0)

    drive(sim, writer())
    assert disk.stats.blocks_written == 1
    assert pool.contains(fid, 0)


def test_capacity_validation():
    sim = Simulator()
    disk = Disk(sim)
    with pytest.raises(ValueError):
        BufferPool(sim=sim, disk=disk, store=BlockStore(), capacity=0)
