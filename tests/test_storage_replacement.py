"""Unit and property tests for buffer replacement policies."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.storage.replacement import (
    ARC,
    Clock,
    LRU,
    LRUK,
    MRU,
    TwoQ,
    make_policy,
)

ALWAYS = lambda _key: True  # noqa: E731 - tiny test helper


def run_trace(policy, capacity, trace):
    """Drive a policy with an access trace; returns (hits, resident set)."""
    resident = set()
    hits = 0
    for key in trace:
        if key in resident:
            hits += 1
            policy.on_hit(key)
            continue
        if len(resident) >= capacity:
            victim = policy.victim(lambda k: k in resident)
            assert victim in resident
            resident.remove(victim)
            policy.on_remove(victim)
        resident.add(key)
        policy.on_insert(key)
    return hits, resident


def test_make_policy_names():
    for name, cls in [
        ("lru", LRU),
        ("mru", MRU),
        ("clock", Clock),
        ("lru-k", LRUK),
        ("2q", TwoQ),
        ("arc", ARC),
    ]:
        assert isinstance(make_policy(name, 16), cls)
    with pytest.raises(ValueError):
        make_policy("nope", 16)


def test_lru_evicts_least_recent():
    lru = LRU()
    for key in ("a", "b", "c"):
        lru.on_insert(key)
    lru.on_hit("a")  # order now b, c, a
    assert lru.victim(ALWAYS) == "b"


def test_lru_respects_pins():
    lru = LRU()
    for key in ("a", "b"):
        lru.on_insert(key)
    assert lru.victim(lambda k: k != "a") == "b"


def test_mru_evicts_most_recent():
    mru = MRU()
    for key in ("a", "b", "c"):
        mru.on_insert(key)
    assert mru.victim(ALWAYS) == "c"


def test_clock_gives_second_chance():
    clock = Clock()
    for key in ("a", "b", "c"):
        clock.on_insert(key)
    # All ref bits set; first sweep clears them, so 'a' goes first.
    assert clock.victim(ALWAYS) == "a"
    clock.on_remove("a")
    clock.on_hit("b")  # b gets its bit back
    assert clock.victim(ALWAYS) == "c"


def test_clock_remove_keeps_ring_consistent():
    clock = Clock()
    for key in ("a", "b", "c", "d"):
        clock.on_insert(key)
    clock.on_remove("b")
    clock.on_remove("d")
    assert clock.victim(ALWAYS) in ("a", "c")


def test_lruk_prefers_single_touch_pages():
    lruk = LRUK(k=2)
    lruk.on_insert("hot")
    lruk.on_hit("hot")  # two references
    lruk.on_insert("scan")  # one reference -> infinite backward distance
    assert lruk.victim(ALWAYS) == "scan"


def test_lruk_orders_by_kth_reference():
    lruk = LRUK(k=2)
    lruk.on_insert("x")  # refs at ticks 1, 2, 5
    lruk.on_hit("x")
    lruk.on_insert("y")  # refs at ticks 3, 4
    lruk.on_hit("y")
    lruk.on_hit("x")
    # Backward K-distance: x's 2nd-most-recent ref is tick 2, y's is
    # tick 3, so x has the larger distance and is evicted (despite its
    # most recent reference being the newest of all).
    assert lruk.victim(ALWAYS) == "x"


def test_lruk_rejects_bad_k():
    with pytest.raises(ValueError):
        LRUK(k=0)


def test_twoq_scan_pages_wash_through_a1in():
    twoq = TwoQ(capacity=4)
    twoq.on_insert("hot")
    twoq.on_remove("hot")  # hot -> ghost A1out
    twoq.on_insert("hot")  # ghost hit -> Am
    for key in ("s1", "s2", "s3"):
        twoq.on_insert(key)
    # A1in over threshold: victims come from the scan queue, not Am.
    assert twoq.victim(ALWAYS) == "s1"


def test_twoq_capacity_validation():
    with pytest.raises(ValueError):
        TwoQ(capacity=1)


def test_arc_ghost_hit_grows_recency_target():
    arc = ARC(capacity=4)
    arc.on_insert("a")
    arc.on_remove("a")  # a -> B1 ghost
    p_before = arc.p
    arc.on_insert("a")  # B1 ghost hit grows p and lands in T2
    assert arc.p > p_before


def test_arc_prefers_t1_when_over_target():
    arc = ARC(capacity=4)
    arc.on_insert("a")
    arc.on_hit("a")  # a promoted to T2
    arc.on_insert("b")  # b in T1, |T1| = 1 > p = 0
    assert arc.victim(ALWAYS) == "b"


def test_arc_frequency_beats_scan():
    arc = ARC(capacity=3)
    for key in ("h1", "h2"):
        arc.on_insert(key)
        arc.on_hit(key)  # promote to T2
    arc.on_insert("scan")
    assert arc.victim(ALWAYS) == "scan"


@pytest.mark.parametrize("name", ["lru", "mru", "clock", "lru-k", "2q", "arc"])
def test_policies_agree_on_small_loop_workload(name):
    """Every policy must correctly track residency over a random trace."""
    import random

    rng = random.Random(7)
    capacity = 8
    policy = make_policy(name, capacity)
    trace = [rng.randrange(20) for _ in range(500)]
    hits, resident = run_trace(policy, capacity, trace)
    assert len(resident) <= capacity
    assert hits > 0


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LRUK(k=2),
        # Ghost memory must cover the scan churn between hot re-references
        # for 2Q to recognise the hot set; 100% of capacity does.
        lambda: TwoQ(capacity=8, kout_fraction=1.0),
        lambda: ARC(capacity=8),
    ],
    ids=["lru-k", "2q", "arc"],
)
def test_scan_resistance_beats_lru(factory):
    """LRU-K/2Q/ARC keep a hot set alive through a big sequential scan."""
    hot = [f"h{i}" for i in range(4)]
    # Each round touches the hot set once, then 8 distinct scan pages --
    # enough to flush the whole 8-frame pool between hot re-references,
    # which defeats plain LRU entirely.
    trace = []
    for round_no in range(16):
        trace.extend(hot)
        trace.extend(f"s{round_no}_{i}" for i in range(8))

    def hits_for(policy):
        hits, _ = run_trace(policy, 8, trace)
        return hits

    assert hits_for(factory()) > hits_for(LRU())


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(["lru", "mru", "clock", "lru-k", "2q", "arc"]),
    trace=st.lists(st.integers(0, 30), min_size=1, max_size=400),
    capacity=st.integers(2, 12),
)
def test_property_policy_never_loses_track(name, trace, capacity):
    """Invariant: the victim is always a currently-resident key."""
    policy = make_policy(name, capacity)
    _hits, resident = run_trace(policy, capacity, trace)
    assert len(resident) <= capacity
    # After the trace, the policy must still produce valid victims until
    # the pool drains.
    while resident:
        victim = policy.victim(lambda k: k in resident)
        assert victim in resident
        resident.remove(victim)
        policy.on_remove(victim)
