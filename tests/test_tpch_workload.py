"""TPC-H workload validation: dbgen data properties and query plans.

Every query plan is checked against a naive Python evaluation over the
raw rows, on both engines.
"""

import random

import pytest

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.storage.manager import StorageManager
from repro.workloads.tpch import (
    TpchScale,
    date_int,
    generate_tpch,
    load_tpch,
)
from repro.workloads.tpch import queries as Q
from repro.workloads.tpch import schema as S


@pytest.fixture(scope="module")
def tpch():
    """A small loaded TPC-H database shared by this module's tests."""
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=256)
    tables = load_tpch(sm, TpchScale(factor=0.05), seed=7)
    return host, sm, tables


def run_both(tpch_db, plan):
    """Run the plan on both engines; assert equal; return the rows."""
    _host, sm, _tables = tpch_db
    reference = IteratorEngine(sm).run_query(plan)
    qpipe_rows = QPipeEngine(sm, QPipeConfig()).run_query(plan)
    assert sorted(qpipe_rows) == sorted(reference)
    return reference


# ---------------------------------------------------------------------------
# dbgen data properties
# ---------------------------------------------------------------------------
def test_generated_row_counts():
    scale = TpchScale(factor=0.05)
    tables = generate_tpch(scale, seed=7)
    assert len(tables["orders"]) == scale.orders
    assert len(tables["customer"]) == scale.customers
    assert len(tables["part"]) == scale.parts
    assert len(tables["region"]) == 5
    assert len(tables["nation"]) == 25
    # 1-7 lineitems per order.
    ratio = len(tables["lineitem"]) / len(tables["orders"])
    assert 1.0 <= ratio <= 7.0


def test_generation_is_deterministic():
    a = generate_tpch(TpchScale(0.02), seed=9)
    b = generate_tpch(TpchScale(0.02), seed=9)
    assert a == b
    c = generate_tpch(TpchScale(0.02), seed=10)
    assert a["orders"] != c["orders"]


def test_lineitem_dates_consistent():
    tables = generate_tpch(TpchScale(0.02), seed=7)
    li = S.LINEITEM
    ship = li.index_of("l_shipdate")
    receipt = li.index_of("l_receiptdate")
    for row in tables["lineitem"]:
        assert S.START_DATE < row[ship] < S.END_DATE + 122
        assert row[receipt] > row[ship]


def test_orders_keys_reference_customers():
    scale = TpchScale(0.02)
    tables = generate_tpch(scale, seed=7)
    custkeys = {c[0] for c in tables["customer"]}
    for order in tables["orders"]:
        assert order[1] in custkeys


def test_lineitem_clustered_on_orderkey(tpch):
    _host, sm, _tables = tpch
    stored = sm.catalog.table("lineitem").heap.all_rows()
    keys = [row[0] for row in stored]
    assert keys == sorted(keys)


def test_prioclass_matches_priority():
    tables = generate_tpch(TpchScale(0.02), seed=7)
    o = S.ORDERS
    pri, cls = o.index_of("o_orderpriority"), o.index_of("o_prioclass")
    for row in tables["orders"]:
        assert row[cls] == (1 if row[pri][0] in "12" else 0)


# ---------------------------------------------------------------------------
# Query correctness (both engines vs naive Python)
# ---------------------------------------------------------------------------
def li_col(name):
    return S.LINEITEM.index_of(name)


def o_col(name):
    return S.ORDERS.index_of(name)


def test_q1(tpch):
    _h, _sm, tables = tpch
    plan = Q.q1()
    rows = run_both(tpch, plan)
    cutoff = date_int(1998, 12, 1) - random.Random(0).randrange(60, 121)
    ship, rf, ls = li_col("l_shipdate"), li_col("l_returnflag"), li_col("l_linestatus")
    qty, price = li_col("l_quantity"), li_col("l_extendedprice")
    expected = {}
    for r in tables["lineitem"]:
        if r[ship] <= cutoff:
            g = expected.setdefault((r[rf], r[ls]), [0.0, 0])
            g[0] += r[qty]
            g[1] += 1
    assert len(rows) == len(expected)
    for row in rows:
        key = (row[0], row[1])
        assert row[2] == pytest.approx(expected[key][0])  # sum_qty
        assert row[9] == expected[key][1]  # count_order


def test_q4_hash_and_merge_agree(tpch):
    _h, sm, tables = tpch
    rng_a, rng_b = random.Random(3), random.Random(3)
    hash_rows = run_both(tpch, Q.q4_hash(rng_a))
    merge_rows = run_both(tpch, Q.q4_merge(rng_b))
    assert sorted(hash_rows) == sorted(merge_rows)


def test_q4_against_reference(tpch):
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q4_hash())
    order_pred, _ = Q._q4_predicates(None)
    lo = order_pred.terms[0].right.value if hasattr(order_pred, "terms") else None
    # Naive evaluation.
    od, opri = o_col("o_orderdate"), o_col("o_orderpriority")
    commit, receipt = li_col("l_commitdate"), li_col("l_receiptdate")
    r = random.Random(0)
    month_index = r.randrange(0, 58)
    year, month = 1993 + month_index // 12, 1 + month_index % 12
    lo = date_int(year, month, 1)
    hi = lo + 90
    qualifying_orders = {
        o[0]: o[opri]
        for o in tables["orders"]
        if lo <= o[od] < hi
    }
    expected = {}
    for line in tables["lineitem"]:
        pri = qualifying_orders.get(line[0])
        if pri is not None and line[commit] < line[receipt]:
            expected[pri] = expected.get(pri, 0) + 1
    assert dict(rows) == expected


def test_q6(tpch):
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q6())
    r = random.Random(0)
    year = r.randrange(1993, 1998)
    discount = r.randrange(2, 10) / 100.0
    quantity = r.randrange(24, 26)
    lo, hi = date_int(year, 1, 1), date_int(year + 1, 1, 1)
    ship, disc = li_col("l_shipdate"), li_col("l_discount")
    qty, price = li_col("l_quantity"), li_col("l_extendedprice")
    expected = sum(
        l[price] * l[disc]
        for l in tables["lineitem"]
        if lo <= l[ship] < hi
        and round(discount - 0.011, 3) <= l[disc] <= round(discount + 0.011, 3)
        and l[qty] < quantity
    )
    assert rows[0][0] == pytest.approx(expected)


def test_q12(tpch):
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q12())
    r = random.Random(0)
    mode1, mode2 = r.sample(S.SHIP_MODES, 2)
    year = r.randrange(1993, 1998)
    lo, hi = date_int(year, 1, 1), date_int(year + 1, 1, 1)
    orders = {o[0]: o[o_col("o_prioclass")] for o in tables["orders"]}
    ship, commit, receipt, mode = (
        li_col("l_shipdate"), li_col("l_commitdate"),
        li_col("l_receiptdate"), li_col("l_shipmode"),
    )
    expected = {}
    for l in tables["lineitem"]:
        if (
            l[mode] in (mode1, mode2)
            and l[commit] < l[receipt]
            and l[ship] < l[commit]
            and lo <= l[receipt] < hi
        ):
            g = expected.setdefault(l[mode], [0, 0])
            if orders[l[0]] == 1:
                g[0] += 1
            else:
                g[1] += 1
    got = {row[0]: (row[1], row[2]) for row in rows}
    assert got == {k: tuple(v) for k, v in expected.items()}


def test_q13(tpch):
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q13())
    counts = {}
    for o in tables["orders"]:
        counts[o[1]] = counts.get(o[1], 0) + 1
    hist = {}
    for _cust, n in counts.items():
        hist[n] = hist.get(n, 0) + 1
    assert dict(rows) == hist


def test_q14(tpch):
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q14())
    r = random.Random(0)
    month_index = r.randrange(0, 60)
    year, month = 1993 + month_index // 12, 1 + month_index % 12
    lo = date_int(year, month, 1)
    hi = date_int(year + (month == 12), month % 12 + 1, 1)
    parts = {p[0]: p[4] for p in tables["part"]}  # p_type
    ship = li_col("l_shipdate")
    price, disc = li_col("l_extendedprice"), li_col("l_discount")
    promo = total = 0.0
    for l in tables["lineitem"]:
        if lo <= l[ship] < hi:
            revenue = l[price] * (1 - l[disc])
            total += revenue
            if parts[l[1]].startswith("PROMO"):
                promo += revenue
    assert rows[0][0] == pytest.approx(promo)
    assert rows[0][1] == pytest.approx(total)


def test_q8_groups_by_year(tpch):
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q8())
    years = {row[0] for row in rows}
    # The date filter keeps 1995-1996 orders only.
    assert years <= {1994, 1995, 1996, 1997}
    assert all(row[1] >= 0 for row in rows)


def test_q19_reference(tpch):
    _h, _sm, tables = tpch
    rng = random.Random(11)
    plan = Q.q19(rng)
    rows = run_both(tpch, plan)
    assert len(rows) == 1
    assert rows[0][0] is not None or rows[0][0] is None  # runs to completion


def test_qgen_randomisation_varies_parameters():
    rng = random.Random(1)
    sigs = {repr(Q.q6(rng).children[0].predicate.signature()) for _ in range(8)}
    assert len(sigs) > 1


def test_query_builders_registry():
    assert set(Q.QUERY_BUILDERS) == {
        "q1", "q4", "q6", "q8", "q12", "q13", "q14", "q19"
    }
    for builder in Q.QUERY_BUILDERS.values():
        assert builder(random.Random(2)) is not None


def test_q4_exists_counts_orders_once(tpch):
    """The spec-exact Q4: each qualifying order counted once."""
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q4_exists())
    r = random.Random(0)
    month_index = r.randrange(0, 58)
    year, month = 1993 + month_index // 12, 1 + month_index % 12
    lo = date_int(year, month, 1)
    hi = lo + 90
    od, opri = o_col("o_orderdate"), o_col("o_orderpriority")
    commit, receipt = li_col("l_commitdate"), li_col("l_receiptdate")
    late_orders = {
        l[0] for l in tables["lineitem"] if l[commit] < l[receipt]
    }
    expected = {}
    for o in tables["orders"]:
        if lo <= o[od] < hi and o[0] in late_orders:
            expected[o[opri]] = expected.get(o[opri], 0) + 1
    assert dict(rows) == expected


def test_q13_outer_includes_orderless_customers(tpch):
    """The spec-exact Q13: customers without orders form the 0 bucket."""
    _h, _sm, tables = tpch
    rows = run_both(tpch, Q.q13_outer())
    counts = {c[0]: 0 for c in tables["customer"]}
    for o in tables["orders"]:
        counts[o[1]] += 1
    hist = {}
    for n in counts.values():
        hist[n] = hist.get(n, 0) + 1
    assert dict(rows) == hist
    # The inner-join variant must agree on every nonzero bucket.
    inner = dict(run_both(tpch, Q.q13()))
    assert {k: v for k, v in rows if k != 0} == inner
