"""Engine-level update semantics (section 4.3.4).

"QPipe runs any type of workload, as it charges the underlying storage
manager with lock and update management by routing update requests to a
dedicated micro-engine with no OSP functionality. ... If a table is
locked for writing, the scan packet will simply wait (and with it, all
satellite ones), until the lock is released."
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, InsertRows, Sort, TableScan, UpdateRows


def test_scan_waits_for_writer(big_db):
    """A scan submitted while an update holds the X lock blocks until
    the writer releases -- and then sees the writer's rows."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    sim = host.sim
    order = []

    new_rows = [(100_000 + i, 0, 1.0, "w") for i in range(40)]

    def writer():
        result = yield from engine.execute(InsertRows("r", new_rows))
        order.append(("write done", sim.now))
        return result

    def reader():
        yield sim.timeout(0.001)  # arrive just after the writer
        result = yield from engine.execute(
            Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
        )
        order.append(("read done", sim.now))
        return result

    w = sim.spawn(writer())
    r = sim.spawn(reader())
    sim.run_until_done([w, r])
    assert order[0][0] == "write done"
    # The scan saw the committed insert (it waited for the X lock).
    assert r.value.rows == [(len(r_rows) + len(new_rows),)]


def test_writer_waits_for_active_scan(big_db):
    """An update submitted mid-scan waits for the shared lock holders."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    sim = host.sim

    def reader():
        result = yield from engine.execute(
            Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
        )
        return result

    def writer():
        yield sim.timeout(1.0)  # the scan is under way
        result = yield from engine.execute(
            InsertRows("r", [(200_000, 0, 1.0, "w")])
        )
        return result

    r = sim.spawn(reader())
    w = sim.spawn(writer())
    sim.run_until_done([r, w])
    # The reader's count excludes the later insert...
    assert r.value.rows == [(len(r_rows),)]
    # ...and the writer finished only after the scan released its lock.
    assert w.value.finished_at >= r.value.finished_at


def test_updates_never_shared(big_db):
    """Two identical-looking inserts both execute (no OSP on updates)."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    sim = host.sim

    def writer():
        result = yield from engine.execute(
            InsertRows("r", [(300_000, 0, 1.0, "w")])
        )
        return result

    a = sim.spawn(writer())
    b = sim.spawn(writer())
    sim.run_until_done([a, b])
    assert engine.osp_stats.attaches["update"] == 0
    assert sm.num_rows("r") == len(r_rows) + 2


def test_update_rows_predicate(big_db):
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig())
    changed = engine.run_query(
        UpdateRows(
            "r",
            predicate=Col("grp") == 0,
            apply=lambda row: (row[0], row[1], -5.0, row[3]),
        )
    )
    expected = sum(1 for r in r_rows if r[1] == 0)
    assert changed == [(expected,)]
    stored = sm.catalog.table("r").heap.all_rows()
    assert sum(1 for r in stored if r[2] == -5.0) == expected


def test_descending_external_sort_both_engines(big_db):
    """External (spilled) descending sorts are exact on both engines."""
    from repro.baseline.engine import IteratorEngine

    _h, sm, r_rows, _s = big_db
    plan = Sort(TableScan("r"), keys=["val"], descending=True)
    expected = sorted(r_rows, key=lambda r: r[2], reverse=True)
    reference = IteratorEngine(sm, work_mem_tuples=300).run_query(plan)
    qpipe = QPipeEngine(
        sm, QPipeConfig(work_mem_tuples=300)
    ).run_query(plan)
    assert [r[2] for r in reference] == [r[2] for r in expected]
    assert [r[2] for r in qpipe] == [r[2] for r in expected]
