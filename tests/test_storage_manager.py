"""Integration tests for the StorageManager facade."""

import pytest

from repro.hw.host import Host, HostConfig
from repro.relational.schema import Schema
from repro.storage.manager import StorageManager
from repro.storage.page import RID


def make_sm(buffer_pages=64, policy="lru"):
    host = Host(HostConfig())
    return host, StorageManager(host, buffer_pages=buffer_pages, policy=policy)


def drive(host, gen):
    proc = host.sim.spawn(gen)
    host.sim.run()
    assert proc.triggered
    return proc.value


SCHEMA = Schema.of("id:int", "grp:int", "name:str:20")
ROWS = [(i, i % 5, f"name{i:04d}") for i in range(100)]


def test_create_and_load_table():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    assert sm.load_table("t", ROWS) == 100
    info = sm.catalog.table("t")
    assert info.num_rows == 100
    assert info.num_pages > 0
    assert info.heap.all_rows() == ROWS


def test_double_load_rejected():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)
    with pytest.raises(ValueError):
        sm.load_table("t", ROWS)


def test_clustered_load_sorts_rows():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA, clustered_on=["grp"])
    sm.load_table("t", ROWS)
    stored = sm.catalog.table("t").heap.all_rows()
    assert [r[1] for r in stored] == sorted(r[1] for r in ROWS)


def test_read_table_page_charges_time():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)

    def reader():
        page = yield from sm.read_table_page("t", 0)
        return page.rows()

    rows = drive(host, reader())
    assert rows[0] == (0, 0, "name0000")
    assert host.sim.now > 0  # disk time charged
    assert host.disk.stats.blocks_read == 1


def test_fetch_row_by_rid():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)

    def fetcher():
        row = yield from sm.fetch_row("t", RID(0, 3))
        return row

    assert drive(host, fetcher()) == ROWS[3]


def test_unclustered_index_range():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)
    sm.create_index("t", ["grp"], name="t_grp")

    def prober():
        pairs = yield from sm.index_range("t", "t_grp", lo=2, hi=2)
        return pairs

    pairs = drive(host, prober())
    assert all(key == 2 for key, _rid in pairs)
    assert len(pairs) == 20  # 100 rows, 5 groups


def test_index_range_fetches_match_rows():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)
    sm.create_index("t", ["id"], name="t_id")

    def prober():
        pairs = yield from sm.index_range("t", "t_id", lo=10, hi=12)
        rows = []
        for _key, rid in pairs:
            row = yield from sm.fetch_row("t", rid)
            rows.append(row)
        return rows

    assert drive(host, prober()) == ROWS[10:13]


def test_clustered_index_requires_matching_cluster():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA, clustered_on=["id"])
    sm.load_table("t", ROWS)
    with pytest.raises(ValueError):
        sm.create_index("t", ["grp"], clustered=True)
    index = sm.create_index("t", ["id"], clustered=True)
    assert index.clustered


def test_index_created_before_load_is_built():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.create_index("t", ["id"], name="t_id")
    sm.load_table("t", ROWS)

    def prober():
        pairs = yield from sm.index_range("t", "t_id", lo=5, hi=5)
        return pairs

    pairs = drive(host, prober())
    assert len(pairs) == 1


def test_insert_row_maintains_indexes():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)
    sm.create_index("t", ["id"], name="t_id")

    def writer():
        rid = yield from sm.insert_row("t", (999, 0, "newrow"))
        return rid

    rid = drive(host, writer())
    tree = sm.catalog.index("t", "t_id").tree
    assert tree.search(999) == [rid]
    assert host.disk.stats.blocks_written >= 2  # heap page + index leaf


def test_insert_arity_checked():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)

    def writer():
        yield from sm.insert_row("t", (1,))

    proc = host.sim.spawn(writer())
    with pytest.raises(Exception):
        host.sim.run()


def test_delete_row_unhooks_indexes():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)
    sm.create_index("t", ["id"], name="t_id")

    def deleter():
        removed = yield from sm.delete_row("t", RID(0, 0))
        return removed

    assert drive(host, deleter()) is True
    assert sm.catalog.index("t", "t_id").tree.search(0) == []


def test_update_row_moves_index_entry():
    host, sm = make_sm()
    sm.create_table("t", SCHEMA)
    sm.load_table("t", ROWS)
    sm.create_index("t", ["grp"], name="t_grp")

    def updater():
        ok = yield from sm.update_row("t", RID(0, 0), (0, 99, "moved"))
        return ok

    assert drive(host, updater()) is True
    tree = sm.catalog.index("t", "t_grp").tree
    assert RID(0, 0) in tree.search(99)
    assert RID(0, 0) not in tree.search(0)


def test_temp_file_lifecycle():
    host, sm = make_sm()
    heap = sm.create_temp_file(row_width=20, label="run")

    def writer():
        count = yield from sm.write_run(heap, [(i,) for i in range(50)])
        return count

    assert drive(host, writer()) == 50
    assert host.disk.stats.blocks_written > 0

    def reader():
        page = yield from sm.read_temp_page(heap, 0)
        return page.rows()[0]

    assert drive(host, reader()) == (0,)
    sm.drop_temp_file(heap)
    assert not sm.pool.contains(heap.file_id, 0)
