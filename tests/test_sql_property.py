"""Property tests for the SQL front end.

Random (template-driven) SQL statements must (a) compile, (b) produce
identical results on both engines, and (c) agree with a naive Python
evaluation of the same semantics.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.sql import plan, run
from repro.storage.manager import StorageManager

import tests.conftest as cf


def build_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=96)
    r_rows = cf.make_r_rows(n=120)
    s_rows = cf.make_s_rows(n=50, r_n=120)
    sm.create_table("r", cf.R_SCHEMA)
    sm.load_table("r", r_rows)
    sm.create_table("s", cf.S_SCHEMA)
    sm.load_table("s", s_rows)
    return host, sm, r_rows, s_rows


COMPARATORS = ("<", "<=", ">", ">=", "=", "<>")


def predicate_sql(rng: random.Random) -> str:
    kind = rng.randrange(4)
    if kind == 0:
        op = rng.choice(COMPARATORS)
        return f"grp {op} {rng.randrange(7)}"
    if kind == 1:
        lo = rng.randrange(0, 80)
        return f"val BETWEEN {lo} AND {lo + rng.randrange(5, 40)}"
    if kind == 2:
        values = ", ".join(str(rng.randrange(7)) for _ in range(3))
        return f"grp IN ({values})"
    return f"tag LIKE 't{rng.randrange(4)}%'"


def predicate_python(sql_pred: str):
    """Mirror predicate_sql semantics over raw r rows."""
    import re

    if sql_pred.startswith("grp IN"):
        values = {int(v) for v in re.findall(r"\d+", sql_pred)}
        return lambda r: r[1] in values
    if sql_pred.startswith("val BETWEEN"):
        lo, hi = (int(v) for v in re.findall(r"\d+", sql_pred))
        return lambda r: lo <= r[2] <= hi
    if sql_pred.startswith("tag LIKE"):
        prefix = sql_pred.split("'")[1].rstrip("%")
        return lambda r: r[3].startswith(prefix)
    match = re.match(r"grp (\S+) (\d+)", sql_pred)
    op, value = match.group(1), int(match.group(2))
    import operator as _op

    fn = {
        "<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge,
        "=": _op.eq, "<>": _op.ne,
    }[op]
    return lambda r: fn(r[1], value)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_filtered_projections_agree_with_python(seed):
    rng = random.Random(seed)
    pred = predicate_sql(rng)
    sql = f"SELECT id, val FROM r WHERE {pred}"
    host, sm, r_rows, _s = build_db()
    got = run(IteratorEngine(sm), sql)
    qp = run(QPipeEngine(sm, QPipeConfig()), sql)
    check = predicate_python(pred)
    expected = sorted((r[0], r[2]) for r in r_rows if check(r))
    assert sorted(got) == expected
    assert sorted(qp) == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_grouped_aggregates_agree_with_python(seed):
    rng = random.Random(seed)
    pred = predicate_sql(rng)
    sql = (
        f"SELECT grp, COUNT(*) AS n, SUM(val) AS sv FROM r "
        f"WHERE {pred} GROUP BY grp"
    )
    host, sm, r_rows, _s = build_db()
    got = run(IteratorEngine(sm), sql)
    check = predicate_python(pred)
    expected = {}
    for r in r_rows:
        if check(r):
            agg = expected.setdefault(r[1], [0, 0.0])
            agg[0] += 1
            agg[1] += r[2]
    assert {g: n for g, n, _sv in got} == {
        g: v[0] for g, v in expected.items()
    }
    for g, _n, sv in got:
        assert sv == pytest.approx(expected[g][1])


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    limit=st.integers(1, 30),
    descending=st.booleans(),
)
def test_order_limit_agree_with_python(seed, limit, descending):
    rng = random.Random(seed)
    pred = predicate_sql(rng)
    direction = "DESC" if descending else "ASC"
    sql = (
        f"SELECT id FROM r WHERE {pred} ORDER BY id {direction} "
        f"LIMIT {limit}"
    )
    host, sm, r_rows, _s = build_db()
    got = run(IteratorEngine(sm), sql)
    check = predicate_python(pred)
    ids = sorted((r[0] for r in r_rows if check(r)), reverse=descending)
    assert got == [(i,) for i in ids[:limit]]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_joins_agree_with_python(seed):
    rng = random.Random(seed)
    pred = predicate_sql(rng)
    sql = (
        f"SELECT r.id, s.w FROM r JOIN s ON r.id = s.rid WHERE {pred}"
    )
    host, sm, r_rows, s_rows = build_db()
    got = run(IteratorEngine(sm), sql)
    check = predicate_python(pred)
    by_id = {r[0]: r for r in r_rows}
    expected = sorted(
        (s[1], s[2]) for s in s_rows
        if s[1] in by_id and check(by_id[s[1]])
    )
    assert sorted(got) == expected
