"""WAL + transaction tests: atomicity, durability, crash recovery."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.host import Host, HostConfig
from repro.relational.schema import Schema
from repro.storage.manager import StorageManager
from repro.storage.page import RID
from repro.storage.wal import (
    LogType,
    TransactionManager,
    TransactionState,
)

SCHEMA = Schema.of("id:int", "v:int")


def make_db(rows=20):
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=64)
    sm.create_table("t", SCHEMA)
    sm.load_table("t", [(i, i * 10) for i in range(rows)])
    sm.create_index("t", ["id"], name="t_id")
    return host, sm, TransactionManager(sm)


def drive(host, gen):
    proc = host.sim.spawn(gen)
    host.sim.run()
    assert proc.triggered
    return proc.value


def table_rows(sm):
    return sorted(sm.catalog.table("t").heap.all_rows())


def test_commit_makes_changes_visible():
    host, sm, tm = make_db()

    def work():
        txn = tm.begin()
        rid = yield from tm.insert(txn, "t", (100, 1000))
        yield from tm.update(txn, "t", RID(0, 0), (0, -1))
        yield from tm.commit(txn)
        return rid

    rid = drive(host, work())
    rows = table_rows(sm)
    assert (100, 1000) in rows
    assert (0, -1) in rows
    assert sm.catalog.index("t", "t_id").tree.search(100) == [rid]


def test_abort_rolls_back_everything():
    host, sm, tm = make_db()
    before = table_rows(sm)

    def work():
        txn = tm.begin()
        yield from tm.insert(txn, "t", (100, 1000))
        yield from tm.update(txn, "t", RID(0, 0), (0, -1))
        yield from tm.delete(txn, "t", RID(0, 1))
        yield from tm.abort(txn)

    drive(host, work())
    assert table_rows(sm) == before
    assert sm.catalog.index("t", "t_id").tree.search(100) == []
    assert sm.catalog.index("t", "t_id").tree.search(1) != []  # restored


def test_operations_on_finished_txn_rejected():
    host, sm, tm = make_db()

    def work():
        txn = tm.begin()
        yield from tm.commit(txn)
        try:
            yield from tm.insert(txn, "t", (200, 0))
        except Exception:
            return "rejected"
        return "accepted"

    assert drive(host, work()) == "rejected"


def test_commit_flushes_log():
    host, sm, tm = make_db()

    def work():
        txn = tm.begin()
        yield from tm.insert(txn, "t", (100, 1000))
        yield from tm.commit(txn)

    drive(host, work())
    assert tm.wal.flushed_lsn == tm.wal.tail_lsn
    types = [r.type for r in tm.wal.durable_records()]
    assert types[-1] is LogType.COMMIT
    assert host.disk.stats.blocks_written > 0  # data pages
    assert tm.wal.device.stats.blocks_written > 0  # log device


def test_crash_undoes_unfinished_transactions():
    host, sm, tm = make_db()
    before = table_rows(sm)

    def work():
        committed = tm.begin()
        yield from tm.insert(committed, "t", (100, 1000))
        yield from tm.commit(committed)
        loser = tm.begin()
        yield from tm.insert(loser, "t", (200, 2000))
        yield from tm.update(loser, "t", RID(0, 0), (0, -999))
        yield from tm.delete(loser, "t", RID(0, 2))
        # crash here: loser never commits

    drive(host, work())
    tm.simulate_crash()

    def recovery():
        undone = yield from tm.recover()
        return undone

    undone = drive(host, recovery())
    rows = table_rows(sm)
    assert (100, 1000) in rows  # committed work survives
    assert (200, 2000) not in rows  # loser insert undone
    assert (0, 0) in rows  # loser update undone
    assert (2, 20) in rows  # loser delete undone
    assert len(undone) == 1
    assert sorted(rows) == sorted(before + [(100, 1000)])


def test_recovery_is_idempotent():
    host, sm, tm = make_db()

    def work():
        loser = tm.begin()
        yield from tm.insert(loser, "t", (300, 3000))

    drive(host, work())
    tm.simulate_crash()
    drive(host, tm.recover())
    rows_after_first = table_rows(sm)
    drive(host, tm.recover())
    assert table_rows(sm) == rows_after_first


def test_interleaved_transactions_recover_independently():
    host, sm, tm = make_db()

    def work():
        a = tm.begin()
        b = tm.begin()
        yield from tm.insert(a, "t", (101, 1))
        yield from tm.insert(b, "t", (102, 2))
        yield from tm.update(a, "t", RID(0, 3), (3, -3))
        yield from tm.commit(a)
        yield from tm.update(b, "t", RID(0, 4), (4, -4))
        # b never commits

    drive(host, work())
    tm.simulate_crash()
    drive(host, tm.recover())
    rows = table_rows(sm)
    assert (101, 1) in rows and (3, -3) in rows  # a committed
    assert (102, 2) not in rows and (4, 40) in rows  # b undone


def test_abort_state_transitions():
    host, sm, tm = make_db()

    def work():
        txn = tm.begin()
        yield from tm.insert(txn, "t", (100, 0))
        yield from tm.abort(txn)
        return txn.state

    assert drive(host, work()) is TransactionState.ABORTED


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(0, 19),
        ),
        min_size=1,
        max_size=12,
    ),
    crash_before_commit=st.booleans(),
)
def test_property_crash_recovery_atomicity(ops, crash_before_commit):
    """After crash + recovery, either ALL of a transaction's effects are
    present (committed) or NONE are (loser)."""
    host, sm, tm = make_db()
    before = table_rows(sm)

    def work():
        txn = tm.begin()
        inserted = 100
        for op, slot in ops:
            page = sm.catalog.table("t").heap.page(0)
            if op == "insert":
                nonlocal_insert = (1000 + inserted, 0)
                yield from tm.insert(txn, "t", nonlocal_insert)
                inserted += 1
            elif op == "update":
                if page.get(slot) is not None:
                    yield from tm.update(txn, "t", RID(0, slot), (slot, -1))
            else:
                if page.get(slot) is not None:
                    yield from tm.delete(txn, "t", RID(0, slot))
        if not crash_before_commit:
            yield from tm.commit(txn)

    drive(host, work())
    after_work = table_rows(sm)
    tm.simulate_crash()
    drive(host, tm.recover())
    rows = table_rows(sm)
    if crash_before_commit:
        assert rows == before  # atomicity: nothing survives
    else:
        assert rows == after_work  # durability: everything survives
