"""Property test: all three engines return identical results for random
plans.

Hypothesis generates random (but well-formed) logical plans over the
fixture tables; the QPipe engine, the iterator engine and the push-based
fused engine must agree on every one of them.  This is the repository's
strongest end-to-end correctness check: it covers scans, index scans,
filters, projections, sorts, all three joins, aggregates and group-bys
in random compositions.

The push engine's contract is stronger than row equality: it must replay
the iterator engine's *virtual-cost schedule* exactly, so those two legs
also compare row order, virtual clocks and disk I/O counters.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.pushexec import PushEngine
from repro.hw.host import Host, HostConfig
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    MergeJoin,
    NLJoin,
    Project,
    Sort,
    TableScan,
)
from repro.storage.manager import StorageManager

import tests.conftest as cf


def build_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=96)
    sm.create_table("r", cf.R_SCHEMA, clustered_on=["id"])
    sm.load_table("r", cf.make_r_rows(n=160))
    sm.create_index("r", ["id"], name="r_id", clustered=True)
    sm.create_index("r", ["grp"], name="r_grp")
    sm.create_table("s", cf.S_SCHEMA)
    sm.load_table("s", cf.make_s_rows(n=70, r_n=160))
    return host, sm


def r_predicate(rng: random.Random):
    return rng.choice(
        [
            None,
            Col("grp") == rng.randrange(7),
            Col("val") > rng.uniform(10, 90),
            (Col("grp") <= 4) & (Col("val") < rng.uniform(30, 95)),
        ]
    )


def r_source(rng: random.Random):
    choice = rng.randrange(3)
    if choice == 0:
        return TableScan("r", predicate=r_predicate(rng))
    if choice == 1:
        lo = rng.randrange(0, 120)
        return IndexScan(
            "r", "r_id", lo=lo, hi=lo + rng.randrange(10, 60),
            ordered=rng.random() < 0.5,
        )
    grp = rng.randrange(7)
    return IndexScan("r", "r_grp", lo=grp, hi=grp + rng.randrange(0, 3))


def random_plan(seed: int):
    rng = random.Random(seed)
    base = r_source(rng)
    shape = rng.randrange(6)
    if shape == 0:
        return Sort(base, keys=["val"], descending=rng.random() < 0.5)
    if shape == 1:
        return GroupBy(
            base,
            ["grp"],
            [AggSpec("count", None, "n"), AggSpec("sum", Col("val"), "sv")],
        )
    if shape == 2:
        return Aggregate(
            Filter(base, Col("val") >= rng.uniform(0, 50)),
            [AggSpec("min", Col("id"), "lo"), AggSpec("max", Col("id"), "hi"),
             AggSpec("count", None, "n")],
        )
    if shape == 3:
        join = HashJoin(base, TableScan("s"), "id", "rid")
        return GroupBy(join, ["grp"], [AggSpec("sum", Col("w"), "sw")])
    if shape == 4:
        join = MergeJoin(
            Sort(base, keys=["id"]),
            Sort(TableScan("s"), keys=["rid"]),
            "id",
            "rid",
        )
        return Aggregate(join, [AggSpec("count", None, "n")])
    return Project(
        Sort(base, keys=["id"]),
        ["twice"],
        exprs=[Col("val") * 2],
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_engines_agree_on_random_plans(seed):
    """Three-way differential: iterator vs QPipe vs push backend."""
    plan = random_plan(seed)

    host, sm = build_db()
    reference = IteratorEngine(sm).run_query(plan)

    host2, sm2 = build_db()
    qpipe = QPipeEngine(sm2, QPipeConfig(osp_enabled=True)).run_query(plan)

    assert sorted(qpipe) == sorted(reference)
    # Order-producing roots must match exactly, not just as multisets.
    if isinstance(plan, (Sort, Project)):
        assert qpipe == reference

    host3, sm3 = build_db()
    pushed = PushEngine(sm3).run_query(plan)
    # Virtual-cost equivalence: same rows in the same order, same
    # virtual finish time, same disk traffic as the iterator reference.
    assert pushed == reference
    assert host3.sim.now == host.sim.now
    assert host3.disk.stats.blocks_read == host.disk.stats.blocks_read
    assert host3.disk.stats.blocks_written == host.disk.stats.blocks_written


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_pushed_agrees_under_memory_pressure(seed):
    """The spill paths (external sort, Grace hash join) replay the
    iterator schedule too: a tiny work_mem forces them on both sides."""
    plan = random_plan(seed)

    host, sm = build_db()
    reference = IteratorEngine(sm, work_mem_tuples=40).run_query(plan)

    host2, sm2 = build_db()
    pushed = PushEngine(sm2, work_mem_tuples=40).run_query(plan)

    assert pushed == reference
    assert host2.sim.now == host.sim.now
    assert host2.disk.stats.blocks_read == host.disk.stats.blocks_read
    assert host2.disk.stats.blocks_written == host.disk.stats.blocks_written


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_osp_on_off_agree_on_random_plans(seed):
    plan = random_plan(seed)
    host, sm = build_db()
    with_osp = QPipeEngine(sm, QPipeConfig(osp_enabled=True)).run_query(plan)
    host2, sm2 = build_db()
    without = QPipeEngine(sm2, QPipeConfig(osp_enabled=False)).run_query(plan)
    assert sorted(with_osp) == sorted(without)


# ---------------------------------------------------------------------------
# Differential harness: seeded random Wisconsin SQL through all engines
# ---------------------------------------------------------------------------
from repro.sql import plan as sql_plan  # noqa: E402
from repro.workloads.wisconsin import WisconsinScale, load_wisconsin  # noqa: E402

DIFFERENTIAL_SEEDS = list(range(30))


def build_wisconsin_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=64)
    load_wisconsin(sm, WisconsinScale(big_rows=300), seed=7)
    return host, sm


def random_wisconsin_sql(seed: int) -> str:
    """One random (but deterministic per seed) Wisconsin-style query.

    Every ORDER BY key below is unique per row/group, so LIMIT results
    are well-defined and comparable across engines.
    """
    rng = random.Random(seed)
    big = rng.choice(["big1", "big2"])
    k = rng.randrange(50, 280)
    a = rng.randrange(0, 150)
    b = a + rng.randrange(20, 120)
    d = rng.randrange(10)
    templates = [
        f"SELECT onepercent, COUNT(*) AS n, SUM(unique1) AS s FROM {big} "
        f"WHERE unique1 < {k} GROUP BY onepercent ORDER BY onepercent",
        f"SELECT unique1, unique2 FROM {big} "
        f"WHERE unique1 BETWEEN {a} AND {b} ORDER BY unique1",
        f"SELECT DISTINCT ten FROM {big} WHERE unique1 < {k}",
        f"SELECT COUNT(*) AS n FROM {big} "
        f"JOIN small ON {big}.unique1 = small.unique1 "
        f"WHERE {big}.unique1 < {k}",
        f"SELECT four, MIN(unique1) AS lo, MAX(unique1) AS hi FROM {big} "
        f"WHERE unique1 >= {a} GROUP BY four ORDER BY four",
        f"SELECT unique2 FROM small WHERE tenpercent = {d} "
        f"ORDER BY unique2 LIMIT 10",
    ]
    return templates[rng.randrange(len(templates))]


def _run_concurrent(host, engine, plans, stagger: float = 0.0):
    """Submit all *plans* with small staggers so OSP can share work."""
    procs = []

    def client(p, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(p)
        return result

    for i, p in enumerate(plans):
        procs.append(host.sim.spawn(client(p, i * stagger), name=f"dq{i}"))
    host.sim.run_until_done(procs)
    return [proc.value.rows for proc in procs]


def _is_aggregate_sql(sql: str) -> bool:
    return any(fn in sql for fn in ("COUNT(", "SUM(", "MIN(", "MAX("))


def test_differential_wisconsin_sql():
    """~30 seeded random SQL queries agree across the iterator engine,
    QPipe with sharing off, QPipe with sharing on (submitted
    concurrently), and the push backend."""
    queries = {seed: random_wisconsin_sql(seed) for seed in DIFFERENTIAL_SEEDS}

    host_ref, sm_ref = build_wisconsin_db()
    ref_engine = IteratorEngine(sm_ref)
    reference_exact = {
        seed: ref_engine.run_query(sql_plan(sql, sm_ref.catalog))
        for seed, sql in queries.items()
    }
    reference = {
        seed: sorted(rows) for seed, rows in reference_exact.items()
    }

    host_push, sm_push = build_wisconsin_db()
    push_engine = PushEngine(sm_push)
    aggregates = 0
    for seed, sql in queries.items():
        got = push_engine.run_query(sql_plan(sql, sm_push.catalog))
        # Schedule equivalence: exact row order, not just the multiset.
        assert got == reference_exact[seed], (
            f"pushed mismatch seed {seed}: {sql}"
        )
        if _is_aggregate_sql(sql):
            aggregates += 1
    # The seed range must actually have exercised aggregate equality.
    assert aggregates >= 5
    assert host_push.sim.now == host_ref.sim.now
    assert (
        host_push.disk.stats.blocks_read == host_ref.disk.stats.blocks_read
    )

    host_off, sm_off = build_wisconsin_db()
    engine_off = QPipeEngine(sm_off, QPipeConfig(osp_enabled=False))
    for seed, sql in queries.items():
        got = sorted(engine_off.run_query(sql_plan(sql, sm_off.catalog)))
        assert got == reference[seed], f"OSP-off mismatch seed {seed}: {sql}"

    host_on, sm_on = build_wisconsin_db()
    engine_on = QPipeEngine(sm_on, QPipeConfig(osp_enabled=True))
    compiled = [sql_plan(sql, sm_on.catalog) for sql in queries.values()]
    all_rows = _run_concurrent(host_on, engine_on, compiled)
    for (seed, sql), rows in zip(queries.items(), all_rows):
        assert sorted(rows) == reference[seed], (
            f"OSP-on mismatch seed {seed}: {sql}"
        )
    # The concurrent submission must actually have exercised sharing.
    stats = engine_on.osp_stats
    assert stats.attaches or stats.shared_page_deliveries
