"""Property test: both engines return identical results for random plans.

Hypothesis generates random (but well-formed) logical plans over the
fixture tables; the QPipe engine and the iterator engine must agree on
every one of them.  This is the repository's strongest end-to-end
correctness check: it covers scans, index scans, filters, projections,
sorts, all three joins, aggregates and group-bys in random compositions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    MergeJoin,
    NLJoin,
    Project,
    Sort,
    TableScan,
)
from repro.storage.manager import StorageManager

import tests.conftest as cf


def build_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=96)
    sm.create_table("r", cf.R_SCHEMA, clustered_on=["id"])
    sm.load_table("r", cf.make_r_rows(n=160))
    sm.create_index("r", ["id"], name="r_id", clustered=True)
    sm.create_index("r", ["grp"], name="r_grp")
    sm.create_table("s", cf.S_SCHEMA)
    sm.load_table("s", cf.make_s_rows(n=70, r_n=160))
    return host, sm


def r_predicate(rng: random.Random):
    return rng.choice(
        [
            None,
            Col("grp") == rng.randrange(7),
            Col("val") > rng.uniform(10, 90),
            (Col("grp") <= 4) & (Col("val") < rng.uniform(30, 95)),
        ]
    )


def r_source(rng: random.Random):
    choice = rng.randrange(3)
    if choice == 0:
        return TableScan("r", predicate=r_predicate(rng))
    if choice == 1:
        lo = rng.randrange(0, 120)
        return IndexScan(
            "r", "r_id", lo=lo, hi=lo + rng.randrange(10, 60),
            ordered=rng.random() < 0.5,
        )
    grp = rng.randrange(7)
    return IndexScan("r", "r_grp", lo=grp, hi=grp + rng.randrange(0, 3))


def random_plan(seed: int):
    rng = random.Random(seed)
    base = r_source(rng)
    shape = rng.randrange(6)
    if shape == 0:
        return Sort(base, keys=["val"], descending=rng.random() < 0.5)
    if shape == 1:
        return GroupBy(
            base,
            ["grp"],
            [AggSpec("count", None, "n"), AggSpec("sum", Col("val"), "sv")],
        )
    if shape == 2:
        return Aggregate(
            Filter(base, Col("val") >= rng.uniform(0, 50)),
            [AggSpec("min", Col("id"), "lo"), AggSpec("max", Col("id"), "hi"),
             AggSpec("count", None, "n")],
        )
    if shape == 3:
        join = HashJoin(base, TableScan("s"), "id", "rid")
        return GroupBy(join, ["grp"], [AggSpec("sum", Col("w"), "sw")])
    if shape == 4:
        join = MergeJoin(
            Sort(base, keys=["id"]),
            Sort(TableScan("s"), keys=["rid"]),
            "id",
            "rid",
        )
        return Aggregate(join, [AggSpec("count", None, "n")])
    return Project(
        Sort(base, keys=["id"]),
        ["twice"],
        exprs=[Col("val") * 2],
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_engines_agree_on_random_plans(seed):
    plan = random_plan(seed)

    host, sm = build_db()
    reference = IteratorEngine(sm).run_query(plan)

    host2, sm2 = build_db()
    qpipe = QPipeEngine(sm2, QPipeConfig(osp_enabled=True)).run_query(plan)

    assert sorted(qpipe) == sorted(reference)
    # Order-producing roots must match exactly, not just as multisets.
    if isinstance(plan, (Sort, Project)):
        assert qpipe == reference


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_osp_on_off_agree_on_random_plans(seed):
    plan = random_plan(seed)
    host, sm = build_db()
    with_osp = QPipeEngine(sm, QPipeConfig(osp_enabled=True)).run_query(plan)
    host2, sm2 = build_db()
    without = QPipeEngine(sm2, QPipeConfig(osp_enabled=False)).run_query(plan)
    assert sorted(with_osp) == sorted(without)


# ---------------------------------------------------------------------------
# Differential harness: seeded random Wisconsin SQL through all engines
# ---------------------------------------------------------------------------
from repro.sql import plan as sql_plan  # noqa: E402
from repro.workloads.wisconsin import WisconsinScale, load_wisconsin  # noqa: E402

DIFFERENTIAL_SEEDS = list(range(30))


def build_wisconsin_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=64)
    load_wisconsin(sm, WisconsinScale(big_rows=300), seed=7)
    return host, sm


def random_wisconsin_sql(seed: int) -> str:
    """One random (but deterministic per seed) Wisconsin-style query.

    Every ORDER BY key below is unique per row/group, so LIMIT results
    are well-defined and comparable across engines.
    """
    rng = random.Random(seed)
    big = rng.choice(["big1", "big2"])
    k = rng.randrange(50, 280)
    a = rng.randrange(0, 150)
    b = a + rng.randrange(20, 120)
    d = rng.randrange(10)
    templates = [
        f"SELECT onepercent, COUNT(*) AS n, SUM(unique1) AS s FROM {big} "
        f"WHERE unique1 < {k} GROUP BY onepercent ORDER BY onepercent",
        f"SELECT unique1, unique2 FROM {big} "
        f"WHERE unique1 BETWEEN {a} AND {b} ORDER BY unique1",
        f"SELECT DISTINCT ten FROM {big} WHERE unique1 < {k}",
        f"SELECT COUNT(*) AS n FROM {big} "
        f"JOIN small ON {big}.unique1 = small.unique1 "
        f"WHERE {big}.unique1 < {k}",
        f"SELECT four, MIN(unique1) AS lo, MAX(unique1) AS hi FROM {big} "
        f"WHERE unique1 >= {a} GROUP BY four ORDER BY four",
        f"SELECT unique2 FROM small WHERE tenpercent = {d} "
        f"ORDER BY unique2 LIMIT 10",
    ]
    return templates[rng.randrange(len(templates))]


def _run_concurrent(host, engine, plans, stagger: float = 0.0):
    """Submit all *plans* with small staggers so OSP can share work."""
    procs = []

    def client(p, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(p)
        return result

    for i, p in enumerate(plans):
        procs.append(host.sim.spawn(client(p, i * stagger), name=f"dq{i}"))
    host.sim.run_until_done(procs)
    return [proc.value.rows for proc in procs]


def test_differential_wisconsin_sql():
    """~30 seeded random SQL queries agree across baseline, QPipe with
    sharing off, and QPipe with sharing on (submitted concurrently)."""
    queries = {seed: random_wisconsin_sql(seed) for seed in DIFFERENTIAL_SEEDS}

    host_ref, sm_ref = build_wisconsin_db()
    ref_engine = IteratorEngine(sm_ref)
    reference = {
        seed: sorted(ref_engine.run_query(sql_plan(sql, sm_ref.catalog)))
        for seed, sql in queries.items()
    }

    host_off, sm_off = build_wisconsin_db()
    engine_off = QPipeEngine(sm_off, QPipeConfig(osp_enabled=False))
    for seed, sql in queries.items():
        got = sorted(engine_off.run_query(sql_plan(sql, sm_off.catalog)))
        assert got == reference[seed], f"OSP-off mismatch seed {seed}: {sql}"

    host_on, sm_on = build_wisconsin_db()
    engine_on = QPipeEngine(sm_on, QPipeConfig(osp_enabled=True))
    compiled = [sql_plan(sql, sm_on.catalog) for sql in queries.values()]
    all_rows = _run_concurrent(host_on, engine_on, compiled)
    for (seed, sql), rows in zip(queries.items(), all_rows):
        assert sorted(rows) == reference[seed], (
            f"OSP-on mismatch seed {seed}: {sql}"
        )
    # The concurrent submission must actually have exercised sharing.
    stats = engine_on.osp_stats
    assert stats.attaches or stats.shared_page_deliveries
