"""Unit and property tests for the page-based B+tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.storage.btree import BPlusTree
from repro.storage.file import BlockStore


def make_tree(order=4):
    return BPlusTree(BlockStore(), "idx", order=order)


def test_empty_tree_search():
    tree = make_tree()
    assert tree.search(42) == []
    assert list(tree.range_scan()) == []
    tree.check_invariants()


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(BlockStore(), "idx", order=2)


def test_insert_and_search():
    tree = make_tree()
    for key in [5, 3, 8, 1, 9, 7]:
        tree.insert(key, key * 10)
    assert tree.search(8) == [80]
    assert tree.search(2) == []
    tree.check_invariants()


def test_duplicate_keys_accumulate():
    tree = make_tree()
    tree.insert(7, "a")
    tree.insert(7, "b")
    assert tree.search(7) == ["a", "b"]
    assert tree.num_keys == 1
    assert tree.num_entries == 2


def test_splits_grow_height():
    tree = make_tree(order=3)
    for key in range(50):
        tree.insert(key, key)
    assert tree.height > 1
    tree.check_invariants()
    for key in range(50):
        assert tree.search(key) == [key]


def test_range_scan_inclusive_bounds():
    tree = make_tree(order=4)
    for key in range(0, 20, 2):  # evens 0..18
        tree.insert(key, key)
    got = [k for k, _v in tree.range_scan(4, 10)]
    assert got == [4, 6, 8, 10]


def test_range_scan_open_bounds():
    tree = make_tree(order=4)
    for key in range(10):
        tree.insert(key, key)
    got = [k for k, _v in tree.range_scan(2, 6, lo_open=True, hi_open=True)]
    assert got == [3, 4, 5]


def test_range_scan_unbounded():
    tree = make_tree(order=4)
    keys = [9, 1, 5, 3, 7]
    for key in keys:
        tree.insert(key, key)
    assert [k for k, _v in tree.range_scan()] == sorted(keys)
    assert [k for k, _v in tree.range_scan(lo=5)] == [5, 7, 9]
    assert [k for k, _v in tree.range_scan(hi=5)] == [1, 3, 5]


def test_delete_value_and_key():
    tree = make_tree()
    tree.insert(4, "a")
    tree.insert(4, "b")
    assert tree.delete(4, "a") is True
    assert tree.search(4) == ["b"]
    assert tree.delete(4, "b") is True
    assert tree.search(4) == []
    assert tree.num_keys == 0
    assert tree.delete(4, "zzz") is False


def test_delete_whole_key():
    tree = make_tree()
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert tree.delete(1) is True
    assert tree.search(1) == []
    assert tree.num_entries == 0


def test_bulk_build_matches_inserts():
    pairs = [(k, k * 2) for k in range(200)]
    bulk = make_tree(order=8)
    bulk.bulk_build(iter(pairs))
    bulk.check_invariants()
    assert [kv for kv in bulk.range_scan()] == pairs
    assert bulk.height > 1


def test_bulk_build_with_duplicates():
    pairs = [(1, "a"), (1, "b"), (2, "c")]
    tree = make_tree()
    tree.bulk_build(iter(pairs))
    assert tree.search(1) == ["a", "b"]
    assert tree.num_keys == 2
    assert tree.num_entries == 3


def test_bulk_build_rejects_unsorted():
    tree = make_tree()
    with pytest.raises(ValueError):
        tree.bulk_build(iter([(2, "a"), (1, "b")]))


def test_bulk_build_rejects_nonempty():
    tree = make_tree()
    tree.insert(1, "a")
    with pytest.raises(ValueError):
        tree.bulk_build(iter([(2, "b")]))


def test_insert_after_bulk_build():
    tree = make_tree(order=6)
    tree.bulk_build(iter((k, k) for k in range(0, 100, 2)))
    for key in range(1, 100, 2):
        tree.insert(key, key)
    tree.check_invariants()
    assert [k for k, _v in tree.range_scan()] == list(range(100))


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.integers(-1000, 1000), min_size=0, max_size=300),
    order=st.integers(3, 16),
)
def test_property_inserts_preserve_invariants_and_contents(keys, order):
    tree = BPlusTree(BlockStore(), "idx", order=order)
    reference = {}
    for i, key in enumerate(keys):
        tree.insert(key, i)
        reference.setdefault(key, []).append(i)
    tree.check_invariants()
    for key, values in reference.items():
        assert tree.search(key) == values
    scanned = [k for k, _v in tree.range_scan()]
    expected = sorted(
        (k for k, vs in reference.items() for _ in vs),
    )
    assert scanned == expected


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(0, 500), min_size=1, max_size=200, unique=True
    ),
    order=st.integers(3, 12),
    data=st.data(),
)
def test_property_range_scan_agrees_with_filter(keys, order, data):
    tree = BPlusTree(BlockStore(), "idx", order=order)
    for key in sorted(keys):
        tree.insert(key, key)
    lo = data.draw(st.integers(-10, 510))
    hi = data.draw(st.integers(lo, 520))
    got = [k for k, _v in tree.range_scan(lo, hi)]
    assert got == sorted(k for k in keys if lo <= k <= hi)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(0, 200), min_size=1, max_size=150),
    order=st.integers(3, 10),
)
def test_property_bulk_build_equals_incremental(keys, order):
    pairs = sorted((k, i) for i, k in enumerate(keys))
    bulk = BPlusTree(BlockStore(), "b", order=order)
    bulk.bulk_build(iter(pairs))
    incr = BPlusTree(BlockStore(), "i", order=order)
    for key, value in pairs:
        incr.insert(key, value)
    bulk.check_invariants()
    incr.check_invariants()
    assert list(bulk.range_scan()) == list(incr.range_scan())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=120),
    st.data(),
)
def test_property_deletes_keep_invariants(keys, data):
    tree = BPlusTree(BlockStore(), "idx", order=4)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    unique = sorted(set(keys))
    to_delete = data.draw(
        st.lists(st.sampled_from(unique), max_size=len(unique))
    )
    expected = {}
    for i, key in enumerate(keys):
        expected.setdefault(key, []).append(i)
    for key in to_delete:
        tree.delete(key)
        expected.pop(key, None)
    tree.check_invariants()
    for key in unique:
        assert tree.search(key) == expected.get(key, [])
