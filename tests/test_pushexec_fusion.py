"""Property tests for the fused stage compiler.

Two independent axes of the push backend's compilation are checked
against reference semantics, on random operator chains over random rows:

* **fusion**: a chain compiled with ``fuse=True`` (expressions bound to
  specialised closures) must produce row-identical output to the same
  chain compiled with ``fuse=False`` (the tree-walking interpreter);
* **batching**: the output must not depend on where batch boundaries
  fall -- batch sizes 1, 7, 64 and whole-table must agree.

Both properties are what lets the planner's cost rule pick fuse vs
materialize per pipeline without perturbing results (DESIGN.md section
12).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pushexec.fusion import (
    chain_output_schema,
    compile_chain,
    eval_expr,
    push_batches,
)
from repro.relational.expressions import Between, Col, Const, If, InList, Like
from repro.relational.plans import Distinct, Filter, Limit, Project
from repro.relational.schema import Column, Schema

SCHEMA = Schema(
    [
        Column("id", "int"),
        Column("grp", "int"),
        Column("val", "float"),
        Column("name", "str"),
    ]
)

BATCH_SIZES = (1, 7, 64, None)  # None = whole table in one batch


def make_rows(rng: random.Random, n: int):
    names = ("alpha", "beta", "gamma", "delta")
    return [
        (i, rng.randrange(7), round(rng.uniform(0, 100), 3),
         rng.choice(names))
        for i in range(n)
    ]


def random_predicate(rng: random.Random, schema: Schema = SCHEMA):
    """A random predicate over whichever known columns *schema* kept."""
    atoms = []
    names = schema.names
    if "id" in names:
        atoms.append(Col("id") > rng.randrange(0, 150))
    if "grp" in names:
        atoms += [
            Col("grp") == rng.randrange(7),
            ~(Col("grp") == rng.randrange(7)),
            InList(Col("grp"), [rng.randrange(7) for _ in range(3)]),
        ]
    if "val" in names:
        atoms += [
            Col("val") > rng.uniform(5, 95),
            Between(
                Col("val"),
                *sorted((rng.uniform(0, 50), rng.uniform(50, 100))),
            ),
        ]
    if "name" in names:
        atoms += [Like(Col("name"), "%a%"), Like(Col("name"), "be%")]
    if "twice" in names:
        atoms.append(Col("twice") < rng.uniform(0, 200))
    if "flag" in names:
        atoms.append(Col("flag") == Const(1.0))
    if len(atoms) >= 2 and rng.random() < 0.4:
        a, b = rng.sample(atoms, 2)
        return (a & b) if rng.random() < 0.5 else (a | b)
    return rng.choice(atoms)


def random_chain(rng: random.Random):
    """A random run of streaming operators (the child slot of each plan
    node is a placeholder -- compile_chain only reads the op's own
    attributes)."""
    ops = []
    schema = SCHEMA
    for _ in range(rng.randrange(1, 5)):
        kind = rng.randrange(4)
        if kind == 0:
            ops.append(Filter(None, random_predicate(rng, schema)))
        elif kind == 1 and len(schema.names) > 1:
            keep = [
                n for n in schema.names if rng.random() < 0.7
            ] or [schema.names[0]]
            ops.append(Project(None, keep))
            schema = schema.project(keep)
        elif kind == 2 and "val" in schema.names:
            ops.append(
                Project(
                    None,
                    ["twice", "flag"],
                    exprs=[
                        Col("val") * 2,
                        If(Col("val") > 50.0, Const(1.0), Const(0.0)),
                    ],
                )
            )
            schema = Schema(
                [Column("twice", "float"), Column("flag", "float")]
            )
        elif kind == 3:
            ops.append(Limit(None, rng.randrange(1, 40),
                             offset=rng.randrange(0, 5)))
        else:
            ops.append(Distinct(None))
    if rng.random() < 0.3:
        ops.append(Distinct(None))
    return ops


def slice_batches(rows, size):
    if size is None:
        return [rows]
    return [rows[i:i + size] for i in range(0, len(rows), size)]


def run_chain(ops, rows, batch_size, fuse):
    # Stages are stateful (limit counters, distinct sets): compile a
    # fresh chain per run.
    return push_batches(
        compile_chain(ops, SCHEMA, fuse=fuse), slice_batches(rows, batch_size)
    )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_fused_matches_interpreted_at_every_batch_size(seed):
    rng = random.Random(seed)
    rows = make_rows(rng, rng.randrange(0, 200))
    ops = random_chain(rng)

    reference = run_chain(ops, rows, None, fuse=False)
    for size in BATCH_SIZES:
        for fuse in (True, False):
            assert run_chain(ops, rows, size, fuse) == reference, (
                f"mismatch at batch_size={size} fuse={fuse} for {ops}"
            )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_bound_expressions_match_interpreter(seed):
    """Expr.bind closures agree with the tree-walking interpreter on
    random predicates over random rows (the PR-4 contract the chain
    compiler builds on)."""
    rng = random.Random(seed)
    rows = make_rows(rng, 50)
    pred = random_predicate(rng)
    bound = pred.bind(SCHEMA)
    for row in rows:
        assert bool(bound(row)) == bool(eval_expr(pred, row, SCHEMA))


def test_limit_state_is_per_compilation():
    """A LIMIT chain stops the driver once satisfied, and recompiling
    resets its counters (stages are per-execution state)."""
    rows = make_rows(random.Random(1), 100)
    ops = [Limit(None, 10, offset=3)]
    first = run_chain(ops, rows, 7, fuse=True)
    second = run_chain(ops, rows, 7, fuse=True)
    assert first == second == rows[3:13]


def test_chain_output_schema_tracks_projections():
    ops = [
        Filter(None, Col("val") > 0),
        Project(None, ["grp", "val"]),
        Project(None, ["double"], exprs=[Col("val") * 2]),
    ]
    out = chain_output_schema(ops, SCHEMA)
    assert out.names == ["double"]


def test_build_stage_rejects_breakers():
    from repro.relational.plans import Sort

    with pytest.raises(TypeError):
        compile_chain([Sort(None, keys=["val"])], SCHEMA)
