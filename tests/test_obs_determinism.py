"""Determinism: identical runs produce byte-identical traces and metrics.

Two back-to-back runs of the Figure 8 scan-sharing scenario (staggered
identical TPC-H Q6 clients over a freshly built system) must yield
byte-for-byte equal JSONL traces and equal WorkloadMetrics -- the
guarantee every differential experiment in the harness rests on.
"""

import random

from repro.harness.config import SMOKE, build_tpch_system, with_overrides
from repro.obs import InvariantChecker, Tracer, jsonl_dumps
from repro.workloads.clients import ClosedLoopClient, run_workload
from repro.workloads.tpch import queries as Q

SCALE = with_overrides(SMOKE, tpch_factor=0.02)


def run_fig8_scenario():
    host, sm, engine = build_tpch_system(SCALE, "qpipe")
    tracer = Tracer(host.sim)
    clients = [
        ClosedLoopClient(
            i,
            lambda rng, i=i: Q.q6(random.Random(100 + i)),
            queries=1,
            start_delay=i * 10.0,
        )
        for i in range(2)
    ]
    metrics = run_workload(engine, clients, seed=5)
    return jsonl_dumps(tracer.events), metrics


def test_fig8_runs_byte_identical():
    blob1, metrics1 = run_fig8_scenario()
    blob2, metrics2 = run_fig8_scenario()

    assert blob1  # tracing actually recorded something
    assert blob1 == blob2

    assert metrics1.queries_completed == metrics2.queries_completed == 2
    assert metrics1.makespan == metrics2.makespan
    assert metrics1.blocks_read == metrics2.blocks_read
    assert metrics1.blocks_written == metrics2.blocks_written
    assert metrics1.pool_hit_ratio == metrics2.pool_hit_ratio
    assert [r.rows for r in metrics1.results] == [
        r.rows for r in metrics2.results
    ]
    assert [
        (r.submitted_at, r.started_at, r.finished_at)
        for r in metrics1.results
    ] == [
        (r.submitted_at, r.started_at, r.finished_at)
        for r in metrics2.results
    ]


def test_fig8_trace_satisfies_invariants():
    blob, _metrics = run_fig8_scenario()
    import json

    events = [json.loads(line) for line in blob.splitlines()]
    InvariantChecker(events).assert_ok()
