"""Unit tests for schemas and columns."""

import pytest

from repro.relational.schema import Column, Schema


def test_schema_of_shorthand():
    schema = Schema.of("a:int", "b:str:25", "c:date", "d")
    assert schema.names == ["a", "b", "c", "d"]
    assert schema.column("b").width == 25
    assert schema.column("c").type == "date"
    assert schema.column("d").type == "int"


def test_default_widths():
    assert Column("x", "int").width == 4
    assert Column("x", "float").width == 8
    assert Column("x", "str").width == 16


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        Column("x", "blob")


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Schema.of("a:int", "a:int")


def test_row_width_sums_columns():
    schema = Schema.of("a:int", "b:str:30")
    assert schema.row_width == 34


def test_index_of_and_errors():
    schema = Schema.of("a:int", "b:int")
    assert schema.index_of("b") == 1
    with pytest.raises(KeyError):
        schema.index_of("zz")
    assert "a" in schema and "zz" not in schema


def test_project_preserves_order():
    schema = Schema.of("a:int", "b:int", "c:int")
    projected = schema.project(["c", "a"])
    assert projected.names == ["c", "a"]


def test_qualified_prefixes_names():
    schema = Schema.of("u1:int", "u2:int").qualified("big1")
    assert schema.names == ["big1.u1", "big1.u2"]


def test_concat_for_join_output():
    left = Schema.of("a:int")
    right = Schema.of("b:int")
    assert left.concat(right).names == ["a", "b"]


def test_projector_function():
    schema = Schema.of("a:int", "b:int", "c:int")
    fn = schema.projector(["c", "a"])
    assert fn((1, 2, 3)) == (3, 1)


def test_equality_and_hash():
    s1 = Schema.of("a:int", "b:int")
    s2 = Schema.of("a:int", "b:int")
    assert s1 == s2 and hash(s1) == hash(s2)
    assert s1 != Schema.of("a:int")
