"""The content-addressed cell cache: hit, miss, invalidation."""

import json
import os

import pytest

from repro.harness.config import SMOKE
from repro.parallel.cache import CellCache
from repro.parallel.cells import CellSpec, coords
from repro.parallel.digest import import_graph, module_table, source_digest


def _spec(x=1, fn="fake.module:fn"):
    return CellSpec("figT", fn, SMOKE, coords(x=x))


def _cache(tmp_path, digest="d0"):
    return CellCache(
        str(tmp_path / "cache"),
        src_root=str(tmp_path),
        source_digests={"fake.module": digest},
    )


# ---------------------------------------------------------------------------
# Get / put
# ---------------------------------------------------------------------------
def test_miss_then_hit_roundtrip(tmp_path):
    cache = _cache(tmp_path)
    spec = _spec()
    hit, _ = cache.get(spec)
    assert not hit
    cache.put(spec, {"rows": [1, 2, 3]})
    hit, payload = cache.get(spec)
    assert hit and payload == {"rows": [1, 2, 3]}
    assert cache.stats() == {"hits": 1, "misses": 1, "puts": 1}


def test_payload_roundtrip_is_json_faithful(tmp_path):
    cache = _cache(tmp_path)
    spec = _spec()
    payload = [[0.25, 0.913], [0.5, 1.0]]
    cache.put(spec, payload)
    _, back = cache.get(spec)
    assert back == payload and type(back[0][0]) is float


def test_distinct_specs_get_distinct_entries(tmp_path):
    cache = _cache(tmp_path)
    cache.put(_spec(x=1), "one")
    cache.put(_spec(x=2), "two")
    assert cache.get(_spec(x=1))[1] == "one"
    assert cache.get(_spec(x=2))[1] == "two"


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------
def test_source_digest_change_invalidates(tmp_path):
    spec = _spec()
    _cache(tmp_path, digest="before").put(spec, "stale")
    hit, _ = _cache(tmp_path, digest="after").get(spec)
    assert not hit
    hit, payload = _cache(tmp_path, digest="before").get(spec)
    assert hit and payload == "stale"


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = _cache(tmp_path)
    spec = _spec()
    path = cache.put(spec, "good")
    with open(path, "w") as fh:
        fh.write("{truncated")
    hit, _ = cache.get(spec)
    assert not hit


def test_clear_removes_everything(tmp_path):
    cache = _cache(tmp_path)
    cache.put(_spec(), "x")
    cache.clear()
    assert not os.path.exists(cache.directory)
    assert not cache.get(_spec())[0]


def test_put_is_atomic_no_tmp_left_behind(tmp_path):
    cache = _cache(tmp_path)
    path = cache.put(_spec(), "x")
    entries = os.listdir(os.path.dirname(path))
    assert all(not e.endswith(f".tmp.{os.getpid()}") for e in entries)
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["payload"] == "x" and doc["sources"] == "d0"


def test_unknown_module_raises(tmp_path):
    cache = CellCache(str(tmp_path / "cache"), src_root=str(tmp_path))
    with pytest.raises(KeyError):
        cache.digest_for(_spec(fn="no.such.module:fn"))


# ---------------------------------------------------------------------------
# The import-graph digest itself (synthetic tree)
# ---------------------------------------------------------------------------
def _write_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text("from pkg import b\n")
    (pkg / "b.py").write_text("import pkg.c\n")
    (pkg / "c.py").write_text("X = 1\n")
    (pkg / "lonely.py").write_text("Y = 2\n")
    return tmp_path


def test_module_table_and_graph(tmp_path):
    root = str(_write_tree(tmp_path))
    table = module_table(root)
    assert set(table) == {"pkg", "pkg.a", "pkg.b", "pkg.c", "pkg.lonely"}
    graph = import_graph(root)
    assert "pkg.b" in graph["pkg.a"]
    assert "pkg.c" in graph["pkg.b"]
    assert graph["pkg.lonely"] == set()


def test_source_digest_tracks_transitive_edits(tmp_path):
    root = str(_write_tree(tmp_path))
    before = source_digest("pkg.a", root)
    assert before == source_digest("pkg.a", root)
    # Editing a transitively imported module busts the digest...
    (tmp_path / "pkg" / "c.py").write_text("X = 99\n")
    assert source_digest("pkg.a", root) != before
    # ...but editing an unreachable module does not.
    mid = source_digest("pkg.a", root)
    (tmp_path / "pkg" / "lonely.py").write_text("Y = 3\n")
    assert source_digest("pkg.a", root) == mid


def test_real_experiments_digest_is_stable_and_engine_wide():
    import repro
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    d1 = source_digest("repro.harness.experiments", src_root)
    assert d1 == source_digest("repro.harness.experiments", src_root)
    graph = import_graph(src_root)
    # The experiments module must reach the engine it measures.
    from repro.parallel.digest import closure
    reachable = set(closure(graph, ["repro.harness.experiments"]))
    assert "repro.engine.core" in reachable or any(
        m.startswith("repro.engine") for m in reachable
    )
    assert any(m.startswith("repro.storage") for m in reachable)
