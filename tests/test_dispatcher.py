"""Unit tests for the packet dispatcher: wiring, routing, OSP metadata."""

import pytest

from repro.engine.packets import PacketState
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    GroupBy,
    HashJoin,
    IndexScan,
    MergeJoin,
    Sort,
    TableScan,
)


def make_engine(db):
    _host, sm, _r, _s = db
    return QPipeEngine(sm, QPipeConfig())


def build(engine, plan):
    from repro.engine.packets import QueryContext

    query = QueryContext(
        query_id=99, plan=plan, sm=engine.sm, host_machine=engine.host
    )
    return engine.dispatcher.build_subtree(
        query, plan, parent=None, parent_order_insensitive=True
    )


def test_one_packet_per_plan_node(db):
    engine = make_engine(db)
    plan = Aggregate(
        HashJoin(TableScan("r"), TableScan("s"), "id", "rid"),
        [AggSpec("count", None, "n")],
    )
    root = build(engine, plan)
    packets = [root] + root.descendants()
    assert len(packets) == 4  # agg, join, two scans
    assert root.engine_name == "agg"
    assert {p.engine_name for p in packets} == {"agg", "hashjoin", "fscan"}


def test_parent_child_buffer_wiring(db):
    engine = make_engine(db)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    root = build(engine, plan)
    child = root.children[0]
    assert root.inputs[0] is child.primary_output
    assert child.primary_output.producer is child
    assert child.primary_output.consumer is root


def test_signatures_match_plan_subtrees(db):
    engine = make_engine(db)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    root = build(engine, plan)
    assert root.signature == plan.signature(engine.sm.catalog)
    assert root.children[0].signature == plan.child.signature(
        engine.sm.catalog
    )


def test_order_insensitive_parent_flags(db):
    engine = make_engine(db)
    plan = Sort(
        HashJoin(TableScan("r"), TableScan("s"), "id", "rid"),
        keys=["val"],
    )
    root = build(engine, plan)
    join = root.children[0]
    scan = join.children[0]
    assert root.order_insensitive_parent  # dispatch root
    assert join.order_insensitive_parent  # Sort accepts any order
    assert scan.order_insensitive_parent  # HashJoin accepts any order


def test_mergejoin_children_are_order_sensitive(db):
    engine = make_engine(db)
    plan = MergeJoin(
        IndexScan("r", "r_id", ordered=True),
        IndexScan("r", "r_id", ordered=True),
        "id",
        "id",
    )
    root = build(engine, plan)
    for child in root.children:
        assert not child.order_insensitive_parent


def test_mj_split_eligibility_marked(db):
    """Ordered index scans under a merge-join with an order-insensitive
    parent carry the 4.3.2 split artifact (with a sibling cost bound)."""
    engine = make_engine(db)
    plan = Aggregate(
        MergeJoin(
            IndexScan("r", "r_id", ordered=True),
            IndexScan("r", "r_id", ordered=True),
            "id",
            "id",
        ),
        [AggSpec("count", None, "n")],
    )
    root = build(engine, plan)
    join = root.children[0]
    for child in join.children:
        split = child.artifacts["mj_split"]
        assert split["mergejoin"] is join
        assert split["other_pages"] == engine.sm.num_pages("r")


def test_no_split_marker_when_parent_needs_order(db):
    engine = make_engine(db)
    inner = MergeJoin(
        IndexScan("r", "r_id", ordered=True),
        IndexScan("r", "r_id", ordered=True),
        "id",
        "id",
    )
    outer = MergeJoin(inner, IndexScan("r", "r_id", ordered=True), "id", "id")
    root = build(engine, outer)
    inner_packet = root.children[0]
    for child in inner_packet.children:
        assert "mj_split" not in child.artifacts


def test_enqueue_tree_skips_cancelled_subtrees(db):
    engine = make_engine(db)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    root = build(engine, plan)
    root.cancel_subtree()
    engine.dispatcher.enqueue_tree(root)
    # The root itself was CREATED so it queues; the cancelled child must
    # not be queued.
    assert root.state is PacketState.QUEUED
    assert root.children[0].state is PacketState.CANCELLED
    assert root.children[0] not in engine.engines["fscan"].active


def test_dispatch_returns_root_buffer(db):
    _host, sm, r_rows, _s = db
    engine = make_engine(db)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    rows = engine.run_query(plan)
    assert rows == [(len(r_rows),)]
