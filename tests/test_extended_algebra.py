"""Extended algebra: Limit, Distinct, semi/anti/outer joins, both engines."""

import pytest

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    AntiJoin,
    Distinct,
    GroupBy,
    LeftOuterJoin,
    Limit,
    Project,
    SemiJoin,
    Sort,
    TableScan,
)


def run_both(db, plan, ordered_root=False):
    _h, sm, _r, _s = db
    reference = IteratorEngine(sm).run_query(plan)
    qpipe = QPipeEngine(sm, QPipeConfig()).run_query(plan)
    if ordered_root:
        assert qpipe == reference
    else:
        assert sorted(qpipe) == sorted(reference)
    return reference


# ---------------------------------------------------------------------------
# Limit
# ---------------------------------------------------------------------------
def test_limit_caps_rows(db):
    _h, _sm, r_rows, _s = db
    plan = Limit(Sort(TableScan("r"), keys=["id"]), count=10)
    rows = run_both(db, plan, ordered_root=True)
    assert rows == sorted(r_rows)[:10]


def test_limit_with_offset(db):
    _h, _sm, r_rows, _s = db
    plan = Limit(Sort(TableScan("r"), keys=["id"]), count=5, offset=7)
    rows = run_both(db, plan, ordered_root=True)
    assert rows == sorted(r_rows)[7:12]


def test_limit_beyond_input(db):
    _h, _sm, r_rows, _s = db
    plan = Limit(TableScan("r"), count=10_000)
    rows = run_both(db, plan)
    assert len(rows) == len(r_rows)


def test_limit_zero(db):
    plan = Limit(TableScan("r"), count=0)
    assert run_both(db, plan) == []


def test_limit_validation():
    with pytest.raises(ValueError):
        Limit(TableScan("r"), count=-1)


def test_limit_stops_upstream_scan(big_db):
    """LIMIT must not force a full table scan."""
    host, sm, _r, _s = big_db
    engine = IteratorEngine(sm)
    before = host.disk.stats.blocks_read
    engine.run_query(Limit(TableScan("r"), count=3))
    assert host.disk.stats.blocks_read - before < sm.num_pages("r")


# ---------------------------------------------------------------------------
# Distinct
# ---------------------------------------------------------------------------
def test_distinct_removes_duplicates(db):
    _h, _sm, r_rows, _s = db
    plan = Distinct(TableScan("r", project=["grp"]))
    rows = run_both(db, plan)
    assert sorted(rows) == sorted({(r[1],) for r in r_rows})


def test_distinct_preserves_first_seen_order(db):
    _h, sm, r_rows, _s = db
    plan = Distinct(TableScan("r", project=["grp"]))
    rows = IteratorEngine(sm).run_query(plan)
    expected = []
    for r in r_rows:
        if (r[1],) not in expected:
            expected.append((r[1],))
    assert rows == expected


def test_distinct_on_unique_input_is_identity(db):
    _h, _sm, r_rows, _s = db
    plan = Distinct(TableScan("r", project=["id"]))
    rows = run_both(db, plan)
    assert len(rows) == len(r_rows)


# ---------------------------------------------------------------------------
# Semi / anti joins
# ---------------------------------------------------------------------------
def test_semi_join_is_exists(db):
    _h, _sm, r_rows, s_rows = db
    plan = SemiJoin(TableScan("r"), TableScan("s"), "id", "rid")
    rows = run_both(db, plan)
    referenced = {s[1] for s in s_rows}
    assert sorted(rows) == sorted(r for r in r_rows if r[0] in referenced)


def test_semi_join_emits_each_left_row_once(db):
    """Unlike an inner join, multiple right matches yield ONE left row."""
    _h, _sm, r_rows, s_rows = db
    plan = SemiJoin(TableScan("r"), TableScan("s"), "grp", "sid")
    rows = run_both(db, plan)
    sids = {s[0] for s in s_rows}
    expected = [r for r in r_rows if r[1] in sids]
    assert len(rows) == len(expected)


def test_anti_join_is_not_exists(db):
    _h, _sm, r_rows, s_rows = db
    plan = AntiJoin(TableScan("r"), TableScan("s"), "id", "rid")
    rows = run_both(db, plan)
    referenced = {s[1] for s in s_rows}
    assert sorted(rows) == sorted(r for r in r_rows if r[0] not in referenced)


def test_semi_plus_anti_partition_left(db):
    _h, _sm, r_rows, _s = db
    semi = run_both(db, SemiJoin(TableScan("r"), TableScan("s"), "id", "rid"))
    anti = run_both(db, AntiJoin(TableScan("r"), TableScan("s"), "id", "rid"))
    assert sorted(semi + anti) == sorted(r_rows)


def test_semi_join_output_schema_is_left_only(db):
    _h, sm, _r, _s = db
    plan = SemiJoin(TableScan("r"), TableScan("s"), "id", "rid")
    assert plan.output_schema(sm.catalog).names == ["id", "grp", "val", "tag"]


# ---------------------------------------------------------------------------
# Left outer join
# ---------------------------------------------------------------------------
def test_outer_join_pads_unmatched_left(db):
    _h, _sm, r_rows, s_rows = db
    plan = LeftOuterJoin(TableScan("r"), TableScan("s"), "id", "rid")
    rows = run_both(db, plan)
    referenced = {s[1] for s in s_rows}
    inner = sum(1 for s in s_rows)  # every s row matches exactly one r
    unmatched = sum(1 for r in r_rows if r[0] not in referenced)
    assert len(rows) == inner + unmatched
    padded = [row for row in rows if row[-1] is None]
    assert len(padded) == unmatched


def test_outer_join_preserves_all_left_keys(db):
    _h, _sm, r_rows, _s = db
    plan = LeftOuterJoin(TableScan("r"), TableScan("s"), "id", "rid")
    rows = run_both(db, plan)
    assert {row[0] for row in rows} == {r[0] for r in r_rows}


def test_outer_join_composes_with_groupby(db):
    """The TPC-H Q13 shape: count orders per customer including zeros."""
    _h, _sm, r_rows, s_rows = db
    plan = GroupBy(
        LeftOuterJoin(TableScan("r"), TableScan("s"), "id", "rid"),
        ["id"],
        [
            AggSpec(
                "sum",
                # count only matched rows: NULL-padded sid stays 0
                Col("val") * 0 + 1,  # placeholder 1 per row
                "n_rows",
            )
        ],
    )
    rows = run_both(db, plan)
    assert len(rows) == len(r_rows)  # every left key has a group


# ---------------------------------------------------------------------------
# QPipe sharing still works on the new operators
# ---------------------------------------------------------------------------
def test_identical_semi_joins_attach(big_db):
    host, sm, r_rows, s_rows = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))

    def plan(agg):
        # Roots differ (count vs sum) so sharing happens at the semijoin.
        return Aggregate(
            SemiJoin(TableScan("r"), TableScan("s"), "id", "rid"),
            [agg],
        )

    def client(delay, agg):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(plan(agg))
        return result

    a = host.sim.spawn(client(0.0, AggSpec("count", None, "n")))
    b = host.sim.spawn(client(0.3, AggSpec("sum", Col("val"), "sv")))
    host.sim.run_until_done([a, b])
    assert a.value.rows[0][0] > 0
    assert b.value.rows[0][0] > 0
    assert engine.osp_stats.attaches["semijoin"] == 1
