"""Regression guard: the bug classes simlint exists for stay caught.

Re-introduces, in a temp module, the two historical bug shapes PR 2
fixed by hand -- a dropped yielding call and an interrupt-unsafe lock
acquire -- and pins the exact rule IDs and line numbers the analyzer
must report for them, plus that the repaired versions lint clean.
"""

import textwrap
from pathlib import Path

from repro.lint import lint_paths

BUGGY = textwrap.dedent("""\
    def drain(sim, channel, lock):
        yield lock.acquire()
        while True:
            item = yield channel.get()
            if item is None:
                break
            sim.timeout(1)
        lock.release()
""")

FIXED = textwrap.dedent("""\
    def drain(sim, channel, lock):
        yield lock.acquire()
        try:
            while True:
                # Intentional hold-across-get: drain owns the channel.
                item = yield channel.get()  # simlint: disable=IPR102
                if item is None:
                    break
                yield sim.timeout(1)
        finally:
            lock.release()
""")


def _lint(tmp_path: Path, source: str):
    path = tmp_path / "drain.py"
    path.write_text(source)
    return lint_paths([str(path)], root=str(tmp_path))


def test_reintroduced_bugs_are_reported_with_exact_positions(tmp_path):
    findings = _lint(tmp_path, BUGGY)
    reported = {(f.rule, f.line) for f in findings}
    # Line 2: acquire whose release (line 8) is not in a finally.
    assert ("RES001", 2) in reported
    # Line 4: blocking channel.get() with the lock held (IPR pass).
    assert ("IPR102", 4) in reported
    # Line 7: sim.timeout(1) result dropped -- the wait never happens.
    assert ("YLD001", 7) in reported
    assert len(findings) == 3, [f.render() for f in findings]


def test_fixed_module_is_clean(tmp_path):
    assert _lint(tmp_path, FIXED) == []
