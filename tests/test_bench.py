"""Tests for the :mod:`repro.bench` perf-regression harness.

The benchmarks themselves measure wall-clock and so cannot assert
timing; these tests pin the *harness* -- document layout, regression
comparison in both directions, percentile math, and a one-repeat CLI
smoke run of the micro suite.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import Bench, collect, compare, measure
from repro.bench.timing import percentile

REPO = Path(__file__).resolve().parents[1]

MICRO_NAMES = {
    "micro.schedule_drain",
    "micro.timeout_heap",
    "micro.cancel_compact",
    "micro.channel_batches",
    "micro.tuplebuffer_batches",
    "micro.pool_hits",
}


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------
def test_percentile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(samples, 50) == 3.0
    assert percentile(samples, 10) == 1.0
    assert percentile(samples, 90) == 5.0
    assert percentile([7.0], 50) == 7.0


def test_measure_record_shape():
    calls = []
    bench = Bench("t.counted", lambda: calls.append(1), "ops/s", ops=100)
    rec = measure(bench, repeat=3, warmup=2)
    assert len(calls) == 5  # warmups run the closure too
    assert rec["higher_is_better"] is True
    assert rec["unit"] == "ops/s"
    assert len(rec["samples"]) == 3
    assert rec["p10"] <= rec["median"] <= rec["p90"]


def test_measure_elapsed_mode_lower_is_better():
    rec = measure(Bench("t.sleepless", lambda: None, "s"), repeat=2,
                  warmup=0)
    assert rec["higher_is_better"] is False
    assert all(s >= 0.0 for s in rec["samples"])


# ---------------------------------------------------------------------------
# compare(): the CI regression gate
# ---------------------------------------------------------------------------
def _doc(**medians):
    return {
        "benchmarks": {
            name: {
                "median": median,
                "unit": unit,
                "higher_is_better": higher,
            }
            for name, (median, unit, higher) in medians.items()
        }
    }


def test_compare_flags_lower_is_better_regression():
    baseline = _doc(**{"macro.fig8": (1.0, "s", False)})
    slower = _doc(**{"macro.fig8": (1.5, "s", False)})
    complaints = compare(slower, baseline, threshold=0.30)
    assert len(complaints) == 1
    assert "macro.fig8" in complaints[0]


def test_compare_accepts_lower_is_better_improvement():
    baseline = _doc(**{"macro.fig8": (1.0, "s", False)})
    faster = _doc(**{"macro.fig8": (0.4, "s", False)})
    assert compare(faster, baseline, threshold=0.30) == []


def test_compare_flags_higher_is_better_regression():
    baseline = _doc(**{"micro.drain": (1_000_000.0, "events/s", True)})
    slower = _doc(**{"micro.drain": (500_000.0, "events/s", True)})
    complaints = compare(slower, baseline, threshold=0.30)
    assert len(complaints) == 1


def test_compare_accepts_higher_is_better_improvement():
    baseline = _doc(**{"micro.drain": (1_000_000.0, "events/s", True)})
    faster = _doc(**{"micro.drain": (2_000_000.0, "events/s", True)})
    assert compare(faster, baseline, threshold=0.30) == []


def test_compare_threshold_is_exclusive():
    # 5.0/4.0 is exactly a 25% change in binary floating point.
    baseline = _doc(**{"macro.fig8": (4.0, "s", False)})
    at_threshold = _doc(**{"macro.fig8": (5.0, "s", False)})
    assert compare(at_threshold, baseline, threshold=0.25) == []
    just_over = _doc(**{"macro.fig8": (5.2, "s", False)})
    assert len(compare(just_over, baseline, threshold=0.25)) == 1


def test_compare_macro_override_widens_the_band():
    from repro.bench.report import threshold_for

    baseline = _doc(**{
        "macro.fig8_smoke": (1.0, "s", False),
        "micro.drain": (1.0, "s", False),
    })
    current = _doc(**{
        "macro.fig8_smoke": (1.35, "s", False),  # 35%: ok at macro's 40%
        "micro.drain": (1.35, "s", False),       # 35%: over micro's 30%
    })
    overrides = {"macro.": 0.40}
    complaints = compare(
        current, baseline, threshold=0.30, overrides=overrides
    )
    assert len(complaints) == 1 and "micro.drain" in complaints[0]
    assert threshold_for("macro.fig8_smoke", 0.30, overrides) == 0.40
    assert threshold_for("micro.drain", 0.30, overrides) == 0.30
    # Longest matching prefix wins.
    layered = {"macro.": 0.40, "macro.fig8": 0.50}
    assert threshold_for("macro.fig8_smoke", 0.30, layered) == 0.50


def test_compare_skips_benchmarks_missing_from_either_side():
    baseline = _doc(**{
        "macro.retired": (1.0, "s", False),
        "macro.kept": (1.0, "s", False),
    })
    current = _doc(**{
        "macro.kept": (1.0, "s", False),
        "macro.brand_new": (99.0, "s", False),
    })
    assert compare(current, baseline, threshold=0.30) == []


# ---------------------------------------------------------------------------
# collect() and the committed baseline
# ---------------------------------------------------------------------------
def test_committed_baseline_layout():
    with open(REPO / "BENCH_0004.json") as fh:
        doc = json.load(fh)
    assert doc["version"] == 1
    assert doc["issue"] == "0004"
    assert MICRO_NAMES <= set(doc["benchmarks"])
    assert {"macro.fig8_smoke", "macro.fig12_smoke"} <= set(
        doc["benchmarks"]
    )
    for rec in doc["benchmarks"].values():
        assert {"median", "p10", "p90", "samples", "unit",
                "higher_is_better"} <= set(rec)


def test_committed_0005_baseline_has_parallel_macros():
    with open(REPO / "BENCH_0005.json") as fh:
        doc = json.load(fh)
    assert doc["issue"] == "0005"
    assert {
        "macro.fig8_smoke", "macro.fig12_smoke",
        "macro.fig8_smoke_par4", "macro.fig12_smoke_par4",
    } <= set(doc["benchmarks"])


@pytest.mark.slow
def test_collect_micro_runs_every_benchmark():
    doc = collect(run_micro=True, run_macro=False, repeat=1, warmup=0)
    assert set(doc["benchmarks"]) == MICRO_NAMES
    assert doc["repeat"] == 1
    for rec in doc["benchmarks"].values():
        assert rec["median"] > 0


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------
def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *args],
        cwd=str(cwd), env=env, capture_output=True, text=True,
    )


@pytest.mark.slow
def test_cli_micro_smoke_writes_json(tmp_path):
    out = tmp_path / "bench.json"
    proc = _run_cli(
        ["--micro-only", "--repeat", "1", "--warmup", "0",
         "--json", str(out)],
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(out.read_text())
    assert set(doc["benchmarks"]) == MICRO_NAMES
    assert "repro.bench" in proc.stdout


def test_cli_rejects_micro_and_macro_only(tmp_path):
    proc = _run_cli(["--micro-only", "--macro-only"], cwd=tmp_path)
    assert proc.returncode == 2
    assert "mutually exclusive" in proc.stderr
