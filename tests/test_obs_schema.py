"""Runtime half of the trace-event registry (:mod:`repro.obs.schema`).

The static ``TRC`` lint rules and :meth:`Tracer.event` share one
registry; these tests cover the runtime side -- unregistered names are
rejected at emit time, the NullTracer stays an allocation-free no-op,
and :func:`validate_event` checks full records for tests and tools.
"""

import pytest

from repro.obs.schema import (
    EVENT_NAMES,
    TraceFieldError,
    UnknownTraceEvent,
    catalogue,
    family_suffixes,
    is_registered,
    required_fields,
    validate_event,
)
from repro.obs.tracer import NullTracer, Tracer


class _Sim:
    now = 3.5
    tracer = None


def make_tracer():
    return Tracer(_Sim())


# ---------------------------------------------------------------------------
# Registry contents
# ---------------------------------------------------------------------------
def test_registry_covers_the_engine_families():
    assert is_registered("packet.create")
    assert is_registered("query.abort")
    assert {"hit", "miss", "pin", "unpin"} <= family_suffixes("pool")
    assert {"spawn", "interrupt"} == family_suffixes("proc")
    assert family_suffixes("nosuchfamily") == frozenset()
    assert required_fields("query.abort") == ("query", "reason")


def test_catalogue_is_sorted_and_complete():
    specs = catalogue()
    names = [spec.name for spec in specs]
    assert names == sorted(EVENT_NAMES)
    assert all(spec.doc for spec in specs)


# ---------------------------------------------------------------------------
# Tracer runtime rejection
# ---------------------------------------------------------------------------
def test_tracer_accepts_registered_event():
    tracer = make_tracer()
    tracer.event("query.abort", query=7, reason="deadline")
    assert tracer.events == [
        {"ts": 3.5, "type": "query.abort", "query": 7, "reason": "deadline"}
    ]


def test_tracer_rejects_unregistered_event():
    tracer = make_tracer()
    with pytest.raises(UnknownTraceEvent, match="packet.dispatched"):
        tracer.event("packet.dispatched", packet=1)
    assert tracer.events == []


def test_tracer_rejects_unregistered_family_suffixes():
    tracer = make_tracer()
    with pytest.raises(UnknownTraceEvent):
        tracer.pool("bogus", 1, 2)
    with pytest.raises(UnknownTraceEvent):
        tracer.proc("bogus", "p0")
    with pytest.raises(UnknownTraceEvent):
        tracer.osp("circularstart", packet=1, table="t")
    tracer.pool("hit", 1, 2)
    tracer.proc("spawn", "p0")
    assert [e["type"] for e in tracer.events] == ["pool.hit", "proc.spawn"]


def test_null_tracer_skips_validation():
    # The disabled tracer must stay a no-op even for garbage names:
    # hot paths call it unconditionally.
    null = NullTracer()
    null.osp("anything", field=1)
    null.pool("bogus", 1, 2)
    null.proc("bogus", "p0")
    null.fault("nonsense")


# ---------------------------------------------------------------------------
# validate_event
# ---------------------------------------------------------------------------
def test_validate_event_accepts_complete_record():
    validate_event(
        {"ts": 0.0, "type": "pool.hit", "file": 1, "block": 2}
    )


def test_validate_event_rejects_unknown_type():
    with pytest.raises(UnknownTraceEvent):
        validate_event({"ts": 0.0, "type": "pool.bogus"})


def test_validate_event_rejects_missing_ts():
    with pytest.raises(TraceFieldError, match="ts"):
        validate_event({"type": "pool.hit", "file": 1, "block": 2})


def test_validate_event_rejects_missing_required_field():
    with pytest.raises(TraceFieldError, match="reason"):
        validate_event({"ts": 0.0, "type": "query.abort", "query": 7})


def test_every_traced_run_validates(db):
    # Smoke: a real traced run produces only registry-valid records.
    from repro.engine.qpipe import QPipeConfig, QPipeEngine
    from repro.relational.expressions import AggSpec
    from repro.relational.plans import Aggregate, TableScan

    host, sm, r_rows, _s = db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    tracer = Tracer(host.sim)
    plan = Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    rows = engine.run_query(plan)
    assert rows == [(len(r_rows),)]
    assert tracer.events, "traced run produced no events"
    for record in tracer.events:
        validate_event(record)
