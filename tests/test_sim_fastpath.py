"""The wall-clock fast paths change nothing about virtual time.

Three layers of evidence (DESIGN.md section 10):

* a property test pinning same-timestamp execution order -- ``priority``
  then ``seq`` -- across the now-queue fast path vs. the pure heap path,
  over randomized schedule mixes including nested scheduling;
* a differential test running one fig8 cell with fast paths force-
  disabled vs. enabled, asserting byte-identical JSONL traces and equal
  metrics;
* a bound on queue growth under cancel-heavy workloads (the lazy-
  deletion leak fix).
"""

import random

import pytest

from repro.harness.config import SMOKE, build_tpch_system, with_overrides
from repro.obs import Tracer, jsonl_dumps
from repro.sim import Simulator, fast_paths_enabled, set_fast_paths
from repro.workloads.clients import ClosedLoopClient, run_workload
from repro.workloads.tpch import queries as Q


@pytest.fixture
def slow_paths():
    previous = set_fast_paths(False)
    try:
        yield
    finally:
        set_fast_paths(previous)


def record_execution_order(seed, fast):
    """One randomized schedule mix; returns the callback execution order.

    Mixes zero-delay NORMAL entries (now-queue candidates), zero-delay
    URGENT entries, delayed entries, nested re-scheduling, and a sprinkle
    of cancellations -- all driven by the same seeded RNG so the fast and
    slow runs build identical schedules.
    """
    previous = set_fast_paths(fast)
    try:
        sim = Simulator()
        rng = random.Random(seed)
        order = []
        entries = []

        def hit(tag, depth):
            order.append((sim.now, tag))
            if depth > 0 and rng.random() < 0.4:
                # Nested scheduling from inside a callback.
                entries.append(
                    sim.schedule(
                        rng.choice([0.0, 0.0, 1.0]),
                        hit,
                        f"{tag}.n",
                        depth - 1,
                        priority=rng.choice([0, 1]),
                    )
                )

        for i in range(200):
            delay = rng.choice([0.0, 0.0, 0.0, 1.0, 2.5, 7.0])
            priority = rng.choice([0, 1, 1, 1])
            entries.append(sim.schedule(delay, hit, str(i), 2,
                                        priority=priority))
        def cancelled_ran(*_args):
            raise AssertionError("cancelled entry executed")

        for i, entry in enumerate(entries[:200]):
            if rng.random() < 0.15:
                sim.cancel(entry)
                # Cancelled callbacks must never run.
                entry[3] = cancelled_ran
        sim.run()
        return order
    finally:
        set_fast_paths(previous)


@pytest.mark.parametrize("seed", range(12))
def test_same_timestamp_ordering_matches_pure_heap(seed):
    assert record_execution_order(seed, fast=True) == \
        record_execution_order(seed, fast=False)


def test_set_fast_paths_round_trip():
    original = fast_paths_enabled()
    previous = set_fast_paths(False)
    assert previous == original
    assert fast_paths_enabled() is False
    set_fast_paths(original)
    assert fast_paths_enabled() == original


def test_until_boundary_identical_fast_and_slow():
    for fast in (True, False):
        previous = set_fast_paths(fast)
        try:
            sim = Simulator()
            seen = []
            sim.schedule(0.0, seen.append, "a")
            sim.schedule(5.0, seen.append, "b")
            sim.schedule(10.0, seen.append, "c")
            assert sim.run(until=5.0) == 5.0
            assert seen == ["a", "b"]
            assert sim.now == 5.0
            assert sim.run() == 10.0
            assert seen == ["a", "b", "c"]
        finally:
            set_fast_paths(previous)


def test_cancel_heavy_workload_keeps_queues_bounded():
    """Lazy deletion must not grow the heap without bound (leak fix)."""
    sim = Simulator()

    def nop():
        pass

    high_water = 0
    for round_no in range(200):
        entries = [sim.schedule(1.0 + i * 0.001, nop) for i in range(100)]
        for entry in entries[:95]:
            sim.cancel(entry)
        high_water = max(
            high_water, len(sim._heap) + len(sim._now_queue)
        )
    # 200 rounds x 95 cancelled entries would be ~19000 dead entries
    # without compaction; the live population is ~1000.
    live = 200 * 5
    assert high_water < 4 * live + 2 * Simulator.COMPACT_MIN_DEAD
    sim.run()


def test_compaction_preserves_execution_order():
    sim = Simulator()
    order = []
    entries = [
        sim.schedule(float((i * 13) % 50), order.append, i)
        for i in range(500)
    ]
    expected = sorted(
        (e[0], e[2], e[4][0]) for i, e in enumerate(entries) if i % 7
    )
    for i, entry in enumerate(entries):
        if i % 7 == 0:
            sim.cancel(entry)
    sim.run()
    assert order == [tag for (_t, _s, tag) in expected]


def run_fig8_cell():
    scale = with_overrides(SMOKE, tpch_factor=0.02)
    host, sm, engine = build_tpch_system(scale, "qpipe")
    tracer = Tracer(host.sim)
    clients = [
        ClosedLoopClient(
            i,
            lambda rng, i=i: Q.q6(random.Random(100 + i)),
            queries=1,
            start_delay=i * 10.0,
        )
        for i in range(2)
    ]
    metrics = run_workload(engine, clients, seed=5)
    return jsonl_dumps(tracer.events), metrics


def test_fig8_cell_identical_with_fast_paths_disabled(slow_paths):
    blob_slow, metrics_slow = run_fig8_cell()
    set_fast_paths(True)
    blob_fast, metrics_fast = run_fig8_cell()

    assert blob_fast  # tracing recorded something
    assert blob_fast == blob_slow
    assert metrics_fast.makespan == metrics_slow.makespan
    assert metrics_fast.blocks_read == metrics_slow.blocks_read
    assert metrics_fast.pool_hit_ratio == metrics_slow.pool_hit_ratio
    assert [r.rows for r in metrics_fast.results] == [
        r.rows for r in metrics_slow.results
    ]
    assert [
        (r.submitted_at, r.started_at, r.finished_at)
        for r in metrics_fast.results
    ] == [
        (r.submitted_at, r.started_at, r.finished_at)
        for r in metrics_slow.results
    ]
