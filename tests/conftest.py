"""Shared fixtures: a small in-memory database for engine tests."""

import random

import pytest

from repro.hw.host import Host, HostConfig
from repro.relational.schema import Schema
from repro.storage.manager import StorageManager

R_SCHEMA = Schema.of("id:int", "grp:int", "val:float", "tag:str:8")
S_SCHEMA = Schema.of("sid:int", "rid:int", "w:float")


def make_r_rows(n=300, seed=1):
    rng = random.Random(seed)
    return [
        (i, i % 7, round(rng.uniform(0, 100), 2), f"t{i % 4}")
        for i in range(n)
    ]


def make_s_rows(n=120, r_n=300, seed=2):
    rng = random.Random(seed)
    return [
        (i, rng.randrange(r_n), round(rng.uniform(0, 10), 2))
        for i in range(n)
    ]


@pytest.fixture
def db():
    """A loaded two-table database plus its host: (host, sm, r_rows, s_rows)."""
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=128, policy="lru")
    r_rows = make_r_rows()
    s_rows = make_s_rows()
    sm.create_table("r", R_SCHEMA, clustered_on=["id"])
    sm.load_table("r", r_rows)
    sm.create_index("r", ["id"], name="r_id", clustered=True)
    sm.create_index("r", ["grp"], name="r_grp")
    sm.create_table("s", S_SCHEMA)
    sm.load_table("s", s_rows)
    return host, sm, r_rows, s_rows


# A wider schema so the table spans many pages: 200 declared bytes per row
# (the Wisconsin benchmark's tuple width), ~40 rows per 8 KB page.
BIG_R_SCHEMA = Schema.of("id:int", "grp:int", "val:float", "rpad:str:184")
BIG_S_SCHEMA = Schema.of("sid:int", "rid:int", "w:float", "spad:str:185")


def make_big_r_rows(n=4000, seed=3):
    rng = random.Random(seed)
    return [
        (i, i % 10, round(rng.uniform(0, 100), 2), f"pad{i:05d}")
        for i in range(n)
    ]


def make_big_s_rows(n=1500, r_n=4000, seed=4):
    rng = random.Random(seed)
    return [
        (i, rng.randrange(r_n), round(rng.uniform(0, 10), 2), f"p{i:05d}")
        for i in range(n)
    ]


@pytest.fixture
def big_db():
    """A multi-page database for timing-sensitive OSP tests.

    Table r spans ~100 pages (a scan takes ~0.4 simulated seconds), so
    windows of opportunity are wide enough to exercise interarrival
    staggering.
    """
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=64, policy="lru")
    r_rows = make_big_r_rows()
    s_rows = make_big_s_rows()
    sm.create_table("r", BIG_R_SCHEMA, clustered_on=["id"])
    sm.load_table("r", r_rows)
    sm.create_index("r", ["id"], name="r_id", clustered=True)
    sm.create_table("s", BIG_S_SCHEMA, clustered_on=["rid"])
    sm.load_table("s", s_rows)
    sm.create_index("s", ["rid"], name="s_rid", clustered=True)
    return host, sm, r_rows, s_rows
