"""The cell model: specs, registry, fingerprints, serial execution."""

import json

import pytest

from repro.harness.config import SMOKE
from repro.parallel.cells import (
    CellSpec,
    cell,
    coords,
    execute_cell,
    fingerprint,
    fn_key,
    merge_payloads,
    resolve,
    run_cells_serial,
    spec_hash,
)


@cell
def double_cell(spec):
    return spec.coord["x"] * 2


def _spec(**kw):
    return CellSpec("figT", fn_key(double_cell), SMOKE, coords(**kw))


# ---------------------------------------------------------------------------
# Spec identity and hashing
# ---------------------------------------------------------------------------
def test_specs_are_frozen_and_hashable():
    a, b = _spec(x=3), _spec(x=3)
    assert a == b and hash(a) == hash(b)
    assert _spec(x=4) != a
    with pytest.raises(AttributeError):
        a.figure = "other"


def test_coords_are_canonically_sorted():
    assert coords(b=1, a=2) == (("a", 2), ("b", 1))
    assert CellSpec("f", "m:f", SMOKE, coords(b=1, a=2)) == CellSpec(
        "f", "m:f", SMOKE, coords(a=2, b=1)
    )


def test_slug_is_filesystem_safe_and_distinct():
    spec = CellSpec(
        "fig8", "m:f", SMOKE, coords(system="qpipe/osp", gap=20.5)
    )
    slug = spec.slug()
    assert "/" not in slug and " " not in slug
    assert slug != CellSpec(
        "fig8", "m:f", SMOKE, coords(system="qpipe", gap=20.5)
    ).slug()


def test_fingerprint_is_json_ready_and_scale_aware():
    spec = _spec(x=1)
    doc = fingerprint(spec)
    json.dumps(doc)  # must not raise
    assert doc["scale"]["name"] == SMOKE.name
    assert doc["coords"] == [["x", 1]]


def test_spec_hash_covers_spec_and_sources():
    spec = _spec(x=1)
    assert spec_hash(spec, "d1") != spec_hash(spec, "d2")
    assert spec_hash(spec, "d1") == spec_hash(_spec(x=1), "d1")
    assert spec_hash(_spec(x=2), "d1") != spec_hash(spec, "d1")


# ---------------------------------------------------------------------------
# Registry and execution
# ---------------------------------------------------------------------------
def test_resolve_registry_hit_and_import_fallback():
    assert resolve(fn_key(double_cell)) is double_cell
    key = "repro.harness.experiments:fig8_cell"
    fn = resolve(key)
    assert fn_key(fn) == key


def test_execute_and_serial_run():
    specs = [_spec(x=1), _spec(x=5)]
    result = execute_cell(specs[0])
    assert result.payload == 2 and not result.cached
    payloads = run_cells_serial(specs)
    assert payloads == {specs[0]: 2, specs[1]: 10}


def test_merge_payloads_orders_by_spec_list():
    specs = [_spec(x=1), _spec(x=2)]
    results = {specs[1]: 4, specs[0]: 2}
    assert merge_payloads(specs, results) == [(specs[0], 2), (specs[1], 4)]
