"""The chaos harness experiment: randomized faults, invariant-checked.

Under any seeded fault plan, every query in the Figure 12 mix must
either complete with results identical to a fault-free run or fail
cleanly with a typed error and all resources reclaimed -- and the same
fault seed must reproduce the exact same trace, byte for byte.
"""

import json

import pytest

from repro.harness import chaos, render_chaos

SMOKE_SEEDS = [1, 2, 3]


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_chaos_smoke_is_clean(seed):
    result = chaos(fault_seed=seed)
    assert result["violations"] == [], "\n".join(result["violations"])
    for name, verdict in result["outcomes"].items():
        ok = verdict == "OK" or verdict == "DISCONNECTED" or verdict.startswith("FAILED(")
        assert ok, f"{name}: unexpected outcome {verdict}"
    # render_chaos must format every outcome without blowing up.
    text = render_chaos(result)
    assert "invariants: all clean" in text


def test_chaos_failures_are_typed():
    """Across the smoke seeds at least one query fails, and every
    failure carries a typed FaultError class name (never a bare
    Exception leaking out of the engine)."""
    failures = []
    for seed in SMOKE_SEEDS:
        result = chaos(fault_seed=seed)
        for _name, verdict in result["outcomes"].items():
            if verdict.startswith("FAILED("):
                failures.append(verdict[len("FAILED("):-1])
    assert failures, "no fault plan in the smoke set caused a failure"
    allowed = {"DiskReadError", "PageCorruptError", "QueryAborted"}
    assert set(failures) <= allowed


def test_chaos_is_deterministic():
    """Identical fault seed and config produce a byte-identical trace."""
    a = chaos(fault_seed=3)
    b = chaos(fault_seed=3)
    dump_a = "\n".join(json.dumps(e, sort_keys=True) for e in a["events"])
    dump_b = "\n".join(json.dumps(e, sort_keys=True) for e in b["events"])
    assert dump_a == dump_b
    assert a["outcomes"] == b["outcomes"]
    assert a["fired"] == b["fired"]
