"""Unit tests for expressions, predicates, and aggregates."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import (
    AggSpec,
    And,
    Between,
    Col,
    Const,
    InList,
    Like,
    Not,
    Or,
    bind_aggregates,
)
from repro.relational.schema import Schema

SCHEMA = Schema.of("a:int", "b:float", "s:str:10")


def test_column_and_const():
    assert Col("a").bind(SCHEMA)((5, 1.0, "x")) == 5
    assert Const(7).bind(SCHEMA)((5, 1.0, "x")) == 7


def test_comparisons_via_operators():
    pred = Col("a") > 3
    fn = pred.bind(SCHEMA)
    assert fn((4, 0.0, "")) and not fn((3, 0.0, ""))
    assert (Col("a") == 2).bind(SCHEMA)((2, 0.0, ""))
    assert (Col("a") != 2).bind(SCHEMA)((3, 0.0, ""))
    assert (Col("a") <= 2).bind(SCHEMA)((2, 0.0, ""))
    assert (Col("a") >= 2).bind(SCHEMA)((2, 0.0, ""))
    assert (Col("a") < 3).bind(SCHEMA)((2, 0.0, ""))


def test_arithmetic():
    expr = (Col("a") + 1) * Col("b") - Const(2)
    assert expr.bind(SCHEMA)((3, 2.0, "")) == 6.0
    assert (Col("a") / 2).bind(SCHEMA)((5, 0.0, "")) == 2.5


def test_boolean_composition():
    pred = (Col("a") > 1) & (Col("b") < 5.0)
    fn = pred.bind(SCHEMA)
    assert fn((2, 4.0, "")) and not fn((2, 6.0, ""))
    either = (Col("a") > 10) | (Col("b") < 5.0)
    assert either.bind(SCHEMA)((0, 1.0, ""))
    assert Not(Col("a") > 1).bind(SCHEMA)((0, 0.0, ""))
    assert (~(Col("a") > 1)).bind(SCHEMA)((0, 0.0, ""))


def test_and_or_need_terms():
    with pytest.raises(ValueError):
        And()
    with pytest.raises(ValueError):
        Or()


def test_between_inclusive():
    pred = Between(Col("a"), 2, 4).bind(SCHEMA)
    assert pred((2, 0, "")) and pred((4, 0, "")) and not pred((5, 0, ""))


def test_in_list():
    pred = InList(Col("a"), [1, 3, 5]).bind(SCHEMA)
    assert pred((3, 0, "")) and not pred((2, 0, ""))


def test_like_variants():
    contains = Like(Col("s"), "%bc%").bind(SCHEMA)
    assert contains((0, 0, "abcd")) and not contains((0, 0, "axd"))
    prefix = Like(Col("s"), "ab%").bind(SCHEMA)
    assert prefix((0, 0, "abz")) and not prefix((0, 0, "zab"))
    suffix = Like(Col("s"), "%yz").bind(SCHEMA)
    assert suffix((0, 0, "xyz")) and not suffix((0, 0, "yzx"))
    exact = Like(Col("s"), "abc").bind(SCHEMA)
    assert exact((0, 0, "abc")) and not exact((0, 0, "abcd"))


def test_signatures_stable_and_distinct():
    p1 = (Col("a") > 3) & (Col("b") < 2.0)
    p2 = (Col("a") > 3) & (Col("b") < 2.0)
    p3 = (Col("a") > 4) & (Col("b") < 2.0)
    assert p1.signature() == p2.signature()
    assert p1.signature() != p3.signature()


def test_in_list_signature_order_independent():
    assert (
        InList(Col("a"), [3, 1, 2]).signature()
        == InList(Col("a"), [2, 3, 1]).signature()
    )


def test_columns_collection():
    pred = (Col("a") > 3) & (Col("b") < Col("a"))
    assert pred.columns() == {"a", "b"}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
def test_agg_spec_validation():
    with pytest.raises(ValueError):
        AggSpec("median", Col("a"))
    with pytest.raises(ValueError):
        AggSpec("sum", None)
    assert AggSpec("count").name == "count"


def test_agg_accumulators():
    values = [3, 1, 4, 1, 5]
    for func, expected in [
        ("sum", 14),
        ("min", 1),
        ("max", 5),
        ("count", 5),
        ("avg", 2.8),
    ]:
        spec = AggSpec(func, Col("a") if func != "count" else None)
        state = spec.make_state()
        for value in values:
            state.add(value)
        assert state.result() == pytest.approx(expected)


def test_agg_empty_results():
    assert AggSpec("count").make_state().result() == 0
    assert AggSpec("sum", Col("a")).make_state().result() == 0
    assert AggSpec("min", Col("a")).make_state().result() is None
    assert AggSpec("avg", Col("a")).make_state().result() is None


def test_agg_merge():
    spec = AggSpec("max", Col("a"))
    s1, s2 = spec.make_state(), spec.make_state()
    s1.add(3)
    s2.add(7)
    s1.merge(s2)
    assert s1.result() == 7 and s1.count == 2


def test_bind_aggregates():
    specs = [AggSpec("sum", Col("a"), "s"), AggSpec("count", None, "n")]
    bound, fns = bind_aggregates(specs, SCHEMA)
    assert fns[0]((5, 0, "")) == 5
    assert fns[1]((5, 0, "")) == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
def test_property_agg_matches_python(values):
    checks = [
        ("sum", sum(values)),
        ("min", min(values)),
        ("max", max(values)),
        ("count", len(values)),
        ("avg", sum(values) / len(values)),
    ]
    for func, expected in checks:
        spec = AggSpec(func, Col("a") if func != "count" else None)
        state = spec.make_state()
        for value in values:
            state.add(value)
        assert state.result() == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(-50, 50), min_size=2, max_size=40),
    st.integers(1, 39),
)
def test_property_agg_merge_equals_whole(values, split):
    split = min(split, len(values) - 1)
    for func in ("sum", "min", "max", "count", "avg"):
        spec = AggSpec(func, Col("a") if func != "count" else None)
        whole = spec.make_state()
        for value in values:
            whole.add(value)
        left, right = spec.make_state(), spec.make_state()
        for value in values[:split]:
            left.add(value)
        for value in values[split:]:
            right.add(value)
        left.merge(right)
        assert left.result() == pytest.approx(whole.result())
