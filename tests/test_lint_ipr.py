"""Fixture tests for the interprocedural IPR passes, the baseline v2
format, the SARIF reporter, and the CLI plumbing added with them.

Includes the two mutation checks the pass exists for: deleting a
release from a designated fixture AND from a copy of a real engine
function must produce the documented finding with the right rule id and
symbol.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.core import collect_modules
from repro.lint.rules_ipr import analyze_project
from repro.lint.sarif import SARIF_VERSION, SCHEMA_URI, sarif_doc

REPO = Path(__file__).resolve().parents[1]


def run_lint(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], root=str(tmp_path))


def run_lint_files(tmp_path, **sources):
    for name, source in sources.items():
        (tmp_path / f"{name}.py").write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], root=str(tmp_path))


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# IPR001/IPR002: lock and pin escape
# ---------------------------------------------------------------------------
def test_ipr001_unwind_between_acquire_and_try(tmp_path):
    # The syntactic RES001 accepts acquire-then-later-try; the CFG pass
    # sees the yield between them and reports the gap it leaves.
    findings = run_lint(tmp_path, """\
        def serve(sm, sim):
            yield sm.locks.acquire("t")
            yield sim.timeout(1)
            try:
                yield 1
            finally:
                sm.locks.release("t")
        """)
    assert rules_of(findings) == ["IPR001"]
    assert findings[0].line == 2
    assert findings[0].symbol == "serve"
    assert "except" in findings[0].message


def test_ipr001_clean_idiomatic_acquire_then_try(tmp_path):
    # Plain host statements between acquire and try do not unwind.
    findings = run_lint(tmp_path, """\
        def serve(sm, packet):
            yield sm.locks.acquire("t")
            packet.phase = "scan"
            try:
                yield 1
            finally:
                sm.locks.release("t")
        """)
    assert findings == []


def test_ipr001_suppressible(tmp_path):
    findings = run_lint(tmp_path, """\
        def serve(sm, sim):
            yield sm.locks.acquire("t")  # simlint: disable=IPR001
            yield sim.timeout(1)
            try:
                yield 1
            finally:
                sm.locks.release("t")
        """)
    assert findings == []


def test_ipr002_pin_escape_before_try(tmp_path):
    findings = run_lint(tmp_path, """\
        def scan(pool, sim):
            page = pool.pin(3)
            yield sim.timeout(1)
            try:
                yield 1
            finally:
                pool.unpin(page)
        """)
    assert rules_of(findings) == ["IPR002"]
    assert findings[0].symbol == "scan"


def test_res_twin_dedupes_ipr(tmp_path):
    # Release present but never in a finally: RES001 fires, and the IPR
    # twin stays quiet on the same line (one finding per defect).
    findings = run_lint(tmp_path, """\
        def serve(sm):
            yield sm.locks.acquire("t")
            yield 1
            sm.locks.release("t")
        """)
    assert rules_of(findings) == ["RES001"]


# ---------------------------------------------------------------------------
# IPR003: temp-file escape, interprocedurally
# ---------------------------------------------------------------------------
def test_ipr003_cross_module_transfer(tmp_path):
    findings = run_lint_files(
        tmp_path,
        helpers="""\
            def make_spill(sm):
                run = sm.create_temp_file(64, label="x")
                return run
            """,
        user="""\
            from helpers import make_spill

            def consume(sm):
                run = make_spill(sm)
                yield 1
                sm.drop_temp_file(run)
            """,
    )
    assert rules_of(findings) == ["IPR003"]
    assert findings[0].path.endswith("user.py")
    assert findings[0].symbol == "consume"
    assert "make_spill" in findings[0].message
    assert "except" in findings[0].message


def test_ipr003_clean_finally_sweep(tmp_path):
    # A drop loop in a finally releases the whole kind, covering the
    # statically-possible zero-iteration path too.
    findings = run_lint_files(
        tmp_path,
        helpers="""\
            def make_spill(sm):
                run = sm.create_temp_file(64, label="x")
                return run
            """,
        user="""\
            from helpers import make_spill

            def consume(sm):
                runs = []
                try:
                    runs.append(make_spill(sm))
                    yield 1
                finally:
                    for run in runs:
                        sm.drop_temp_file(run)
            """,
    )
    assert findings == []


def test_ipr003_born_tracked_helper_is_clean(tmp_path):
    # track_temp at creation moves custody to the context's teardown
    # sweep: neither the helper nor its caller owes a release.
    findings = run_lint_files(
        tmp_path,
        helpers="""\
            def make_spill(ctx):
                run = ctx.track_temp(ctx.sm.create_temp_file(64))
                return run
            """,
        user="""\
            from helpers import make_spill

            def consume(ctx):
                run = make_spill(ctx)
                yield 1
            """,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# IPR101/IPR102: lock discipline
# ---------------------------------------------------------------------------
def test_ipr101_acquisition_order_cycle(tmp_path):
    findings = run_lint(tmp_path, """\
        def forward(la, lb):
            yield la.alpha.acquire()
            try:
                yield lb.beta.acquire()
                try:
                    yield 1
                finally:
                    lb.beta.release()
            finally:
                la.alpha.release()

        def backward(la, lb):
            yield lb.beta.acquire()
            try:
                yield la.alpha.acquire()
                try:
                    yield 1
                finally:
                    la.alpha.release()
            finally:
                lb.beta.release()
        """)
    assert rules_of(findings) == ["IPR101"]
    assert "la.alpha" in findings[0].message
    assert "lb.beta" in findings[0].message


def test_ipr101_consistent_order_is_clean(tmp_path):
    findings = run_lint(tmp_path, """\
        def one(la, lb):
            yield la.alpha.acquire()
            try:
                yield lb.beta.acquire()
                try:
                    yield 1
                finally:
                    lb.beta.release()
            finally:
                la.alpha.release()

        def two(la, lb):
            yield la.alpha.acquire()
            try:
                yield lb.beta.acquire()
                try:
                    yield 1
                finally:
                    lb.beta.release()
            finally:
                la.alpha.release()
        """)
    assert findings == []


def test_ipr102_wait_while_holding(tmp_path):
    findings = run_lint(tmp_path, """\
        def pump(lock, channel):
            yield lock.acquire()
            try:
                item = yield channel.get()
            finally:
                lock.release()
        """)
    assert rules_of(findings) == ["IPR102"]
    assert "lock" in findings[0].message


def test_ipr102_host_get_not_flagged(tmp_path):
    # A plain dict .get() is a host call, not a cooperative wait.
    findings = run_lint(tmp_path, """\
        def lookup(lock, table, key):
            yield lock.acquire()
            try:
                value = table.get(key)
                yield value
            finally:
                lock.release()
        """)
    assert findings == []


def test_ipr102_suppressible_with_reason(tmp_path):
    findings = run_lint(tmp_path, """\
        def pump(lock, channel):
            yield lock.acquire()
            try:
                # Intentional: pump owns the channel's only consumer.
                item = yield channel.get()  # simlint: disable=IPR102
            finally:
                lock.release()
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# IPR2xx: cell purity
# ---------------------------------------------------------------------------
CELL_PRELUDE = """\
    def cell(fn):
        return fn

    _CACHE = {}

"""


def test_ipr201_impure_cell_flagged_with_origin(tmp_path):
    findings = run_lint(tmp_path, CELL_PRELUDE + """\
    @cell
    def bad_cell(spec):
        _CACHE.update({1: 2})
        return spec

    @cell
    def good_cell(spec):
        return spec
    """)
    assert rules_of(findings) == ["IPR201"]
    assert "bad_cell" in findings[0].message
    assert "_CACHE" in findings[0].message  # names the origin


def test_ipr201_transitive_through_helper(tmp_path):
    findings = run_lint(tmp_path, CELL_PRELUDE + """\
    def memoise(key, value):
        _CACHE[key] = value
        return value

    @cell
    def bad_cell(spec):
        return memoise(spec, spec)
    """)
    assert rules_of(findings) == ["IPR201"]
    assert "memoise" in findings[0].message


def test_ipr201_origin_suppression_absolves_callers(tmp_path):
    findings = run_lint(tmp_path, CELL_PRELUDE + """\
    def memoise(key, value):
        # Deterministic memo: value is a pure function of key.
        _CACHE[key] = value  # simlint: disable=IPR201
        return value

    @cell
    def good_cell(spec):
        return memoise(spec, spec)
    """)
    assert findings == []


def test_ipr202_wall_clock_in_cell(tmp_path):
    findings = run_lint(tmp_path, "import time\n\n" + textwrap.dedent("""\
        def cell(fn):
            return fn

        def stamp():
            return time.time()

        @cell
        def timed_cell(spec):
            return stamp()
        """))
    assert "IPR202" in rules_of(findings)  # alongside DET001 at origin


def test_ipr202_det_waiver_is_honoured(tmp_path):
    findings = run_lint(tmp_path, "import time\n\n" + textwrap.dedent("""\
        def cell(fn):
            return fn

        def stamp():
            # Host-side progress logging only; never reaches results.
            return time.time()  # simlint: disable=DET001

        @cell
        def timed_cell(spec):
            return stamp()
        """))
    assert findings == []


def test_ipr203_host_io_in_cell(tmp_path):
    findings = run_lint(tmp_path, """\
        def cell(fn):
            return fn

        @cell
        def leaky_cell(spec):
            with open("/tmp/x") as fh:
                return fh.read()
        """)
    assert rules_of(findings) == ["IPR203"]


def test_all_registered_cells_are_pure():
    modules, errors = collect_modules([str(REPO / "src")], root=str(REPO))
    assert errors == []
    report = analyze_project(modules)
    assert len(report.cells) >= 14
    impure = [c for c in report.cells if not c.pure]
    assert impure == [], [
        (c.qualname, sorted(c.violations)) for c in impure
    ]


# ---------------------------------------------------------------------------
# Mutation checks: the analyzer notices a deleted release
# ---------------------------------------------------------------------------
def test_mutation_designated_fixture(tmp_path):
    fixture = textwrap.dedent("""\
        def serve(sm, packet):
            yield sm.locks.acquire("t")
            try:
                yield 1
            finally:
                sm.locks.release("t")
        """)
    assert run_lint(tmp_path, fixture) == []
    mutated = fixture.replace('        sm.locks.release("t")\n', "        pass\n")
    assert mutated != fixture
    findings = run_lint(tmp_path, mutated, name="mut.py")
    # Full deletion is owned by the syntactic twin (RES001); the IPR
    # rule stays quiet on that line by the one-finding-per-defect rule.
    assert any(
        f.rule in ("RES001", "IPR001") and f.symbol == "serve"
        for f in findings
    ), [f.render() for f in findings]


def test_mutation_real_engine_function(tmp_path):
    """Delete the temp-file drop from a copy of the real NL-join engine
    and the analyzer must report IPR003 against NLJoinEngine.serve."""
    source = (REPO / "src/repro/engine/engines/joins.py").read_text()
    drop_line = "            sm.drop_temp_file(mat)\n"
    assert drop_line in source
    mutated = source.replace(drop_line, "            pass\n")

    def ipr003_of(text):
        (tmp_path / "joins_copy.py").write_text(text)
        found = lint_paths(
            [str(tmp_path / "joins_copy.py")], root=str(tmp_path)
        )
        return [f for f in found if f.rule == "IPR003"]

    assert ipr003_of(source) == []
    mutants = ipr003_of(mutated)
    assert any(f.symbol == "NLJoinEngine.serve" for f in mutants), [
        f.render() for f in mutants
    ]


# ---------------------------------------------------------------------------
# Baseline v2 and v1 migration
# ---------------------------------------------------------------------------
IMPURE = """\
    def cell(fn):
        return fn

    _CACHE = {}

    @cell
    def bad_cell(spec):
        _CACHE.update({1: 2})
        return spec
"""


def test_baseline_v2_round_trip(tmp_path):
    findings = run_lint(tmp_path, IMPURE)
    assert rules_of(findings) == ["IPR201"]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_path))
    doc = json.loads(baseline_path.read_text())
    assert doc["version"] == 2
    assert doc["findings"][0]["symbol"] == "bad_cell"

    baseline = load_baseline(str(baseline_path))
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert new == [] and len(grandfathered) == 1 and stale == []


def test_baseline_v1_entries_still_match(tmp_path):
    findings = run_lint(tmp_path, IMPURE)
    (finding,) = findings
    v1 = {
        "version": 1,
        "findings": [{
            "path": finding.path,
            "rule": finding.rule,
            "snippet": finding.snippet,
        }],
    }
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(v1))
    baseline = load_baseline(str(baseline_path))
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert new == [] and len(grandfathered) == 1 and stale == []


def test_baseline_stale_entry_reported(tmp_path):
    findings = run_lint(tmp_path, IMPURE)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_path))
    baseline = load_baseline(str(baseline_path))
    new, grandfathered, stale = apply_baseline([], baseline)
    assert new == [] and grandfathered == [] and len(stale) == 1


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------
def test_sarif_document_structure(tmp_path):
    findings = run_lint(tmp_path, IMPURE)
    from repro.lint.core import rule_catalogue

    doc = sarif_doc(findings, rule_catalogue())
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SCHEMA_URI
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simlint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert "IPR201" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "IPR201"
    assert result["level"] == "error"
    assert driver["rules"][result["ruleIndex"]]["id"] == "IPR201"
    (location,) = result["locations"]
    region = location["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    assert "simlintFingerprint/v2" in result["partialFingerprints"]


def _run_cli(args, cwd, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=str(cwd), env=env, capture_output=True, text=True,
    )


def test_cli_sarif_output(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    proc = _run_cli(
        ["--format", "sarif", "--output", "out.sarif", str(bad)],
        cwd=tmp_path,
    )
    assert proc.returncode == 1
    doc = json.loads((tmp_path / "out.sarif").read_text())
    assert doc["version"] == "2.1.0"
    assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["DET001"]


# ---------------------------------------------------------------------------
# CLI: profiles, --explain, --jobs, module table
# ---------------------------------------------------------------------------
def test_cli_profile_tests_relaxes_det_and_purity(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    strict = _run_cli([str(bad)], cwd=tmp_path)
    relaxed = _run_cli(["--profile", "tests", str(bad)], cwd=tmp_path)
    assert strict.returncode == 1
    assert relaxed.returncode == 0, relaxed.stdout + relaxed.stderr


def test_cli_profile_tests_keeps_resource_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent("""\
        def serve(sm, sim):
            yield sm.locks.acquire("t")
            yield sim.timeout(1)
            try:
                yield 1
            finally:
                sm.locks.release("t")
        """))
    proc = _run_cli(["--profile", "tests", str(bad)], cwd=tmp_path)
    assert proc.returncode == 1
    assert "IPR001" in proc.stdout


def test_cli_explain_ipr_rule(tmp_path):
    proc = _run_cli(["--explain", "IPR003"], cwd=tmp_path)
    assert proc.returncode == 0
    assert "create_temp_file" in proc.stdout
    assert "try/finally" in proc.stdout or "track_temp" in proc.stdout


def test_parallel_parse_matches_serial(tmp_path):
    (tmp_path / "a.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    (tmp_path / "b.py").write_text(
        "def g(sm):\n    yield sm.locks.acquire('t')\n    yield 1\n"
    )
    serial = lint_paths([str(tmp_path)], root=str(tmp_path), jobs=1)
    parallel = lint_paths([str(tmp_path)], root=str(tmp_path), jobs=2)
    assert [f.to_dict() for f in serial] == [f.to_dict() for f in parallel]
    assert serial != []


def test_parallel_parse_reports_syntax_errors(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    serial = lint_paths([str(tmp_path)], root=str(tmp_path), jobs=1)
    parallel = lint_paths([str(tmp_path)], root=str(tmp_path), jobs=2)
    assert rules_of(serial) == ["E001"]
    assert [f.to_dict() for f in serial] == [f.to_dict() for f in parallel]


def test_cli_emit_module_table(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("def f():\n    return 1\n")
    proc = _run_cli(
        ["--emit-module-table", "table.json", str(good)], cwd=tmp_path
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads((tmp_path / "table.json").read_text())
    assert doc["version"] == 1
    (entry,) = doc["files"].values()
    assert set(entry) == {"size", "mtime_ns", "sha256"}
    assert entry["size"] == good.stat().st_size


def test_module_table_feeds_digest_cache(tmp_path, monkeypatch):
    """REPRO_MODTABLE short-circuits re-hashing when size+mtime match."""
    import importlib

    from repro.parallel import digest

    src = tmp_path / "pkg.py"
    src.write_text("X = 1\n")
    st = src.stat()
    table = {
        "version": 1,
        "files": {
            str(src): {
                "size": st.st_size,
                "mtime_ns": st.st_mtime_ns,
                "sha256": "cached-digest-sentinel",
            }
        },
    }
    table_path = tmp_path / "table.json"
    table_path.write_text(json.dumps(table))
    monkeypatch.setenv("REPRO_MODTABLE", str(table_path))
    monkeypatch.setattr(digest, "_MODTABLE", None)
    try:
        assert digest._file_hash(str(src)) == "cached-digest-sentinel"
        # A content change invalidates via mtime/size, falling back to
        # a real hash.
        src.write_text("X = 2\nY = 3\n")
        assert digest._file_hash(str(src)) != "cached-digest-sentinel"
    finally:
        monkeypatch.setattr(digest, "_MODTABLE", None)
