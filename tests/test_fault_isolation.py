"""Failure isolation for shared pipelines (OSP under faults).

One participant of a shared scan or shared operator dying must not take
the others with it: satellites of a crashed host detach into private
catch-up executions, a crashed shared scanner restarts for its surviving
consumers, and aborting a satellite's query leaves the host untouched.
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.faults import QueryAborted
from repro.faults.errors import FaultError
from repro.obs import Tracer
from repro.obs.invariants import InvariantChecker
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, TableScan


def count_plan(predicate=None):
    return Aggregate(
        TableScan("r", predicate=predicate), [AggSpec("count", None, "n")]
    )


def spawn_catching(host, engine, plan, name="client", delay=0.0):
    box = {}

    def client():
        if delay:
            yield host.sim.timeout(delay)
        try:
            result = yield from engine.execute(plan)
        except FaultError as exc:
            box["error"] = exc
            return None
        box["rows"] = result.rows
        return result

    box["proc"] = host.sim.spawn(client(), name=name)
    return box


def trace_types(tracer):
    return [e["type"] for e in tracer.events]


def assert_clean(sm, engine, tracer):
    assert engine.active_queries == 0
    assert sm.pool._pins == {}
    assert all(not grants for grants in sm.locks._granted.values())
    assert InvariantChecker(tracer.events).check() == []


# ---------------------------------------------------------------------------
# Crashed shared scanner: survivors get a restarted scan, not an abort
# ---------------------------------------------------------------------------
def test_scanner_crash_mid_wrap_satellites_complete(big_db):
    """Killing the host scanner of an active shared circular scan
    mid-wrap must leave the attached consumers producing complete,
    correct results (the restarted scanner resumes at the crash
    position and every consumer still sees each page exactly once)."""
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    tracer = Tracer(host.sim)

    # Different predicates: both share the circular scan, neither can
    # piggyback on the other's aggregate.
    first = spawn_catching(host, engine, count_plan(), name="first")
    second = spawn_catching(
        host, engine, count_plan(Col("grp") == 3), name="second", delay=0.1
    )

    crashed = {}

    def killer():
        yield host.sim.timeout(0.25)
        scan = engine.engines["fscan"].circular.scans.get("r")
        assert scan is not None and scan.scanner_proc.alive
        # Mid-wrap: the second consumer attached mid-file, and the
        # scanner is away from page 0.
        crashed["position"] = scan.current_page
        crashed["consumers"] = len(scan.consumers)
        scan.scanner_proc.interrupt("injected scanner crash")

    host.sim.spawn(killer(), name="killer")
    host.sim.run()

    assert crashed["position"] != 0
    assert crashed["consumers"] == 2
    assert first["rows"] == [(len(r_rows),)]
    want = sum(1 for row in r_rows if row[1] == 3)
    assert second["rows"] == [(want,)]
    assert "osp.scanner_restart" in trace_types(tracer)
    assert engine.queries_aborted == 0
    assert_clean(sm, engine, tracer)


# ---------------------------------------------------------------------------
# Crashed host packet: generic satellites detach and re-execute privately
# ---------------------------------------------------------------------------
def test_host_crash_redispatches_generic_satellite(big_db):
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    tracer = Tracer(host.sim)

    first = spawn_catching(host, engine, count_plan(), name="first")
    # Identical signature: the second query's aggregate attaches to the
    # first's as a generic satellite.
    second = spawn_catching(host, engine, count_plan(), name="second", delay=0.05)
    host.sim.schedule(0.2, engine.cancel, 1, "host query aborted")
    host.sim.run()

    types = trace_types(tracer)
    assert "packet.attach" in types  # the share really happened
    assert isinstance(first["error"], QueryAborted)
    # The satellite was detached (not dragged down) and completed.
    assert "packet.detach" in types
    assert second["rows"] == [(len(r_rows),)]
    assert engine.queries_aborted == 1
    assert_clean(sm, engine, tracer)


def test_satellite_abort_leaves_host_undisturbed(big_db):
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    tracer = Tracer(host.sim)

    first = spawn_catching(host, engine, count_plan(), name="first")
    second = spawn_catching(host, engine, count_plan(), name="second", delay=0.05)
    host.sim.schedule(0.2, engine.cancel, 2, "satellite query aborted")
    host.sim.run()

    types = trace_types(tracer)
    assert "packet.attach" in types
    assert isinstance(second["error"], QueryAborted)
    # The host query never noticed.
    assert first["rows"] == [(len(r_rows),)]
    assert engine.queries_aborted == 1
    assert_clean(sm, engine, tracer)
