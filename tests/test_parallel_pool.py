"""PoolRunner failure handling, scripted through fake executors.

The fakes complete futures eagerly (a cell "runs" at submit time), which
is enough to drive every branch of the runner's pool path: retries,
permanent CellError, broken-pool recovery with marker-based crash
attribution, and Ctrl-C teardown.
"""

import os
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.harness.config import SMOKE
from repro.parallel import CellCache, CellError, PoolRunner
from repro.parallel.cells import CellSpec, cell, coords, fn_key


@cell
def ok_cell(spec):
    return spec.coord["x"] + 1


@cell
def boom_cell(spec):
    raise ValueError("boom")


@cell
def flaky_cell(spec):
    """Fails on the first attempt, succeeds on the second (the flag file
    carries 'already tried once' across attempts)."""
    flag = spec.coord["flag"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return "recovered"


def ok_spec(x=1):
    return CellSpec("figT", fn_key(ok_cell), SMOKE, coords(x=x))


def boom_spec():
    return CellSpec("figT", fn_key(boom_cell), SMOKE, coords(x=0))


def flaky_spec(tmp_path):
    flag = str(tmp_path / "attempted.flag")
    return CellSpec("figT", fn_key(flaky_cell), SMOKE, coords(flag=flag))


# ---------------------------------------------------------------------------
# Fake executor machinery
# ---------------------------------------------------------------------------
class FakeProc:
    def __init__(self):
        self.terminated = False

    def terminate(self):
        self.terminated = True


class FakeExecutor:
    """Executor double: runs the submitted callable at submit() time.

    ``behavior(fn, args)`` computes the future's outcome; the default
    simply calls through (so the real ``_worker`` body runs in-process).
    """

    def __init__(self, behavior=None):
        self.behavior = behavior or (lambda fn, args: fn(*args))
        self.submitted = []
        self.shutdown_calls = []
        self._processes = {0: FakeProc()}

    def submit(self, fn, *args):
        self.submitted.append(args)
        future = Future()
        try:
            result = self.behavior(fn, args)
        except BaseException as exc:  # includes KeyboardInterrupt
            future.set_exception(exc)
        else:
            future.set_result(result)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append((wait, cancel_futures))

    @property
    def terminated(self):
        return self._processes[0].terminated


class Factory:
    """Counts executors handed to the runner; scripts each generation."""

    def __init__(self, *behaviors):
        self.behaviors = list(behaviors)
        self.executors = []

    def __call__(self, jobs):
        behavior = (
            self.behaviors.pop(0) if self.behaviors else None
        )
        executor = FakeExecutor(behavior)
        self.executors.append(executor)
        return executor


# ---------------------------------------------------------------------------
# Serial path (jobs=1): retry budget and typed failure
# ---------------------------------------------------------------------------
def test_serial_retry_recovers(tmp_path):
    runner = PoolRunner(jobs=1)
    spec = flaky_spec(tmp_path)
    results = runner.run([spec])
    assert results[spec].payload == "recovered"
    assert results[spec].attempts == 2
    assert runner.stats.retries == 1


def test_serial_permanent_failure_names_the_cell():
    runner = PoolRunner(jobs=1, retries=1)
    with pytest.raises(CellError) as err:
        runner.run([boom_spec()])
    assert err.value.attempts == 2
    assert isinstance(err.value.cause, ValueError)
    assert "figT" in str(err.value) and "x=0" in str(err.value)


# ---------------------------------------------------------------------------
# Pool path: basics
# ---------------------------------------------------------------------------
def test_pool_runs_and_dedupes():
    factory = Factory()
    with PoolRunner(jobs=2, executor_factory=factory) as runner:
        a, b = ok_spec(1), ok_spec(2)
        results = runner.run([a, a, b])
    assert results[a].payload == 2 and results[b].payload == 3
    assert runner.stats.total == 2 and runner.stats.executed == 2
    assert len(factory.executors[0].submitted) == 2


def test_pool_retry_recovers(tmp_path):
    factory = Factory()
    with PoolRunner(jobs=2, executor_factory=factory) as runner:
        spec = flaky_spec(tmp_path)
        results = runner.run([spec])
    assert results[spec].payload == "recovered"
    assert results[spec].attempts == 2
    assert runner.stats.retries == 1


def test_pool_permanent_failure_raises_cell_error():
    factory = Factory()
    with PoolRunner(jobs=2, executor_factory=factory, retries=1) as runner:
        with pytest.raises(CellError) as err:
            runner.run([boom_spec()])
    assert err.value.attempts == 2
    assert err.value.spec == boom_spec()


# ---------------------------------------------------------------------------
# Pool path: worker crash (broken pool) with marker attribution
# ---------------------------------------------------------------------------
def _breaking_behavior(guilty_slug):
    """First-generation pool: the guilty cell's worker touches its
    marker and dies, breaking the pool -- every future fails."""

    def behavior(fn, args):
        spec, _trace, marker = args
        if spec.slug() == guilty_slug:
            with open(marker, "w"):
                pass
        raise BrokenExecutor("process pool is broken")

    return behavior


def test_broken_pool_charges_only_the_marked_cell():
    guilty, innocent = ok_spec(7), ok_spec(8)
    factory = Factory(_breaking_behavior(guilty.slug()))
    with PoolRunner(jobs=2, executor_factory=factory) as runner:
        results = runner.run([guilty, innocent])
    # Both cells completed on the rebuilt pool.
    assert results[guilty].payload == 8
    assert results[innocent].payload == 9
    # Only the marked (actually running) cell spent retry budget.
    assert results[guilty].attempts == 2
    assert results[innocent].attempts == 1
    assert runner.stats.retries == 1
    # The broken executor was replaced and its processes terminated.
    assert len(factory.executors) == 2
    assert factory.executors[0].terminated
    assert factory.executors[0].shutdown_calls == [(False, True)]


def test_broken_pool_exhausts_budget_into_cell_error():
    guilty = ok_spec(7)
    factory = Factory(
        _breaking_behavior(guilty.slug()),
        _breaking_behavior(guilty.slug()),
    )
    with PoolRunner(jobs=2, executor_factory=factory, retries=1) as runner:
        with pytest.raises(CellError) as err:
            runner.run([guilty])
    assert err.value.spec == guilty
    assert err.value.cause is None
    assert "worker died" in str(err.value)


# ---------------------------------------------------------------------------
# Pool path: Ctrl-C
# ---------------------------------------------------------------------------
def test_keyboard_interrupt_tears_the_pool_down():
    def interrupting(fn, args):
        spec, _trace, _marker = args
        if spec.coord["x"] == 13:
            raise KeyboardInterrupt()
        return fn(*args)

    factory = Factory(interrupting)
    runner = PoolRunner(jobs=2, executor_factory=factory)
    with pytest.raises(KeyboardInterrupt):
        runner.run([ok_spec(13), ok_spec(1), ok_spec(2)])
    executor = factory.executors[0]
    # The pool was shut down without waiting, futures cancelled, and the
    # worker processes terminated -- Ctrl-C must not drain in-flight work.
    assert executor.shutdown_calls == [(False, True)]
    assert executor.terminated
    runner.close()


# ---------------------------------------------------------------------------
# Cache integration
# ---------------------------------------------------------------------------
def _cache(tmp_path):
    return CellCache(
        str(tmp_path / "cache"),
        src_root=str(tmp_path),
        source_digests={ok_cell.__module__: "synthetic"},
    )


def test_runner_consults_and_fills_the_cache(tmp_path):
    specs = [ok_spec(1), ok_spec(2)]
    with PoolRunner(jobs=1, cache=_cache(tmp_path)) as runner:
        first = runner.run(specs)
    assert runner.stats.cache_hits == 0 and runner.stats.executed == 2
    with PoolRunner(jobs=1, cache=_cache(tmp_path)) as warm:
        second = warm.run(specs)
    assert warm.stats.cache_hits == 2 and warm.stats.executed == 0
    assert warm.stats.hit_rate == 1.0
    for spec in specs:
        assert second[spec].cached
        assert second[spec].payload == first[spec].payload


def test_tracing_bypasses_cache_reads(tmp_path):
    spec = ok_spec(1)
    with PoolRunner(jobs=1, cache=_cache(tmp_path)) as runner:
        runner.run([spec])
    with PoolRunner(jobs=1, cache=_cache(tmp_path), trace=True) as traced:
        results = traced.run([spec])
    assert traced.stats.cache_hits == 0 and traced.stats.executed == 1
    assert not results[spec].cached
    assert results[spec].traces == []  # no simulated hosts in ok_cell


# ---------------------------------------------------------------------------
# Worker-count clamping (the macro.fig12_smoke_par4 1-core regression)
# ---------------------------------------------------------------------------
def test_jobs_clamped_to_cpu_count(monkeypatch):
    """Real pools never run more workers than cores: on a 1-core
    machine ``--jobs 4`` must behave like ``--jobs 1`` (serial
    in-process) instead of paying four spawn startups for strictly
    serial execution."""
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    runner = PoolRunner(jobs=4)
    assert runner.jobs == 1
    # jobs == 1 takes the serial in-process path: verify it end to end.
    results = runner.run([ok_spec(5)])
    assert list(results.values())[0].payload == 6
    runner.close()


def test_jobs_zero_still_means_one_per_cpu(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 3)
    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 3)
    runner = PoolRunner(jobs=0)
    assert runner.jobs == 3
    runner.close()


def test_fake_executors_keep_the_requested_worker_count(monkeypatch):
    """Injected executor factories script crash scenarios at a given
    worker count; the machine's core count must not reroute them to the
    serial path."""
    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
    factory = Factory()
    with PoolRunner(jobs=2, executor_factory=factory) as runner:
        results = runner.run([ok_spec(1), ok_spec(2)])
    assert runner.jobs == 2
    assert factory.executors  # the fake pool actually ran
    assert {r.payload for r in results.values()} == {2, 3}


def test_adaptive_width_bypasses_pool_for_fewer_cells(monkeypatch):
    """Effective width is min(requested, cpu_count, cell count): a
    one-cell run on a many-core machine must never build a process pool,
    and its payload must match the serial reference exactly."""
    import repro.parallel.pool as pool_mod

    monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 8)
    with PoolRunner(jobs=4) as runner:
        assert runner.jobs == 4  # the cpu clamp leaves 4-of-8 alone
        results = runner.run([ok_spec(7)])
        assert runner._executor is None  # no pool for a width-1 run
    with PoolRunner(jobs=1) as serial_runner:
        serial = serial_runner.run([ok_spec(7)])
    assert [r.payload for r in results.values()] == [
        r.payload for r in serial.values()
    ]


# ---------------------------------------------------------------------------
# Work stealing: the steal policy, and a forced steal through the pool
# ---------------------------------------------------------------------------
def test_steal_choice_policy():
    from repro.parallel import steal_choice

    # Own queue first, regardless of longer queues elsewhere.
    assert steal_choice([[1], [1, 2, 3]], 0) == 0
    # Empty own queue: steal from the longest other queue.
    assert steal_choice([[], [1], [1, 2]], 0) == 2
    # Ties break to the lowest slot index.
    assert steal_choice([[], [1, 2], [1, 2]], 0) == 1
    # Every queue drained: nothing to take.
    assert steal_choice([[], [], []], 1) is None


def test_pool_steals_from_a_busy_slot(tmp_path):
    """Deal [flaky, ok, ok] onto two slots: slot 0 gets [flaky, ok(3)],
    slot 1 gets [ok(2)].  The flaky cell's retry re-occupies slot 0
    without refilling, so when slot 1 finishes its only cell the sole
    remaining work sits in slot 0's queue -- slot 1 must steal it."""
    flaky = flaky_spec(tmp_path)
    specs = [flaky, ok_spec(2), ok_spec(3)]
    factory = Factory()
    with PoolRunner(jobs=2, executor_factory=factory) as runner:
        results = runner.run(specs)
    assert results[flaky].payload == "recovered"
    assert results[ok_spec(2)].payload == 3
    assert results[ok_spec(3)].payload == 4
    assert runner.stats.retries == 1
    assert runner.stats.steals == 1
    assert runner.stats.executed == 3


def test_pool_steals_match_serial_payloads(tmp_path):
    """Byte-identity across scheduling: an uneven bag run with steals
    produces exactly the serial runner's payloads."""
    flaky = flaky_spec(tmp_path)
    specs = [flaky, ok_spec(10), ok_spec(11), ok_spec(12), ok_spec(13)]
    with PoolRunner(jobs=2, executor_factory=Factory()) as runner:
        pooled = runner.run(specs)
    serial_flag = str(tmp_path / "serial.flag")
    serial_specs = [
        CellSpec("figT", fn_key(flaky_cell), SMOKE, coords(flag=serial_flag))
    ] + specs[1:]
    with PoolRunner(jobs=1) as reference:
        serial = reference.run(serial_specs)
    assert [pooled[s].payload for s in specs] == [
        serial[s].payload for s in serial_specs
    ]
