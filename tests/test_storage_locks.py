"""Unit tests for the table lock manager."""

import pytest

from repro.sim import Simulator
from repro.storage.locks import LockManager, LockMode

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


def test_shared_locks_coexist():
    sim = Simulator()
    lm = LockManager(sim)
    granted = []

    def reader(name):
        yield lm.acquire(name, "t", S)
        granted.append((name, sim.now))
        yield sim.timeout(5)
        lm.release(name, "t")

    sim.spawn(reader("a"))
    sim.spawn(reader("b"))
    sim.run()
    assert granted == [("a", 0.0), ("b", 0.0)]


def test_exclusive_blocks_shared():
    sim = Simulator()
    lm = LockManager(sim)
    log = []

    def writer():
        yield lm.acquire("w", "t", X)
        log.append(("w", sim.now))
        yield sim.timeout(10)
        lm.release("w", "t")

    def reader():
        yield sim.timeout(1)
        yield lm.acquire("r", "t", S)
        log.append(("r", sim.now))
        lm.release("r", "t")

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert log == [("w", 0.0), ("r", 10.0)]


def test_fifo_writer_not_starved():
    """A waiting X blocks later S requests (no reader starvation of writers)."""
    sim = Simulator()
    lm = LockManager(sim)
    log = []

    def early_reader():
        yield lm.acquire("r1", "t", S)
        yield sim.timeout(10)
        lm.release("r1", "t")

    def writer():
        yield sim.timeout(1)
        yield lm.acquire("w", "t", X)
        log.append(("w", sim.now))
        yield sim.timeout(5)
        lm.release("w", "t")

    def late_reader():
        yield sim.timeout(2)
        yield lm.acquire("r2", "t", S)
        log.append(("r2", sim.now))
        lm.release("r2", "t")

    sim.spawn(early_reader())
    sim.spawn(writer())
    sim.spawn(late_reader())
    sim.run()
    # The late reader must wait behind the queued writer.
    assert log == [("w", 10.0), ("r2", 15.0)]


def test_reacquire_same_mode_is_idempotent():
    sim = Simulator()
    lm = LockManager(sim)

    def owner():
        yield lm.acquire("o", "t", S)
        yield lm.acquire("o", "t", S)  # immediate
        lm.release("o", "t")

    p = sim.spawn(owner())
    sim.run_until_done([p])
    assert lm.holders("t") == []


def test_release_unheld_raises():
    sim = Simulator()
    lm = LockManager(sim)
    with pytest.raises(Exception):
        lm.release("nobody", "t")


def test_release_all():
    sim = Simulator()
    lm = LockManager(sim)

    def owner():
        yield lm.acquire("o", "t1", S)
        yield lm.acquire("o", "t2", X)
        lm.release_all("o")

    p = sim.spawn(owner())
    sim.run_until_done([p])
    assert lm.holders("t1") == [] and lm.holders("t2") == []


def test_queue_length_introspection():
    sim = Simulator()
    lm = LockManager(sim)

    def writer(name, hold):
        yield lm.acquire(name, "t", X)
        yield sim.timeout(hold)
        lm.release(name, "t")

    sim.spawn(writer("w1", 5))
    sim.spawn(writer("w2", 5))
    sim.run(until=1)
    assert lm.queue_length("t") == 1
    sim.run()
    assert lm.queue_length("t") == 0
