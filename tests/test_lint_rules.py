"""Fixture tests for every simlint rule family (:mod:`repro.lint`).

Each rule gets a bad snippet that must produce exactly the documented
finding and a good snippet that must lint clean; a meta-test keeps the
committed tree itself clean so the CI gate stays green.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline

REPO = Path(__file__).resolve().parents[1]


def run_lint(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], root=str(tmp_path))


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# DET: determinism
# ---------------------------------------------------------------------------
def test_det001_wall_clock(tmp_path):
    findings = run_lint(tmp_path, """\
        import time

        def now():
            return time.time()
        """)
    assert rules_of(findings) == ["DET001"]
    assert findings[0].line == 4


def test_det001_clean_virtual_time(tmp_path):
    findings = run_lint(tmp_path, """\
        def now(sim):
            return sim.now
        """)
    assert findings == []


def test_det001_import_alias_resolved(tmp_path):
    findings = run_lint(tmp_path, """\
        from time import monotonic as mt

        def now():
            return mt()
        """)
    assert rules_of(findings) == ["DET001"]


def test_det002_global_rng(tmp_path):
    findings = run_lint(tmp_path, """\
        import random

        def jitter():
            return random.random()
        """)
    assert rules_of(findings) == ["DET002"]


def test_det002_unseeded_instance(tmp_path):
    findings = run_lint(tmp_path, """\
        import random

        def make_rng():
            return random.Random()
        """)
    assert rules_of(findings) == ["DET002"]


def test_det002_clean_seeded_instance(tmp_path):
    findings = run_lint(tmp_path, """\
        import random

        def make_rng(seed):
            return random.Random(seed)
        """)
    assert findings == []


def test_det003_os_entropy(tmp_path):
    findings = run_lint(tmp_path, """\
        import os
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4()
        """)
    assert rules_of(findings) == ["DET003", "DET003"]


def test_det004_id_in_sort_key(tmp_path):
    findings = run_lint(tmp_path, """\
        def order(pages):
            return sorted(pages, key=lambda p: id(p))
        """)
    assert rules_of(findings) == ["DET004"]


def test_det004_clean_stable_key(tmp_path):
    findings = run_lint(tmp_path, """\
        def order(pages):
            return sorted(pages, key=lambda p: p.page_id)
        """)
    assert findings == []


def test_det005_set_iteration(tmp_path):
    findings = run_lint(tmp_path, """\
        def walk(a, b):
            waiting = {a, b}
            for item in waiting:
                print(item)
        """)
    assert rules_of(findings) == ["DET005"]


def test_det005_clean_sorted_set(tmp_path):
    findings = run_lint(tmp_path, """\
        def walk(a, b):
            waiting = {a, b}
            for item in sorted(waiting):
                print(item)
        """)
    assert findings == []


def run_lint_in(tmp_path, subdir, source):
    """Lint a snippet placed under *subdir* (DET006 is path-scoped)."""
    (tmp_path / subdir).mkdir(parents=True, exist_ok=True)
    return run_lint(tmp_path, source, name=f"{subdir}/mod.py")


def test_det006_anonymous_seed_in_harness(tmp_path):
    findings = run_lint_in(tmp_path, "harness", """\
        import random

        def cell(i):
            return random.Random(42), random.Random(i)
        """)
    assert rules_of(findings) == ["DET006", "DET006"]


def test_det006_applies_under_workloads_too(tmp_path):
    findings = run_lint_in(tmp_path, "repro/workloads/tpch", """\
        import random

        def params():
            return random.Random(0)
        """)
    assert rules_of(findings) == ["DET006"]


def test_det006_clean_named_seed_constant(tmp_path):
    findings = run_lint_in(tmp_path, "harness", """\
        import random

        FIG_QUERY_SEED = 1
        CLIENT_SEED_BASE = 100

        def cells(scale, i):
            return (
                random.Random(FIG_QUERY_SEED),
                random.Random(CLIENT_SEED_BASE + i),
                random.Random(scale.seed + i),
            )
        """)
    assert findings == []


def test_det006_clean_seed_parameter(tmp_path):
    findings = run_lint_in(tmp_path, "workloads", """\
        import random

        def run(seed):
            seed_rng = random.Random(seed)
            return random.Random(seed_rng.randrange(2**31))
        """)
    assert findings == []


def test_det006_silent_outside_experiment_dirs(tmp_path):
    findings = run_lint(tmp_path, """\
        import random

        def anywhere():
            return random.Random(42)
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# YLD: cooperative scheduling
# ---------------------------------------------------------------------------
def test_yld001_dropped_primitive(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(sim):
            sim.timeout(5)
            yield sim.timeout(1)
        """)
    assert rules_of(findings) == ["YLD001"]
    assert findings[0].line == 2


def test_yld001_clean_yielded(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(sim):
            yield sim.timeout(5)
        """)
    assert findings == []


def test_yld001_dropped_generator_call(tmp_path):
    findings = run_lint(tmp_path, """\
        def _work():
            yield 1

        def proc():
            _work()
            yield None
        """)
    assert rules_of(findings) == ["YLD001"]
    assert findings[0].line == 5


def test_yld001_clean_yield_from(tmp_path):
    findings = run_lint(tmp_path, """\
        def _work():
            yield 1

        def proc():
            yield from _work()
        """)
    assert findings == []


def test_yld001_ambiguous_name_not_flagged(tmp_path):
    # `insert` names both a generator and a plain method somewhere; an
    # untyped obj.insert() call site must not be guessed at.
    findings = run_lint(tmp_path, """\
        class Wal:
            def insert(self, row):
                yield row

        class Page:
            def insert(self, row):
                self.rows.append(row)

        def apply(page, row):
            page.insert(row)
        """)
    assert findings == []


def test_yld001_common_method_not_flagged(tmp_path):
    # A generator named `write` must not make file-handle writes look
    # like dropped generators.
    findings = run_lint(tmp_path, """\
        class Disk:
            def write(self, block):
                yield block

        def dump(fh):
            fh.write("hello")
        """)
    assert findings == []


def test_yld002_unreachable_private_generator(tmp_path):
    findings = run_lint(tmp_path, """\
        def _orphan():
            yield 1
        """)
    assert rules_of(findings) == ["YLD002"]
    assert findings[0].line == 1


def test_yld002_public_generator_exempt(tmp_path):
    # Public generators are API surface: tests and client code outside
    # the linted tree reference them.
    findings = run_lint(tmp_path, """\
        def fetch_rows():
            yield 1
        """)
    assert findings == []


def test_yld002_referenced_generator_clean(tmp_path):
    findings = run_lint(tmp_path, """\
        def _work():
            yield 1

        def proc():
            yield from _work()
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# RES: resource pairing
# ---------------------------------------------------------------------------
def test_res001_release_outside_finally(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(lock):
            yield lock.acquire()
            do_work()
            lock.release()
        """)
    assert rules_of(findings) == ["RES001"]
    assert findings[0].line == 2


def test_res001_missing_release(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(lock):
            yield lock.acquire()
            do_work()
        """)
    assert rules_of(findings) == ["RES001"]


def test_res001_clean_try_finally(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(lock):
            yield lock.acquire()
            try:
                do_work()
            finally:
                lock.release()
        """)
    assert findings == []


def test_res001_clean_enclosing_try(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(lock):
            try:
                yield lock.acquire()
                do_work()
            finally:
                lock.release_if_held()
        """)
    assert findings == []


def test_res001_clean_context_manager(tmp_path):
    findings = run_lint(tmp_path, """\
        def proc(lock):
            with lock.acquire():
                do_work()
        """)
    assert findings == []


def test_res002_pin_without_unpin(tmp_path):
    findings = run_lint(tmp_path, """\
        def fetch(pool, fid, block):
            page = yield from pool.get_page(fid, block, pin=True)
            return page.rows
        """)
    assert rules_of(findings) == ["RES002"]
    assert findings[0].line == 2


def test_res002_clean_unpin_in_finally(tmp_path):
    findings = run_lint(tmp_path, """\
        def fetch(pool, fid, block):
            page = yield from pool.get_page(fid, block, pin=True)
            try:
                return page.rows
            finally:
                pool.unpin(fid, block)
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# TRC: trace-schema conformance
# ---------------------------------------------------------------------------
def test_trc001_unregistered_name(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer):
            tracer.event("packet.dispatched", packet=1, query=1,
                         engine="scan", op="TableScan")
        """)
    assert rules_of(findings) == ["TRC001"]


def test_trc001_unregistered_family_suffix(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer):
            tracer.osp("circularstart", packet=1, table="t")
        """)
    assert rules_of(findings) == ["TRC001"]


def test_trc001_clean_registered(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer):
            tracer.event("query.abort", query=3, reason="deadline")
            tracer.osp("circular_start", packet=1, table="t")
        """)
    assert findings == []


def test_trc002_dynamic_name(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer, name):
            tracer.event(name, query=3)
        """)
    assert rules_of(findings) == ["TRC002"]


def test_trc002_suppressible(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer, name):
            tracer.event(name, query=3)  # simlint: disable=TRC002
        """)
    assert findings == []


def test_trc003_missing_required_field(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer):
            tracer.event("query.abort", query=3)
        """)
    assert rules_of(findings) == ["TRC003"]
    assert "reason" in findings[0].message


def test_trc003_kwargs_forwarding_skipped(tmp_path):
    findings = run_lint(tmp_path, """\
        def emit(tracer, **fields):
            tracer.event("query.abort", **fields)
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# Suppressions, parse errors, baseline
# ---------------------------------------------------------------------------
def test_suppression_wildcard(tmp_path):
    findings = run_lint(tmp_path, """\
        import time

        def now():
            return time.time()  # simlint: disable=*
        """)
    assert findings == []


def test_suppression_other_rule_does_not_hide(tmp_path):
    findings = run_lint(tmp_path, """\
        import time

        def now():
            return time.time()  # simlint: disable=DET002
        """)
    assert rules_of(findings) == ["DET001"]


def test_parse_error_is_a_finding(tmp_path):
    findings = run_lint(tmp_path, "def broken(:\n")
    assert rules_of(findings) == ["E001"]


def test_baseline_round_trip(tmp_path):
    findings = run_lint(tmp_path, """\
        import time

        def now():
            return time.time()
        """)
    assert len(findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, str(baseline_path))
    baseline = load_baseline(str(baseline_path))

    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert new == [] and len(grandfathered) == 1 and stale == []

    # After the code is fixed the entry goes stale, not silently absorbed.
    new, grandfathered, stale = apply_baseline([], baseline)
    assert new == [] and grandfathered == [] and len(stale) == 1


# ---------------------------------------------------------------------------
# Fast-path idioms (kernel now-queue, channel fast path, bench timing)
# ---------------------------------------------------------------------------
def test_now_queue_merge_loop_lints_clean(tmp_path):
    # The kernel's two-front merge loop: deque peeks, lazy-deletion
    # skips, and in-place `entry[5] = False` marking must not trip any
    # DET rule -- list comparison of (time, priority, seq) prefixes is
    # deterministic.
    findings = run_lint(tmp_path, """\
        import heapq
        from collections import deque

        def run(heap, nowq):
            while True:
                while heap and not heap[0][5]:
                    heapq.heappop(heap)
                while nowq and not nowq[0][5]:
                    nowq.popleft()
                if nowq and (not heap or nowq[0] < heap[0]):
                    entry = nowq.popleft()
                elif heap:
                    entry = heapq.heappop(heap)
                else:
                    break
                entry[5] = False
                entry[3](*entry[4])
        """)
    assert findings == []


def test_channel_fast_path_lints_clean(tmp_path):
    # Fast-path early returns around the balancer: plain attribute and
    # deque traffic, no findings.
    findings = run_lint(tmp_path, """\
        class Channel:
            def try_put(self, item):
                if self._used + 1 <= self.capacity:
                    self._items.append(item)
                    self._used += 1
                    if self._getters:
                        self._balance()
                    return True
                return False
        """)
    assert findings == []


def test_bench_timing_suppressions_are_honoured(tmp_path):
    # repro.bench.timing is the one module allowed to read the host
    # clock; the same idiom in a fixture must lint clean only with the
    # explicit suppression.
    findings = run_lint(tmp_path, """\
        import time

        def sample(fn):
            start = time.perf_counter()  # simlint: disable=DET001
            fn()
            return time.perf_counter() - start  # simlint: disable=DET001
        """)
    assert findings == []

    findings = run_lint(tmp_path, """\
        import time

        def sample(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start
        """)
    assert rules_of(findings) == ["DET001", "DET001"]


# ---------------------------------------------------------------------------
# The committed tree and the CLI
# ---------------------------------------------------------------------------
def test_repo_tree_is_lint_clean():
    findings = lint_paths([str(REPO / "src")], root=str(REPO))
    assert findings == [], "\n".join(f.render() for f in findings)


def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=str(cwd), env=env, capture_output=True, text=True,
    )


def test_cli_json_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    proc = _run_cli(["--format", "json", str(bad)], cwd=tmp_path)
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert [f["rule"] for f in doc["findings"]] == ["DET001"]


def test_cli_exit_zero_on_repo_tree():
    proc = _run_cli(["src"], cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_rule_catalogue():
    proc = _run_cli(["--rules"], cwd=REPO)
    assert proc.returncode == 0
    for rule in ("DET001", "YLD001", "RES001", "TRC001"):
        assert rule in proc.stdout
