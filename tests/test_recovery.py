"""Mid-query recovery: crashed queries resume instead of restarting.

Drives the ``recovery`` experiment's crash scenarios (each runs a
fault-free reference plus a crashed-and-recovered run and demands
byte-identical rows) and the chaos harness with the RecoveryManager
enabled on both execution backends.
"""

import pytest

from repro.harness.config import SMOKE
from repro.harness.experiments import (
    RECOVERY_SCENARIOS,
    chaos,
    recovery,
)


@pytest.fixture(scope="module")
def scenarios():
    return recovery(SMOKE, fault_seed=1)


def test_covers_every_scenario(scenarios):
    assert set(scenarios) == set(RECOVERY_SCENARIOS)


@pytest.mark.parametrize("scenario", RECOVERY_SCENARIOS)
def test_scenario_recovers_byte_identical(scenarios, scenario):
    payload = scenarios[scenario]
    assert payload["outcome"] == "ok"
    assert payload["byte_identical"] is True
    assert payload["violations"] == []
    assert len(payload["faults_fired"]) >= 1


@pytest.mark.parametrize("scenario", ["scan", "scan-noshare"])
def test_scan_crash_saves_rescanning_with_and_without_osp(
    scenarios, scenario
):
    """The headline acceptance number: a mid-scan crash must resume
    from the durable frontier -- strictly fewer pages rescanned than a
    restart -- whether the scan was OSP-shared or solo."""
    payload = scenarios[scenario]
    assert payload["recoveries"] >= 1
    assert payload["clean_restarts"] == 0
    assert 0 < payload["pages_saved"] < payload["pages_total"]


def test_osp_pair_resumes_at_circular_offset(scenarios):
    """The crashed consumer attached mid-circular-scan; its resume must
    honour its own wrapped page order, not its peer's."""
    payload = scenarios["osp-pair"]
    assert payload["recoveries"] >= 1
    assert payload["pages_saved"] > 0


def test_agg_resumes_from_checkpoint(scenarios):
    payload = scenarios["agg"]
    assert payload["recoveries"] >= 1
    assert payload["pages_saved"] > 0


def test_torn_record_degrades_never_lies(scenarios):
    """A torn tail truncates the durable frontier: recovery may save
    fewer pages, but the rows are still byte-identical."""
    payload = scenarios["torn"]
    assert payload["outcome"] == "ok"
    assert payload["byte_identical"] is True


def test_log_write_error_degrades_cleanly(scenarios):
    payload = scenarios["log-error"]
    assert payload["outcome"] == "ok"
    assert payload["byte_identical"] is True
    # The query still finishes even though lineage recording died.
    assert payload["attempts"] >= 2


@pytest.mark.parametrize("scenario", ["pushed", "iterator"])
def test_other_backends_recover(scenarios, scenario):
    payload = scenarios[scenario]
    assert payload["recoveries"] >= 1
    assert payload["pages_saved"] > 0


def test_lineage_log_pays_for_durability(scenarios):
    """Recovery is not free: the recovered runs must have recorded
    lineage and charged simulated log-device writes."""
    payload = scenarios["scan"]
    assert payload["lineage_records"] > 0
    assert payload["log_blocks"] > 0


# ---------------------------------------------------------------------------
# Chaos with recovery enabled
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["packets", "pushed"])
def test_chaos_with_recovery_holds_invariants(backend):
    result = chaos(fault_seed=3, engine_backend=backend, recovery=True)
    assert result["violations"] == []
    assert result["recovery"] is True
    # Seed 3's plan crashes resumable queries: some recoveries happen
    # and they save real rescanning work.
    assert result["recoveries"] >= 1
    assert result["pages_saved"] > 0


def test_chaos_recovery_survives_log_faults():
    """The recovery leg arms extra log-device faults; a fault plan that
    tears or fails lineage flushes must still never corrupt results."""
    result = chaos(fault_seed=2, engine_backend="packets", recovery=True)
    assert result["violations"] == []
