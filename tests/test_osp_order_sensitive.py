"""Order-sensitive scan sharing: the section 4.3.2 two-pass strategy.

The Figure 9 scenario: two identical merge-join queries over clustered
index scans, arriving at different times.  The merge-join needs its
inputs in key order (spike overlap for the scans), but its *parent* is
order-insensitive, so the OSP coordinator lets the late query piggyback
on the in-progress scan ([P..EOF] in order), then runs a second join
pass over the missed prefix ([0..P)) -- reading the non-shared relation
twice, gated by the worst-case cost check.
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    IndexScan,
    MergeJoin,
)


def mj_plan(agg_func: str = "count"):
    """Figure 9's Q4-like plan: Agg over MergeJoin over ordered IScans.

    The aggregate differs between the two queries (count vs sum), like
    qgen-parameterised Q4 instances: the join subtrees match but the
    whole plans do not, so sharing must happen below the root.
    """
    agg = (
        AggSpec("count", None, "n")
        if agg_func == "count"
        else AggSpec("sum", Col("w"), "sw")
    )
    return Aggregate(
        MergeJoin(
            IndexScan("r", "r_id", ordered=True),
            IndexScan("s", "s_rid", ordered=True),
            "id",
            "rid",
        ),
        [agg],
    )


def expected_count(r_rows, s_rows):
    r_ids = {r[0] for r in r_rows}
    return sum(1 for s in s_rows if s[1] in r_ids)


def expected_sum(r_rows, s_rows):
    r_ids = {r[0] for r in r_rows}
    return sum(s[2] for s in s_rows if s[1] in r_ids)


def run_two(big_db, engine, interarrival):
    host, _sm, _r, _s = big_db
    procs = []

    def client(delay, agg_func):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(mj_plan(agg_func))
        return result

    procs.append(host.sim.spawn(client(0.0, "count")))
    procs.append(host.sim.spawn(client(interarrival, "sum")))
    host.sim.run_until_done(procs)
    return [p.value for p in procs]


def solo_duration():
    """Measured duration of one merge-join query run alone (fresh db).

    Concurrent scans seek on every page, so analytic page-count estimates
    undershoot badly; staggering is expressed against this measurement.
    """
    import tests.conftest as cf
    from repro.hw.host import Host, HostConfig
    from repro.storage.manager import StorageManager

    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=32)
    sm.create_table("r", cf.BIG_R_SCHEMA, clustered_on=["id"])
    sm.load_table("r", cf.make_big_r_rows())
    sm.create_index("r", ["id"], name="r_id", clustered=True)
    sm.create_table("s", cf.BIG_S_SCHEMA, clustered_on=["rid"])
    sm.load_table("s", cf.make_big_s_rows())
    sm.create_index("s", ["rid"], name="s_rid", clustered=True)
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    proc = host.sim.spawn(engine.execute(mj_plan("count")))
    host.sim.run()
    return proc.value.finished_at


def test_merge_join_single_query_correct(big_db):
    _h, sm, r_rows, s_rows = big_db
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    rows = engine.run_query(mj_plan())
    assert rows == [(expected_count(r_rows, s_rows),)]


def test_split_share_produces_correct_counts(big_db):
    """The late query joins via two passes yet counts every match once."""
    host, sm, r_rows, s_rows = big_db
    engine = QPipeEngine(
        sm, QPipeConfig(osp_enabled=True, replay_tuples=64)
    )
    results = run_two(big_db, engine, interarrival=solo_duration() / 2)
    assert results[0].rows == [(expected_count(r_rows, s_rows),)]
    assert results[1].rows[0][0] == pytest.approx(
        expected_sum(r_rows, s_rows)
    )


def test_split_share_is_used(big_db):
    """At mid-scan arrival the split (not a plain attach) kicks in."""
    host, sm, _r, _s = big_db
    engine = QPipeEngine(
        sm,
        QPipeConfig(osp_enabled=True, replay_tuples=64, buffer_tuples=256),
    )
    run_two(big_db, engine, interarrival=solo_duration() / 2)
    assert engine.osp_stats.mj_splits >= 1


def test_split_rejected_when_not_worth_it():
    """When the remaining shared pages are fewer than the pages of the
    non-shared relation, the cost check refuses to split."""
    import tests.conftest as cf
    from repro.hw.host import Host, HostConfig
    from repro.storage.manager import StorageManager

    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=64)
    # r small, s big: re-reading s twice can never pay off.
    r_rows = cf.make_big_r_rows(n=200)
    s_rows = cf.make_big_s_rows(n=4000, r_n=200)
    sm.create_table("r", cf.BIG_R_SCHEMA, clustered_on=["id"])
    sm.load_table("r", r_rows)
    sm.create_index("r", ["id"], name="r_id", clustered=True)
    sm.create_table("s", cf.BIG_S_SCHEMA, clustered_on=["rid"])
    sm.load_table("s", s_rows)
    sm.create_index("s", ["rid"], name="s_rid", clustered=True)
    engine = QPipeEngine(
        sm, QPipeConfig(osp_enabled=True, replay_tuples=16)
    )
    procs = []

    def client(delay, agg_func):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(mj_plan(agg_func))
        return result

    procs.append(host.sim.spawn(client(0.0, "count")))
    procs.append(host.sim.spawn(client(0.9, "sum")))
    host.sim.run_until_done(procs)
    assert procs[0].value.rows == [(expected_count(r_rows, s_rows),)]
    assert procs[1].value.rows[0][0] == pytest.approx(
        expected_sum(r_rows, s_rows)
    )
    assert engine.osp_stats.mj_splits == 0


def test_split_speeds_up_late_arrival(big_db):
    """With the split, the pair finishes sooner than with OSP off."""
    import tests.conftest as cf
    from repro.hw.host import Host, HostConfig
    from repro.storage.manager import StorageManager

    def build():
        host = Host(HostConfig())
        sm = StorageManager(host, buffer_pages=32)
        sm.create_table("r", cf.BIG_R_SCHEMA, clustered_on=["id"])
        sm.load_table("r", cf.make_big_r_rows())
        sm.create_index("r", ["id"], name="r_id", clustered=True)
        sm.create_table("s", cf.BIG_S_SCHEMA, clustered_on=["rid"])
        sm.load_table("s", cf.make_big_s_rows())
        sm.create_index("s", ["rid"], name="s_rid", clustered=True)
        return host, sm

    def makespan(osp):
        host, sm = build()
        engine = QPipeEngine(
            sm, QPipeConfig(osp_enabled=osp, replay_tuples=64)
        )
        procs = []

        def client(delay, agg_func):
            yield host.sim.timeout(delay)
            result = yield from engine.execute(mj_plan(agg_func))
            return result

        stagger = solo_duration() / 2
        procs.append(host.sim.spawn(client(0.0, "count")))
        procs.append(host.sim.spawn(client(stagger, "sum")))
        host.sim.run_until_done(procs)
        return max(p.value.finished_at for p in procs)

    assert makespan(True) < makespan(False)
