"""Wisconsin benchmark validation and the Figure 10 query plan."""

import pytest

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.relational.expressions import Col
from repro.storage.manager import StorageManager
from repro.workloads.wisconsin import (
    WISCONSIN_SCHEMA,
    WisconsinScale,
    generate_wisconsin,
    load_wisconsin,
    three_way_join,
)


@pytest.fixture(scope="module")
def wisconsin():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=128)
    tables = load_wisconsin(sm, WisconsinScale(big_rows=600), seed=5)
    return host, sm, tables


def test_schema_is_200_bytes():
    assert WISCONSIN_SCHEMA.row_width == 200


def test_column_semantics():
    tables = generate_wisconsin(WisconsinScale(big_rows=200), seed=5)
    for name in ("big1", "big2", "small"):
        rows = tables[name]
        u1 = sorted(r[0] for r in rows)
        assert u1 == list(range(len(rows)))  # unique1 is a permutation
        assert [r[1] for r in rows] == list(range(len(rows)))  # unique2 seq
        for r in rows[:50]:
            assert r[6] == r[0] % 100  # onepercent
            assert r[2] == r[0] % 2


def test_small_is_tenth_of_big():
    scale = WisconsinScale(big_rows=500)
    assert scale.small_rows == 50


def test_three_way_join_matches_naive(wisconsin):
    host, sm, tables = wisconsin
    plan = three_way_join(big_range=150)
    reference = IteratorEngine(sm).run_query(plan)
    qpipe_rows = QPipeEngine(sm, QPipeConfig()).run_query(plan)
    assert qpipe_rows == reference

    big1 = {r[0] for r in tables["big1"] if r[0] < 150}
    big2 = {r[0] for r in tables["big2"] if r[0] < 150}
    small = {r[0]: r[1] for r in tables["small"]}
    matched = [u for u in big1 & big2 if u in small]
    assert reference[0][0] == len(matched)
    assert reference[0][1] == sum(small[u] for u in matched)


def test_three_way_join_with_small_filter(wisconsin):
    host, sm, tables = wisconsin
    plan = three_way_join(
        big_range=150, small_predicate=Col("onepercent") == 3
    )
    rows = IteratorEngine(sm).run_query(plan)
    big1 = {r[0] for r in tables["big1"] if r[0] < 150}
    big2 = {r[0] for r in tables["big2"] if r[0] < 150}
    small = {r[0]: r[1] for r in tables["small"] if r[6] == 3}
    matched = [u for u in big1 & big2 if u in small]
    assert rows[0][0] == len(matched)


def test_shared_subtree_signatures_match(wisconsin):
    """The BIG1/BIG2 sort subtrees of two Figure 10 queries are
    signature-identical while the SMALL sides differ."""
    host, sm, _tables = wisconsin
    plan_a = three_way_join(150, small_predicate=Col("onepercent") == 1)
    plan_b = three_way_join(150, small_predicate=Col("onepercent") == 2)
    catalog = sm.catalog
    # children[0] of the final merge-join is the big1xbig2 join subtree.
    big_join_a = plan_a.children[0].children[0]
    big_join_b = plan_b.children[0].children[0]
    assert big_join_a.signature(catalog) == big_join_b.signature(catalog)
    small_a = plan_a.children[0].children[1]
    small_b = plan_b.children[0].children[1]
    assert small_a.signature(catalog) != small_b.signature(catalog)
