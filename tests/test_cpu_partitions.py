"""Two-level scheduling: per-micro-engine CPU partitions (section 4.2).

"At the higher level, the scheduler chooses which micro-engine runs next
and on which CPU(s)" -- with partitions configured, each micro-engine's
CPU bursts queue on its own cores instead of the shared pool.
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, Sort, TableScan
from repro.storage.manager import StorageManager

import tests.conftest as cf


def build_engine(cpu_partitions=None, cpu_per_tuple=1e-5):
    host = Host(HostConfig(cpu_per_tuple=cpu_per_tuple))
    sm = StorageManager(host, buffer_pages=64)
    sm.create_table("r", cf.R_SCHEMA)
    sm.load_table("r", cf.make_r_rows(n=300))
    engine = QPipeEngine(
        sm, QPipeConfig(cpu_partitions=cpu_partitions, osp_enabled=False)
    )
    return host, sm, engine


def test_partitions_created_per_config():
    host, sm, engine = build_engine({"sort": 2, "agg": 1})
    assert engine.engines["sort"].cpu is not None
    assert engine.engines["sort"].cpu.cores == 2
    assert engine.engines["agg"].cpu.cores == 1
    assert engine.engines["fscan"].cpu is None  # unlisted: shared pool


def test_partitioned_engine_charges_its_own_cpu():
    host, sm, engine = build_engine({"agg": 1}, cpu_per_tuple=1e-3)
    plan = Aggregate(TableScan("r"), [AggSpec("sum", Col("val"), "s")])
    rows = engine.run_query(plan)
    assert rows[0][0] == pytest.approx(
        sum(r[2] for r in sm.catalog.table("r").heap.all_rows())
    )
    agg_cpu = engine.engines["agg"].cpu
    assert agg_cpu.total_burst_time > 0
    # The shared pool carried the scan's bursts, not the aggregate's.
    assert host.cpu.total_burst_time > 0


def test_results_identical_with_and_without_partitions():
    plan = Sort(
        TableScan("r", predicate=Col("grp") <= 3), keys=["val"]
    )
    _h1, _sm1, shared = build_engine(None)
    _h2, _sm2, partitioned = build_engine(
        {"sort": 1, "fscan": 2, "agg": 1}
    )
    assert shared.run_query(plan) == partitioned.run_query(plan)


def test_single_core_partition_serialises_within_engine():
    """Two sorts on a 1-core sort partition cannot burn CPU in parallel."""
    host, sm, engine = build_engine({"sort": 1}, cpu_per_tuple=2e-3)
    plan_a = Sort(TableScan("r"), keys=["val"])
    plan_b = Sort(TableScan("r"), keys=["id"])
    procs = [
        host.sim.spawn(engine.execute(plan_a)),
        host.sim.spawn(engine.execute(plan_b)),
    ]
    host.sim.run_until_done(procs)
    serialised = max(p.value.finished_at for p in procs)

    host2, sm2, engine2 = build_engine({"sort": 2}, cpu_per_tuple=2e-3)
    procs2 = [
        host2.sim.spawn(engine2.execute(plan_a)),
        host2.sim.spawn(engine2.execute(plan_b)),
    ]
    host2.sim.run_until_done(procs2)
    parallel = max(p.value.finished_at for p in procs2)
    assert parallel < serialised
