"""Tests for the tracing subsystem: Tracer, exporters, QueryTrace."""

import json

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    QueryTrace,
    Tracer,
    chrome_trace,
    jsonl_dumps,
    query_ids,
    read_jsonl,
    write_jsonl,
)
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, Filter, Sort, TableScan
from repro.sim import Simulator
from repro.storage.manager import StorageManager

import tests.conftest as cf


def build_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=32)
    sm.create_table("r", cf.BIG_R_SCHEMA)
    sm.load_table("r", cf.make_big_r_rows(n=600))
    return host, sm


def traced_run(plan=None):
    host, sm = build_db()
    tracer = Tracer(host.sim)
    engine = QPipeEngine(sm)
    if plan is None:
        plan = Sort(
            Filter(TableScan("r"), Col("grp") <= 4),
            keys=["val"],
        )
    rows = engine.run_query(plan)
    return tracer, rows


def test_simulator_defaults_to_null_tracer():
    sim = Simulator()
    assert sim.tracer is NULL_TRACER
    assert not sim.tracer.enabled
    # Every hook is a no-op returning None.
    assert NullTracer().osp("anything", field=1) is None
    assert NullTracer().pool("hit", 1, 2) is None
    assert NullTracer().proc("spawn", "p") is None


def test_tracer_installs_itself_and_records():
    sim = Simulator()
    tracer = Tracer(sim)
    assert sim.tracer is tracer
    assert tracer.enabled
    tracer.pool("hit", 3, 9)
    assert tracer.events == [
        {"ts": 0.0, "type": "pool.hit", "file": 3, "block": 9}
    ]


def test_traced_query_has_full_packet_lifecycle():
    tracer, rows = traced_run()
    assert rows  # the query returned data
    types = {e["type"] for e in tracer.events}
    assert {"packet.create", "packet.enqueue", "packet.dispatch",
            "packet.complete"} <= types
    assert "pool.miss" in types
    assert "proc.spawn" in types
    # Deterministic packet ids, never Python object ids.
    pids = {e["packet"] for e in tracer.events if "packet" in e}
    assert pids and all(p.startswith("q") and "p" in p for p in pids)
    # Virtual timestamps are monotone.
    stamps = [e["ts"] for e in tracer.events]
    assert stamps == sorted(stamps)


def test_jsonl_round_trip(tmp_path):
    tracer, _ = traced_run()
    path = tmp_path / "trace.jsonl"
    write_jsonl(tracer.events, path)
    assert read_jsonl(path) == tracer.events
    # Deterministic rendering: keys sorted, one object per line.
    blob = jsonl_dumps(tracer.events)
    lines = blob.splitlines()
    assert len(lines) == len(tracer.events)
    first = json.loads(lines[0])
    assert list(first) == sorted(first)


def test_chrome_trace_threads_and_slices():
    tracer, _ = traced_run()
    doc = chrome_trace(tracer.events, process_name="test")
    events = doc["traceEvents"]
    thread_names = {
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    }
    # One thread per micro-engine touched, plus the bufferpool thread.
    assert {"fscan", "filter", "sort", "bufferpool"} <= thread_names
    completes = [
        e for e in tracer.events if e["type"] == "packet.complete"
    ]
    slices = [e for e in events if e.get("ph") == "X"]
    assert len(slices) == len(completes)
    assert all(s["dur"] >= 0 for s in slices)


def test_query_trace_analysis():
    tracer, _ = traced_run()
    qids = query_ids(tracer.events)
    assert len(qids) == 1
    qt = QueryTrace(tracer.events, qids[0])
    # Three plan nodes -> three packets: scan, filter, sort.
    assert len(qt.packets) == 3
    root = qt.root
    assert root is not None and root.op == "sort"
    path = qt.critical_path()
    assert path[0] is root and len(path) >= 2
    assert qt.response_time() > 0
    breakdown = qt.wait_breakdown()
    assert {"fscan", "filter", "sort"} <= set(breakdown)
    assert sum(slot["service"] for slot in breakdown.values()) > 0
    assert qt.shared_packets() == []


def test_disabled_tracing_records_nothing():
    host, sm = build_db()
    engine = QPipeEngine(sm)
    engine.run_query(
        Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
    )
    assert host.sim.tracer is NULL_TRACER
