"""Tests for the InvariantChecker: green on real traces, red on corrupt."""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.obs import InvariantChecker, InvariantViolation, Tracer
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, Sort, TableScan
from repro.storage.manager import StorageManager

import tests.conftest as cf


def build_db():
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=32)
    sm.create_table("r", cf.BIG_R_SCHEMA)
    sm.load_table("r", cf.make_big_r_rows(n=600))
    return host, sm


def shared_workload_trace():
    """Two overlapping identical queries with OSP on: the trace contains
    attach events alongside the full packet lifecycles."""
    host, sm = build_db()
    tracer = Tracer(host.sim)
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))

    def plan():
        return Aggregate(
            Sort(TableScan("r", predicate=Col("grp") <= 5), keys=["val"]),
            [AggSpec("count", None, "n")],
        )

    procs = [
        host.sim.spawn(engine.execute(plan()), name=f"q{i}") for i in range(3)
    ]
    host.sim.run_until_done(procs)
    return tracer


def test_checker_green_on_real_shared_trace():
    tracer = shared_workload_trace()
    attaches = [
        e for e in tracer.events if e["type"] == "packet.attach"
    ]
    assert attaches, "workload must actually exercise sharing"
    checker = InvariantChecker(tracer.events)
    checker.assert_ok()
    assert checker.ok


# ---------------------------------------------------------------------------
# Deliberate corruptions: each must be flagged.
# ---------------------------------------------------------------------------
def _valid_packet_events():
    return [
        {"ts": 0.0, "type": "packet.create", "packet": "q1p0",
         "query": 1, "engine": "agg", "op": "agg", "parent": None},
        {"ts": 0.1, "type": "packet.enqueue", "packet": "q1p0",
         "query": 1, "engine": "agg", "op": "agg"},
        {"ts": 0.2, "type": "packet.dispatch", "packet": "q1p0",
         "query": 1, "engine": "agg", "op": "agg"},
        {"ts": 1.0, "type": "packet.complete", "packet": "q1p0",
         "query": 1, "engine": "agg", "op": "agg", "satellite": False},
    ]


def test_valid_synthetic_trace_passes():
    assert InvariantChecker(_valid_packet_events()).check() == []


def test_clock_regression_flagged():
    events = _valid_packet_events()
    events[2]["ts"] = 0.05  # before the enqueue at 0.1
    violations = InvariantChecker(events).check()
    assert any("clock went backwards" in v for v in violations)


def test_double_complete_flagged():
    events = _valid_packet_events()
    events.append(dict(events[-1], ts=1.5))
    violations = InvariantChecker(events).check()
    assert any("completed twice" in v for v in violations)


def test_complete_without_dispatch_or_attach_flagged():
    events = _valid_packet_events()
    del events[2]  # drop the dispatch
    violations = InvariantChecker(events).check()
    assert any("without dispatch or attach" in v for v in violations)


def test_dispatch_without_enqueue_flagged():
    events = _valid_packet_events()
    del events[1]  # drop the enqueue
    violations = InvariantChecker(events).check()
    assert any("dispatched without enqueue" in v for v in violations)


def test_generic_attach_outside_wop_flagged():
    events = _valid_packet_events()[:1] + [
        {"ts": 0.5, "type": "packet.attach", "packet": "q1p0",
         "query": 1, "engine": "agg", "op": "agg", "host": "q0p0",
         "mechanism": "generic", "host_tuples": 500, "can_replay": False},
    ]
    violations = InvariantChecker(events).check()
    assert any("outside the WoP" in v for v in violations)


def test_mj_split_against_cost_model_flagged():
    events = _valid_packet_events()[:1] + [
        {"ts": 0.5, "type": "packet.attach", "packet": "q1p0",
         "query": 1, "engine": "iscan", "op": "iscan", "host": "q0p0",
         "mechanism": "mj-split", "saved": 3, "extra": 10},
    ]
    violations = InvariantChecker(events).check()
    assert any("against the cost model" in v for v in violations)


def test_unknown_attach_mechanism_flagged():
    events = _valid_packet_events()[:1] + [
        {"ts": 0.5, "type": "packet.attach", "packet": "q1p0",
         "query": 1, "engine": "agg", "op": "agg", "host": "q0p0",
         "mechanism": "telepathy"},
    ]
    violations = InvariantChecker(events).check()
    assert any("unknown mechanism" in v for v in violations)


def test_unbalanced_pins_flagged():
    events = [
        {"ts": 0.0, "type": "pool.pin", "file": 1, "block": 2},
        {"ts": 0.1, "type": "pool.pin", "file": 1, "block": 2},
        {"ts": 0.2, "type": "pool.unpin", "file": 1, "block": 2},
    ]
    violations = InvariantChecker(events).check()
    assert any("still pinned at end of trace" in v for v in violations)


def test_evicting_pinned_page_flagged():
    events = [
        {"ts": 0.0, "type": "pool.pin", "file": 1, "block": 2},
        {"ts": 0.1, "type": "pool.evict", "file": 1, "block": 2},
        {"ts": 0.2, "type": "pool.unpin", "file": 1, "block": 2},
    ]
    violations = InvariantChecker(events).check()
    assert any("pinned page (1, 2) was evicted" in v for v in violations)


def test_corrupting_a_real_trace_is_detected():
    """The acceptance-criterion case: a genuine engine trace, minimally
    corrupted, must turn the checker red."""
    tracer = shared_workload_trace()
    events = [dict(e) for e in tracer.events]
    completes = [
        i for i, e in enumerate(events) if e["type"] == "packet.complete"
    ]
    events.append(dict(events[completes[0]], ts=events[-1]["ts"] + 1))
    checker = InvariantChecker(events)
    assert not checker.ok
    with pytest.raises(InvariantViolation) as err:
        checker.assert_ok()
    assert err.value.violations


def test_assert_ok_raises_with_violation_list():
    events = _valid_packet_events()
    events.append(dict(events[-1]))
    with pytest.raises(InvariantViolation) as err:
        InvariantChecker(events).assert_ok()
    assert any("completed twice" in v for v in err.value.violations)
    assert "invariant violation" in str(err.value)
