"""The scaleout figure: verdict lines, scaling shape, pool invariance."""

from dataclasses import replace

from repro.harness import FIGURES, SMOKE
from repro.harness.experiments import (
    scaleout,
    scaleout_cells,
    substitute_engine,
)
from repro.parallel import PoolRunner
from repro.parallel.cells import run_cells_serial

TINY = replace(SMOKE, name="tiny", wisconsin_big_rows=900)


def test_scaleout_verdicts_pass_through_four_hosts():
    series, verdicts = scaleout(SMOKE, host_counts=(1, 2, 4))
    assert (
        "scaleout byte-identity (scan): PASS -- per-query results "
        "identical across host counts"
    ) in verdicts
    assert (
        "scaleout byte-identity (join): PASS -- per-query results "
        "identical across host counts"
    ) in verdicts
    speedup_lines = [v for v in verdicts if "4-host speedup" in v]
    assert len(speedup_lines) == 1 and speedup_lines[0].endswith("PASS")
    # More hosts, shorter makespan; more hosts, more exchange traffic.
    for workload in ("scan", "join"):
        out = series[workload]
        assert out.xs == [1, 2, 4]
        makespans = out.curve("makespan")
        assert makespans == sorted(makespans, reverse=True)
        net_mb = out.curve("net MB")
        assert net_mb == sorted(net_mb)
        assert net_mb[0] == 0.0  # 1 host: loopback only, no wire bytes


def test_one_host_cell_runs_everything_locally():
    (spec,) = scaleout_cells(TINY, host_counts=(1,), workloads=("scan",))
    payload = run_cells_serial([spec])[spec]
    assert set(payload["strategies"]) == {"local"}
    assert payload["net_bytes"] == 0 and payload["net_msgs"] == 0


def test_scaleout_cells_are_not_engine_substituted():
    """Scale-out makespans are engine-dependent by design, so the
    --engine flag must leave the figure's cells untouched."""
    specs = scaleout_cells(TINY, host_counts=(1, 2))
    assert substitute_engine(specs, "pushed") == specs


def test_rendered_output_identical_across_jobs():
    """The ISSUE differential: --jobs 1 and --jobs 2 produce the same
    bytes (real spawn-context process pool, not a fake)."""
    figure = FIGURES["scaleout"]
    specs = scaleout_cells(TINY, host_counts=(1, 2), workloads=("scan",))
    outputs = []
    for jobs in (1, 2):
        with PoolRunner(jobs=jobs) as runner:
            results = runner.run(specs)
        payloads = {s: r.payload for s, r in results.items()}
        outputs.append(figure.render(specs, payloads))
    assert outputs[0] == outputs[1]
    assert "byte-identity (scan): PASS" in outputs[0]
