"""Unit tests for the per-function CFG (:mod:`repro.lint.cfg`).

The fixtures pin the exception model the escape pass depends on: unwind
edges exist only at yield points / raise / assert, ``finally`` bodies
are duplicated per continuation, and a ``return`` inside a ``finally``
overrides the pending unwind -- exactly CPython's semantics restricted
to the simulator's interrupt points.
"""

import ast
import textwrap

from repro.lint.cfg import (
    EXCEPT_EXIT,
    NORMAL_EXIT,
    build_cfg,
    statement_index,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[-1]
    return func, build_cfg(func)


def stmts_matching(func, needle):
    """Innermost statements whose AST dump mentions *needle*."""
    hits = [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.stmt)
        and needle in ast.dump(node)
        and not any(
            needle in ast.dump(child)
            for child in ast.walk(node)
            if isinstance(child, ast.stmt) and child is not node
        )
    ]
    assert hits, f"no statement matching {needle!r}"
    return hits


def stmt_matching(func, needle):
    hits = stmts_matching(func, needle)
    assert len(hits) == 1, f"ambiguous needle {needle!r}"
    return hits[0]


def exits_from(cfg, func, start_needle, release_needle=None):
    """Exit kinds reachable from the *normal* successors of the
    statement matching *start_needle*, killing paths at any statement
    matching *release_needle* (the escape pass's query shape)."""
    start_stmt = stmts_matching(func, start_needle)[0]
    starts = []
    for occ in cfg.nodes_for(start_stmt):
        starts.extend(occ.succ)
    blockers = (
        set(map(id, stmts_matching(func, release_needle)))
        if release_needle else set()
    )
    return cfg.reachable_exits(
        starts, lambda node: id(node.stmt) in blockers
    )


# ---------------------------------------------------------------------------
# Exception edges exist only at simulator unwind points
# ---------------------------------------------------------------------------
def test_plain_statements_do_not_unwind():
    func, cfg = cfg_of("""\
        def f(sm):
            x = sm.acquire()
            x.label = "held"
        """)
    for stmt_node in cfg.nodes:
        if stmt_node.stmt is not None:
            assert stmt_node.exc_succ == []


def test_yield_points_unwind():
    func, cfg = cfg_of("""\
        def f(sm):
            x = sm.acquire()
            yield x.wait()
        """)
    yield_stmt = stmt_matching(func, "wait")
    (node,) = cfg.nodes_for(yield_stmt)
    assert node.exc_succ == [cfg.except_exit]


def test_raise_and_assert_unwind():
    func, cfg = cfg_of("""\
        def f(flag):
            assert flag
            raise ValueError(flag)
        """)
    for needle in ("Assert", "Raise"):
        stmt = stmt_matching(func, needle)
        (node,) = cfg.nodes_for(stmt)
        assert cfg.except_exit in node.exc_succ


def test_extra_raisers_opt_in():
    source = textwrap.dedent("""\
        def f(helper):
            helper.explode()
        """)
    func = ast.parse(source).body[0]
    silent = build_cfg(func)
    noisy = build_cfg(func, extra_raisers=lambda call: True)
    call_stmt = func.body[0]
    assert silent.nodes_for(call_stmt)[0].exc_succ == []
    assert noisy.nodes_for(call_stmt)[0].exc_succ == [noisy.except_exit]


# ---------------------------------------------------------------------------
# try/finally duplication and kill-predicate reachability
# ---------------------------------------------------------------------------
def test_finally_release_blocks_both_exits():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            try:
                yield 1
            finally:
                lock.release()
        """)
    assert exits_from(cfg, func, "acquire", "release") == set()


def test_finally_bodies_are_duplicated():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            try:
                yield 1
            finally:
                lock.release()
        """)
    release = stmt_matching(func, "release")
    # One copy on the normal fall-through, one on the unwind path.
    assert len(cfg.nodes_for(release)) >= 2


def test_release_outside_finally_leaks_exception_path():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            yield 1
            lock.release()
        """)
    assert exits_from(cfg, func, "acquire", "release") == {EXCEPT_EXIT}


def test_unwind_between_acquire_and_try_leaks():
    func, cfg = cfg_of("""\
        def f(lock, sim):
            yield lock.acquire()
            yield sim.timeout(1)
            try:
                yield 1
            finally:
                lock.release()
        """)
    # The timeout yield can unwind before the try is entered.
    assert exits_from(cfg, func, "acquire", "release") == {EXCEPT_EXIT}


def test_typed_handler_still_unwinds_unmatched_exceptions():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            try:
                yield 1
            except ValueError:
                lock.release()
                raise
            lock.release()
        """)
    # A non-ValueError unwind bypasses the handler and both releases.
    assert EXCEPT_EXIT in exits_from(cfg, func, "acquire", "release")


def test_bare_except_with_release_covers_everything():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            try:
                yield 1
            except Exception:
                lock.release()
                raise
            lock.release()
        """)
    assert exits_from(cfg, func, "acquire", "release") == set()


def test_return_in_finally_overrides_unwind():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            try:
                yield 1
            finally:
                return 0
        """)
    # The pending exception is swallowed by the return: only the normal
    # exit is reachable past the acquire.
    assert exits_from(cfg, func, "acquire") == {NORMAL_EXIT}


def test_return_routes_through_finally():
    func, cfg = cfg_of("""\
        def f(lock, flag):
            yield lock.acquire()
            try:
                if flag:
                    return 1
                yield 1
            finally:
                lock.release()
            return 2
        """)
    assert exits_from(cfg, func, "acquire", "release") == set()


def test_break_routes_through_finally():
    func, cfg = cfg_of("""\
        def f(lock, items):
            yield lock.acquire()
            for item in items:
                try:
                    if item:
                        break
                    yield item
                finally:
                    lock.release()
            yield 1
        """)
    # Leaving the loop via break runs the duplicated finally first, so
    # every path from the break is killed at the release.
    assert exits_from(cfg, func, "Break", "release") == set()


def test_with_body_unwinds_through_context():
    func, cfg = cfg_of("""\
        def f(lock):
            with lock.guard():
                yield 1
        """)
    body_stmt = stmt_matching(func, "Yield")
    (node,) = cfg.nodes_for(body_stmt)
    assert cfg.except_exit in node.exc_succ


def test_while_loop_zero_iterations_reach_exit():
    func, cfg = cfg_of("""\
        def f(lock, cond):
            yield lock.acquire()
            while cond:
                yield 1
            lock.release()
        """)
    # Normal exit only via the release; exception via the loop body.
    assert exits_from(cfg, func, "acquire", "release") == {EXCEPT_EXIT}


def test_statement_index_covers_all_statement_nodes():
    func, cfg = cfg_of("""\
        def f(lock):
            yield lock.acquire()
            try:
                yield 1
            finally:
                lock.release()
        """)
    index = statement_index(cfg)
    stmt_nodes = [n for n in cfg.nodes if n.stmt is not None]
    assert set(index) == {n.id for n in stmt_nodes}


def test_unreachable_code_after_raise_is_dropped():
    func, cfg = cfg_of("""\
        def f():
            raise ValueError()
            x = 1
        """)
    dead = stmt_matching(func, "Assign")
    assert cfg.nodes_for(dead) == []
