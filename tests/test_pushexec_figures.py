"""Byte-identical figures on the push backend.

The ``--engine pushed`` contract: substituting the push backend into a
figure's engine-invariant cells must not change a byte of the output.
These tests pin one fig8 cell and one fig12 cell to *committed* payload
hashes and check that the packet machinery and the push backend --
serially and on a two-worker process pool -- all reproduce them.

The hashes are part of the repository's recorded results: if a change
legitimately moves a figure, recompute them with the snippet in each
test's failure message.
"""

import hashlib
import json

from repro.harness.config import SMOKE
from repro.harness.experiments import (
    fig8_cells,
    fig12_cells,
    force_engine,
    substitute_engine,
)
from repro.parallel import PoolRunner

#: sha256 of the canonical-JSON payload of one committed cell each.
FIG8_CELL_SHA = (
    "2abaca4911e68fa9bfbf3482ee797fd5b9045b841fdff7253557c5fe15de6477"
)
FIG12_CELL_SHA = (
    "24c5b18b98306ec1d61f7c33a24e35d1ac9ff000048343eeca654153b9043d09"
)


def _sha(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _fig8_spec():
    return [
        s
        for s in fig8_cells(SMOKE)
        if s.coord["count"] == 2
        and s.coord["system"] == "baseline"
        and s.coord["gap"] == 20
    ][0]


def _fig12_spec():
    return [
        s
        for s in fig12_cells(SMOKE)
        if s.coord["system"] == "dbmsx" and s.coord["count"] == 2
    ][0]


def _run(spec, jobs):
    with PoolRunner(jobs=jobs) as runner:
        return runner.run([spec])[spec].payload


def _check_cell(spec, committed_sha):
    pushed = substitute_engine([spec], "pushed")[0]
    assert pushed is not spec and dict(pushed.coords)["engine"] == "pushed"
    for candidate in (spec, pushed):
        for jobs in (1, 2):
            got = _sha(_run(candidate, jobs))
            assert got == committed_sha, (
                f"{candidate.figure} cell hash {got} != committed "
                f"{committed_sha} (coords={dict(candidate.coords)}, "
                f"jobs={jobs}); if the figure legitimately moved, "
                f"recompute with _sha(run_cells_serial([spec])[spec])"
            )


def test_fig8_cell_hash_matches_committed_output():
    _check_cell(_fig8_spec(), FIG8_CELL_SHA)


def test_fig12_cell_hash_matches_committed_output():
    _check_cell(_fig12_spec(), FIG12_CELL_SHA)


def test_substitute_engine_rewrites_only_invariant_slots():
    """OSP cells must stay on the packet engine -- sharing lives there --
    while dbms-x / baseline-fig8 cells may move to the push backend."""
    rewritten = substitute_engine(fig8_cells(SMOKE), "pushed")
    for spec in rewritten:
        c = dict(spec.coords)
        if c["system"] == "qpipe":
            assert "engine" not in c
        else:
            assert c["engine"] == "pushed"
    rewritten = substitute_engine(fig12_cells(SMOKE), "pushed")
    for spec in rewritten:
        c = dict(spec.coords)
        assert ("engine" in c) == (c["system"] == "dbmsx")
    # backend "packets" is the identity.
    originals = fig12_cells(SMOKE)
    assert substitute_engine(originals, "packets") == originals


def test_force_engine_rewrites_every_engine_aware_slot():
    rewritten = force_engine(fig12_cells(SMOKE), "pushed")
    assert all(dict(s.coords)["engine"] == "pushed" for s in rewritten)


def test_engine_coordinate_changes_the_cache_key():
    """Packet- and push-backed runs of the same grid point must never
    collide in the content-addressed cell cache."""
    spec = _fig8_spec()
    pushed = substitute_engine([spec], "pushed")[0]
    assert spec.slug() != pushed.slug()
