"""Unit tests for pages, slots, RIDs, and heap files."""

import pytest

from repro.storage.file import BlockStore, HeapFile
from repro.storage.page import PAGE_SIZE, Page, RID, rows_per_page


def test_rows_per_page_geometry():
    assert rows_per_page(200) == PAGE_SIZE // 200
    assert rows_per_page(PAGE_SIZE + 1) == 1  # at least one row per page


def test_rows_per_page_rejects_bad_width():
    with pytest.raises(ValueError):
        rows_per_page(0)


def test_page_insert_and_get():
    page = Page(capacity=3)
    assert page.insert((1, "a")) == 0
    assert page.insert((2, "b")) == 1
    assert page.get(0) == (1, "a")
    assert page.num_live == 2
    assert not page.full


def test_page_full_rejects_insert():
    page = Page(capacity=1)
    page.insert((1,))
    assert page.full
    with pytest.raises(ValueError):
        page.insert((2,))


def test_page_delete_leaves_tombstone():
    page = Page(capacity=3)
    page.insert((1,))
    page.insert((2,))
    page.delete(0)
    assert page.get(0) is None
    assert page.num_slots == 2  # slot survives as a tombstone
    assert page.rows() == [(2,)]
    assert list(page.items()) == [(1, (2,))]


def test_page_update_rejects_tombstone():
    page = Page(capacity=2)
    page.insert((1,))
    page.delete(0)
    with pytest.raises(ValueError):
        page.update(0, (9,))


def test_page_slot_bounds_checked():
    page = Page(capacity=2)
    with pytest.raises(IndexError):
        page.get(0)


def test_rid_orders_by_page_then_slot():
    rids = [RID(2, 0), RID(1, 5), RID(1, 2)]
    assert sorted(rids) == [RID(1, 2), RID(1, 5), RID(2, 0)]


def test_heapfile_append_creates_pages():
    store = BlockStore()
    heap = HeapFile(store, "t", rows_per_page=2)
    rids = [heap.append_row((i,)) for i in range(5)]
    assert heap.num_pages == 3
    assert heap.num_rows == 5
    assert rids[0] == RID(0, 0)
    assert rids[2] == RID(1, 0)
    assert heap.fetch(rids[4]) == (4,)


def test_heapfile_all_rows_in_file_order():
    store = BlockStore()
    heap = HeapFile(store, "t", rows_per_page=3)
    heap.bulk_load([(i,) for i in range(10)])
    assert heap.all_rows() == [(i,) for i in range(10)]
    assert [rid for rid, _row in heap.rids_and_rows()] == sorted(
        rid for rid, _row in heap.rids_and_rows()
    )


def test_heapfile_fetch_tombstone_raises():
    store = BlockStore()
    heap = HeapFile(store, "t", rows_per_page=4)
    rid = heap.append_row((1,))
    heap.page(rid.block_no).delete(rid.slot)
    with pytest.raises(KeyError):
        heap.fetch(rid)


def test_blockstore_file_lifecycle():
    store = BlockStore()
    fid = store.create_file("x")
    assert store.file_name(fid) == "x"
    b0 = store.append_block(fid, "payload")
    assert store.read_block(fid, b0) == "payload"
    store.write_block(fid, b0, "changed")
    assert store.read_block(fid, b0) == "changed"
    store.drop_file(fid)
    with pytest.raises(KeyError):
        store.read_block(fid, 0)


def test_blockstore_block_bounds():
    store = BlockStore()
    fid = store.create_file("x")
    with pytest.raises(IndexError):
        store.read_block(fid, 0)
