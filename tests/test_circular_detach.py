"""Detach-on-stall for circular scans (section 3.3).

"If one file scan blocks trying to provide more tuples than its parent
node can consume, it will need to detach from the rest of the scans."
A stalled consumer must not hold the shared scanner hostage; once cut
loose it completes via a private catch-up scan and still sees every row
exactly once.
"""

import pytest

from repro.engine.buffers import TupleBuffer
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, TableScan


def test_stalled_consumer_is_detached_and_completes(big_db):
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(
        sm,
        QPipeConfig(
            osp_enabled=True,
            buffer_tuples=64,  # tiny buffer: a paused reader stalls fast
            scan_detach_patience=2.0,
        ),
    )
    sim = host.sim

    def normal_client():
        result = yield from engine.execute(
            Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
        )
        return result

    def stalling_client():
        """Reads its scan directly and pauses mid-stream."""
        from repro.engine.packets import QueryContext

        query = QueryContext(
            query_id=777, plan=TableScan("r"), sm=sm, host_machine=host
        )
        engine.active_queries += 1
        root = engine.dispatcher.dispatch(query)
        rows = []
        got_batches = 0
        while True:
            batch = yield from root.get()
            if batch is None:
                break
            rows.extend(batch)
            got_batches += 1
            if got_batches == 3:
                yield sim.timeout(60.0)  # stall far beyond the patience
        engine.active_queries -= 1
        return rows

    fast = sim.spawn(normal_client())
    slow = sim.spawn(stalling_client())
    sim.run_until_done([fast, slow])

    # The stalled consumer was cut loose...
    assert engine.osp_stats.scan_detaches == 1
    # ...the well-behaved query was not dragged down to the stall...
    assert fast.value.finished_at < 30.0
    # ...and the detached one still received every row exactly once.
    assert sorted(slow.value) == sorted(r_rows)
    assert len(slow.value) == len(r_rows)


def test_fast_consumers_never_detached(big_db):
    host, sm, r_rows, _s = big_db
    engine = QPipeEngine(
        sm, QPipeConfig(osp_enabled=True, scan_detach_patience=1.0)
    )
    procs = [
        host.sim.spawn(
            engine.execute(
                Aggregate(
                    TableScan("r", predicate=Col("grp") == g),
                    [AggSpec("count", None, "n")],
                )
            )
        )
        for g in range(3)
    ]
    host.sim.run_until_done(procs)
    assert engine.osp_stats.scan_detaches == 0
    for g, proc in enumerate(procs):
        assert proc.value.rows == [(sum(1 for r in r_rows if r[1] == g),)]
