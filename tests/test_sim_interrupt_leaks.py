"""Regression tests: interrupting a waiter must not leak grants or items.

A process interrupted while suspended on a wait queue leaves behind an
abandoned entry.  Granting that entry would leak a resource unit (the
bug once froze the disk at 100% utilisation forever), deliver an item to
nobody, or grant a lock to a ghost.
"""

from repro.sim import Channel, Resource, Semaphore, Simulator
from repro.storage.locks import LockManager, LockMode


def test_interrupted_resource_waiter_does_not_leak_unit():
    sim = Simulator()
    disk = Resource(sim, capacity=1, name="disk")
    log = []

    def holder():
        grant = yield disk.request()
        yield sim.timeout(10)
        disk.release(grant)

    def victim():
        yield disk.request()  # queued behind holder; killed before grant
        log.append("victim ran")  # must never happen

    def killer(proc):
        yield sim.timeout(5)
        proc.interrupt("gone")

    def late_user():
        yield sim.timeout(20)
        grant = yield disk.request()
        log.append(("late got disk", sim.now))
        disk.release(grant)

    sim.spawn(holder())
    v = sim.spawn(victim())
    sim.spawn(killer(v))
    late = sim.spawn(late_user())
    sim.run_until_done([late])
    # The unit released at t=10 must not be granted to the dead victim;
    # the late user gets it immediately at t=20.
    assert log == [("late got disk", 20.0)]
    assert disk.in_use == 0


def test_interrupted_channel_putter_withdraws_item():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    got = []

    def producer():
        yield ch.put("a")
        yield ch.put("b")  # blocks; killed while waiting

    def killer(proc):
        yield sim.timeout(2)
        proc.interrupt()

    def consumer():
        yield sim.timeout(5)
        got.append((yield ch.get()))
        event = ch.get()
        yield sim.timeout(5)
        # "b" was withdrawn with its dead producer: nothing else arrives.
        assert not event.triggered

    p = sim.spawn(producer())
    sim.spawn(killer(p))
    c = sim.spawn(consumer())
    sim.run(until=50)
    assert got == ["a"]


def test_interrupted_channel_getter_does_not_swallow_item():
    sim = Simulator()
    ch = Channel(sim, capacity=4)
    got = []

    def victim():
        yield ch.get()  # blocks on empty channel; killed while waiting
        got.append("victim")  # must never happen

    def killer(proc):
        yield sim.timeout(1)
        proc.interrupt()

    def producer():
        yield sim.timeout(5)
        yield ch.put("x")

    def consumer():
        yield sim.timeout(6)
        got.append((yield ch.get()))

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    sim.spawn(producer())
    c = sim.spawn(consumer())
    sim.run_until_done([c])
    assert got == ["x"]


def test_interrupted_semaphore_waiter_skipped():
    sim = Simulator()
    sem = Semaphore(sim, value=1)
    log = []

    def holder():
        yield sem.acquire()
        yield sim.timeout(10)
        sem.release()

    def victim():
        yield sem.acquire()
        log.append("victim")

    def killer(proc):
        yield sim.timeout(2)
        proc.interrupt()

    def late():
        yield sim.timeout(15)
        yield sem.acquire()
        log.append(("late", sim.now))

    sim.spawn(holder())
    v = sim.spawn(victim())
    sim.spawn(killer(v))
    p = sim.spawn(late())
    sim.run_until_done([p])
    assert log == [("late", 15.0)]


def test_interrupted_lock_waiter_skipped():
    sim = Simulator()
    lm = LockManager(sim)
    log = []

    def writer():
        yield lm.acquire("w", "t", LockMode.EXCLUSIVE)
        yield sim.timeout(10)
        lm.release("w", "t")

    def victim():
        yield lm.acquire("v", "t", LockMode.EXCLUSIVE)
        log.append("victim")

    def killer(proc):
        yield sim.timeout(2)
        proc.interrupt()

    def reader():
        yield sim.timeout(3)
        yield lm.acquire("r", "t", LockMode.SHARED)
        log.append(("reader", sim.now))
        lm.release("r", "t")

    sim.spawn(writer())
    v = sim.spawn(victim())
    sim.spawn(killer(v))
    r = sim.spawn(reader())
    sim.run_until_done([r])
    # The dead victim's queued X request must not block the reader after
    # the writer releases (nor be granted to the ghost).
    assert log == [("reader", 10.0)]
    assert lm.holders("t") == []
