"""Unit tests for the disk and CPU models."""

import pytest

from repro.hw.cpu import CPU
from repro.hw.disk import Disk
from repro.hw.host import Host, HostConfig
from repro.sim import Simulator


def drive(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


# ---------------------------------------------------------------------------
# Disk
# ---------------------------------------------------------------------------
def test_sequential_reads_pay_transfer_only():
    sim = Simulator()
    disk = Disk(sim, transfer_time=1.0, seek_time=4.0)

    def reader():
        for block in range(5):
            yield from disk.read(0, block)
        return sim.now

    # First read seeks (5.0), the next four are sequential (1.0 each).
    assert drive(sim, reader()) == pytest.approx(9.0)
    assert disk.stats.seeks == 1
    assert disk.stats.sequential_hits == 4


def test_interleaved_streams_seek_every_time():
    sim = Simulator()
    disk = Disk(sim, transfer_time=1.0, seek_time=4.0)

    def reader(file_id):
        for block in range(3):
            yield from disk.read(file_id, block)

    a = sim.spawn(reader(1))
    b = sim.spawn(reader(2))
    sim.run_until_done([a, b])
    # Alternating between two files: no read is sequential.
    assert disk.stats.sequential_hits == 0
    assert disk.stats.seeks == 6


def test_disk_serialises_requests():
    sim = Simulator()
    disk = Disk(sim, transfer_time=1.0, seek_time=0.0)
    ends = []

    def reader(file_id):
        yield from disk.read(file_id, 0)
        ends.append(sim.now)

    sim.spawn(reader(1))
    sim.spawn(reader(2))
    sim.run()
    assert ends == [1.0, 2.0]


def test_write_accounting():
    sim = Simulator()
    disk = Disk(sim, transfer_time=1.0, seek_time=2.0)

    def writer():
        yield from disk.write(0, 5)
        yield from disk.write(0, 6)  # sequential after 5

    drive(sim, writer())
    assert disk.stats.blocks_written == 2
    assert disk.stats.write_time == pytest.approx(3.0 + 1.0)


def test_per_file_attribution():
    sim = Simulator()
    disk = Disk(sim, transfer_time=1.0, seek_time=0.0)

    def reader():
        yield from disk.read(7, 0)
        yield from disk.read(7, 1)
        yield from disk.read(9, 0)

    drive(sim, reader())
    assert disk.stats.per_file[7][0] == 2
    assert disk.stats.per_file[9][0] == 1
    snap = disk.stats.snapshot()

    def more():
        yield from disk.read(9, 1)

    drive(sim, more())
    delta = disk.stats.delta(snap)
    assert delta.per_file == {9: [1, pytest.approx(1.0)]}


def test_sequential_scan_time_analytic():
    sim = Simulator()
    disk = Disk(sim, transfer_time=2.0, seek_time=10.0)
    assert disk.sequential_scan_time(5) == pytest.approx(20.0)
    assert disk.sequential_scan_time(0) == 0.0


def test_disk_parameter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, transfer_time=0.0)
    with pytest.raises(ValueError):
        Disk(sim, transfer_time=1.0, seek_time=-1.0)


# ---------------------------------------------------------------------------
# CPU
# ---------------------------------------------------------------------------
def test_cpu_burst_charges_time():
    sim = Simulator()
    cpu = CPU(sim, cores=1)

    def worker():
        yield from cpu.burst(3.0)
        return sim.now

    assert drive(sim, worker()) == 3.0
    assert cpu.total_bursts == 1


def test_cpu_cores_run_in_parallel():
    sim = Simulator()
    cpu = CPU(sim, cores=2)
    ends = []

    def worker():
        yield from cpu.burst(5.0)
        ends.append(sim.now)

    for _ in range(4):
        sim.spawn(worker())
    sim.run()
    assert ends == [5.0, 5.0, 10.0, 10.0]


def test_cpu_zero_burst_is_free():
    sim = Simulator()
    cpu = CPU(sim, cores=1)

    def worker():
        yield from cpu.burst(0.0)
        return sim.now

    assert drive(sim, worker()) == 0.0


def test_cpu_rejects_negative_cost():
    sim = Simulator()
    cpu = CPU(sim, cores=1)

    def worker():
        yield from cpu.burst(-1.0)

    proc = sim.spawn(worker())
    with pytest.raises(Exception):
        sim.run()


def test_cpu_validation():
    with pytest.raises(ValueError):
        CPU(Simulator(), cores=0)


# ---------------------------------------------------------------------------
# Host
# ---------------------------------------------------------------------------
def test_host_bundles_and_seeds():
    host = Host(HostConfig(seed=77))
    assert host.now == 0.0
    first = host.rng.random()
    other = Host(HostConfig(seed=77))
    assert other.rng.random() == first
