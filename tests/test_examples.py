"""The shipped examples must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "shared_scans.py",
    "sql_queries.py",
    "transactions.py",
    "deadlock_demo.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert names >= set(FAST_EXAMPLES) | {"tpch_throughput.py"}
