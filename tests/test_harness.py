"""Harness integration tests: every figure's qualitative shape must hold.

These run the real experiment functions at reduced sweep resolution and
assert the *paper's conclusions*, not absolute numbers:

* fig1a -- the five queries overlap heavily on LINEITEM/ORDERS/PART;
* fig4  -- the four overlap classes order as linear/step/full/spike;
* fig8  -- QPipe saves I/O at nonzero interarrival; curves meet at 0;
* fig9/10/11 -- QPipe w/OSP at or below Baseline at every interarrival;
* fig12 -- QPipe beats both comparators at high concurrency;
* fig13 -- QPipe's response time stays below Baseline's under load;
* section 5 -- the OSP coordinator's overhead is negligible.
"""

import pytest

from repro.harness import (
    SMOKE,
    fig1a_breakdown,
    fig4_wop,
    fig8_scan_sharing,
    fig9_ordered_scans,
    fig10_sort_merge,
    fig11_hash_join,
    fig12_throughput,
    fig13_think_time,
    osp_overhead,
    ablation_replacement_policies,
    ablation_replay_ring,
)
from repro.harness.config import build_tpch_system, with_overrides

GAPS = (0, 20, 60, 100)


def test_fig1a_queries_overlap_on_big_tables():
    rows, rendered = fig1a_breakdown(SMOKE)
    assert set(rows) == {"Q8", "Q12", "Q13", "Q14", "Q19"}
    # Each query spends most of its read time on the three big tables.
    for query, fractions in rows.items():
        tracked = sum(fractions.get(t, 0) for t in ("lineitem", "orders", "part"))
        assert tracked > 0.5, f"{query} reads mostly elsewhere: {fractions}"
    # LINEITEM dominates Q14/Q19 like the paper's Figure 1a.
    assert rows["Q14"]["lineitem"] > 0.5
    assert rows["Q19"]["lineitem"] > 0.5
    assert "Q14" in rendered


def test_fig4_overlap_classes():
    series = fig4_wop(SMOKE, progress_points=(0.0, 0.5, 0.95))
    linear = series.curve("linear(scan)")
    full = series.curve("full(aggregate)")
    step = series.curve("step(hash-join)")
    spike = series.curve("spike(ordered scan)")
    # Everyone shares fully at progress 0.
    assert linear[0] == full[0] == step[0] == spike[0] == 1.0
    # Full overlap holds the whole lifetime.
    assert all(g == 1.0 for g in full)
    # Linear decays roughly like 1 - progress.
    assert linear[1] == pytest.approx(0.5, abs=0.25)
    assert linear[2] < 0.3
    # Spike collapses immediately.
    assert spike[1] == 0 and spike[2] == 0
    # Step sits between spike and full mid-way.
    assert spike[1] <= step[1] <= full[1]


def test_fig8_qpipe_saves_io():
    out = fig8_scan_sharing(SMOKE, client_counts=(4,), interarrivals=GAPS)
    series = out[4]
    baseline = series.curve("Baseline")
    qpipe = series.curve("QPipe w/OSP")
    # Equal at interarrival 0 (pool sharing covers lockstep arrivals).
    assert baseline[0] == qpipe[0]
    # QPipe reads no more than Baseline anywhere, strictly less mid-sweep.
    assert all(q <= b for q, b in zip(qpipe, baseline))
    assert qpipe[1] < baseline[1]
    # The paper's headline: tens of percent saved at 20s interarrival.
    assert qpipe[1] <= 0.7 * baseline[1]


def test_fig9_ordered_scan_sharing():
    series = fig9_ordered_scans(SMOKE, interarrivals=GAPS)
    baseline = series.curve("Baseline")
    qpipe = series.curve("QPipe w/OSP")
    assert all(q <= b + 1e-6 for q, b in zip(qpipe, baseline))
    # Flat while the window is open: mid-sweep QPipe stays near its
    # interarrival-0 cost while the Baseline has blown up.
    assert qpipe[1] < 0.75 * baseline[1]


def test_fig10_sort_merge_sharing():
    series = fig10_sort_merge(SMOKE, interarrivals=GAPS)
    baseline = series.curve("Baseline")
    qpipe = series.curve("QPipe w/OSP")
    assert all(q <= b + 1e-6 for q, b in zip(qpipe, baseline))
    # The paper's 2x speedup region.
    assert qpipe[1] <= 0.65 * baseline[1]


def test_fig11_hash_join_two_regimes():
    series = fig11_hash_join(
        SMOKE, interarrivals=(0, 20, 60, 100, 140)
    )
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    assert all(q <= b + 1e-6 for q, b in zip(qpipe, baseline))
    # Build-phase sharing keeps early points at the solo cost; late
    # arrivals still save via the shared LINEITEM scan.
    assert qpipe[1] == qpipe[0]
    assert qpipe[-1] > qpipe[0]


def test_fig12_throughput_ordering():
    series = fig12_throughput(SMOKE, client_counts=(1, 8))
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    dbmsx = series.curve("DBMS X")
    # Disk-bound at one client: all three are equivalent (paper: "the
    # throughput of QPipe and X is almost identical").
    assert qpipe[0] == pytest.approx(dbmsx[0], rel=0.15)
    # At high concurrency QPipe wins by a large factor.
    assert qpipe[1] > 1.5 * baseline[1]
    assert qpipe[1] > 1.5 * dbmsx[1]


def test_fig13_response_time_under_load():
    series = fig13_think_time(SMOKE, think_times=(0, 240), clients=6)
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    # QPipe keeps response times low at high load (think time 0).
    assert qpipe[0] < 0.6 * baseline[0]
    # The gap narrows as think time relieves the load.
    assert baseline[1] <= baseline[0]


def test_osp_overhead_negligible():
    result = osp_overhead(SMOKE, queries=4)
    assert result["overhead_ratio"] == pytest.approx(1.0, abs=0.05)


def test_ablation_replacement_policies_runs():
    series = ablation_replacement_policies(
        SMOKE, policies=("lru", "arc"), clients=2, interarrival=20.0
    )
    values = series.curve("Baseline")
    assert len(values) == 2 and all(v > 0 for v in values)
    assert series.notes  # QPipe reference recorded


def test_ablation_replay_ring_widens_window():
    series = ablation_replay_ring(
        SMOKE, ring_sizes=(16, 4096), interarrival=40.0
    )
    attaches = series.curve("attaches")
    # A big ring must admit at least as many satellites as a tiny one.
    assert attaches[1] >= attaches[0]


def test_series_rendering_is_stable():
    series = fig8_scan_sharing(SMOKE, client_counts=(2,), interarrivals=(0, 20))[2]
    text = series.render()
    assert "interarrival" in text and "QPipe w/OSP" in text


def test_experiments_are_deterministic():
    a = fig8_scan_sharing(SMOKE, client_counts=(2,), interarrivals=(0, 20))
    b = fig8_scan_sharing(SMOKE, client_counts=(2,), interarrivals=(0, 20))
    assert a[2].curves == b[2].curves


def test_ablation_circular_wraparound_shape():
    from repro.harness import ablation_circular_wraparound

    series = ablation_circular_wraparound(
        SMOKE, clients=2, interarrivals=(0, 20)
    )
    circular = series.curve("circular")
    naive = series.curve("attach-at-start")
    assert circular[1] < naive[1]


def test_ablation_late_activation_helps():
    from repro.harness import ablation_late_activation

    series = ablation_late_activation(SMOKE, clients=4)
    on = series.curve("late-activation on")
    off = series.curve("late-activation off")
    assert on[0] <= off[0]
