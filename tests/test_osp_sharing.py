"""OSP behaviour tests: do overlapping queries actually share work?

These exercise the mechanisms of sections 4.3.1-4.3.4 directly:
circular scans, generic attach (full/step + buffering), sort
re-emission, hash-join build sharing, and the I/O savings they cause.
All use the multi-page ``big_db`` fixture so queries run long enough to
overlap at staggered arrivals.
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import (
    Aggregate,
    HashJoin,
    Sort,
    TableScan,
)


def make_engine(big_db, osp=True, **kwargs):
    _host, sm, _r, _s = big_db
    return QPipeEngine(sm, QPipeConfig(osp_enabled=osp, **kwargs))


def run_concurrent(big_db, engine, plans, interarrival=0.0):
    """Submit plans staggered by *interarrival*; returns QueryResults."""
    host, _sm, _r, _s = big_db
    procs = []

    def client(plan, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(plan)
        return result

    for i, plan in enumerate(plans):
        procs.append(
            host.sim.spawn(client(plan, i * interarrival), name=f"client{i}")
        )
    host.sim.run_until_done(procs)
    return [p.value for p in procs]


def scan_seconds(big_db) -> float:
    host, sm, _r, _s = big_db
    return sm.num_pages("r") * host.config.disk_transfer_time


# ---------------------------------------------------------------------------
# Circular scans (section 4.3.1)
# ---------------------------------------------------------------------------
def test_concurrent_scans_share_disk_reads(big_db):
    host, sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=True)
    n_pages = sm.num_pages("r")
    plans = [TableScan("r", predicate=Col("grp") == g) for g in range(4)]
    results = run_concurrent(big_db, engine, plans, interarrival=0.0)
    for g, result in enumerate(results):
        assert sorted(result.rows) == sorted(
            r for r in r_rows if r[1] == g
        )
    # One shared pass (plus possibly a page or two of skew), not four.
    assert host.disk.stats.blocks_read <= n_pages + 2
    assert engine.osp_stats.attaches["fscan-circular"] == 3


def test_late_scan_wraps_around(big_db):
    """A scan arriving mid-pass attaches and still sees every row once."""
    host, sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=True)
    n_pages = sm.num_pages("r")
    plans = [TableScan("r"), TableScan("r")]
    results = run_concurrent(
        big_db, engine, plans, interarrival=scan_seconds(big_db) / 2
    )
    for result in results:
        assert sorted(result.rows) == sorted(r_rows)
        assert len(result.rows) == len(r_rows)
    # Shared reads: strictly less than two full passes.
    assert host.disk.stats.blocks_read < 2 * n_pages


def test_scan_consumer_counts_pages_exactly_once(big_db):
    """Three staggered scans each receive every row exactly once."""
    host, _sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=True)
    plans = [TableScan("r") for _ in range(3)]
    results = run_concurrent(
        big_db, engine, plans, interarrival=scan_seconds(big_db) / 3
    )
    for result in results:
        assert len(result.rows) == len(r_rows)
        assert sorted(result.rows) == sorted(r_rows)


def test_no_sharing_when_osp_disabled(big_db):
    host, sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=False)
    n_pages = sm.num_pages("r")
    plans = [TableScan("r") for _ in range(2)]
    results = run_concurrent(
        big_db, engine, plans, interarrival=scan_seconds(big_db) * 2
    )
    for result in results:
        assert sorted(result.rows) == sorted(r_rows)
    assert engine.osp_stats.total_attaches == 0
    # Pool (64 pages) < table: the second scan re-reads everything.
    assert host.disk.stats.blocks_read == 2 * n_pages


# ---------------------------------------------------------------------------
# Generic attach: single aggregates (full overlap)
# ---------------------------------------------------------------------------
def agg_plan():
    return Aggregate(TableScan("r"), [AggSpec("sum", Col("val"), "sv")])


def test_identical_aggregates_attach(big_db):
    host, sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=True)
    results = run_concurrent(
        big_db, engine, [agg_plan(), agg_plan()],
        interarrival=scan_seconds(big_db) / 2,
    )
    expected = pytest.approx(sum(r[2] for r in r_rows))
    assert results[0].rows[0][0] == expected
    assert results[1].rows[0][0] == expected
    assert engine.osp_stats.attaches["agg"] == 1


def test_attached_aggregate_finishes_with_host(big_db):
    host, _sm, _r, _s = big_db
    engine = make_engine(big_db, osp=True)
    results = run_concurrent(
        big_db, engine, [agg_plan(), agg_plan()],
        interarrival=scan_seconds(big_db) / 2,
    )
    # The satellite ends when the host pipeline ends: near-simultaneous.
    assert abs(results[0].finished_at - results[1].finished_at) < 0.1


def test_aggregate_window_spans_whole_lifetime(big_db):
    """Full overlap: an aggregate admits satellites any time before done."""
    host, _sm, _r, _s = big_db
    engine = make_engine(big_db, osp=True)
    results = run_concurrent(
        big_db, engine, [agg_plan(), agg_plan()],
        interarrival=scan_seconds(big_db) * 0.9,  # very late arrival
    )
    assert engine.osp_stats.attaches["agg"] == 1
    assert results[0].rows == results[1].rows


# ---------------------------------------------------------------------------
# Sort sharing: full during sort, materialised re-emit afterwards
# ---------------------------------------------------------------------------
def sort_plan():
    return Sort(TableScan("r"), keys=["val"])


def test_identical_sorts_share(big_db):
    host, _sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=True)
    results = run_concurrent(
        big_db, engine, [sort_plan(), sort_plan()],
        interarrival=scan_seconds(big_db) / 2,
    )
    expected = sorted(r_rows, key=lambda r: (r[2],))
    assert results[0].rows == expected
    assert results[1].rows == expected
    assert engine.osp_stats.attaches["sort"] >= 1


def test_sorts_produce_correct_rows_at_any_overlap(big_db):
    host, _sm, r_rows, _s = big_db
    engine = make_engine(big_db, osp=True)
    expected = sorted(r_rows, key=lambda r: (r[2],))
    results = run_concurrent(
        big_db, engine, [sort_plan() for _ in range(3)],
        interarrival=scan_seconds(big_db) / 3,
    )
    for result in results:
        assert result.rows == expected


def test_sort_reemission_after_emit_started(big_db):
    """A satellite arriving in the emit phase replays the materialised
    result (the Figure 4b materialisation enhancement)."""
    host, sm, r_rows, _s = big_db
    # Tiny buffers so emission takes a while and the replay ring drops.
    engine = make_engine(big_db, osp=True, buffer_tuples=64,
                         replay_tuples=64)
    expected = sorted(r_rows, key=lambda r: (r[2],))

    procs = []

    def slow_client(delay):
        yield host.sim.timeout(delay)
        # Read the root buffer slowly to stretch the emit phase.
        query_result = yield from engine.execute(sort_plan())
        return query_result

    procs.append(host.sim.spawn(slow_client(0)))
    # Arrive well into emission: after the sort finished (scan done) but
    # before the host query completes.
    procs.append(host.sim.spawn(slow_client(scan_seconds(big_db) * 0.98)))
    host.sim.run_until_done(procs)
    for proc in procs:
        assert proc.value.rows == expected


# ---------------------------------------------------------------------------
# Hash-join build sharing (full overlap during build)
# ---------------------------------------------------------------------------
def hj_plan():
    return HashJoin(TableScan("s"), TableScan("r"), "rid", "id")


def test_identical_hash_joins_attach_during_build(big_db):
    host, _sm, r_rows, s_rows = big_db
    engine = make_engine(big_db, osp=True)
    results = run_concurrent(
        big_db, engine, [hj_plan(), hj_plan()], interarrival=0.05
    )
    expected = sorted(
        s + r for s in s_rows for r in r_rows if r[0] == s[1]
    )
    assert sorted(results[0].rows) == expected
    assert sorted(results[1].rows) == expected
    assert engine.osp_stats.attaches["hashjoin"] == 1


def test_disjoint_queries_never_attach(big_db):
    host, _sm, _r, _s = big_db
    engine = make_engine(big_db, osp=True)
    plans = [
        Aggregate(TableScan("r", predicate=Col("grp") == 0),
                  [AggSpec("count", None, "n")]),
        Aggregate(TableScan("r", predicate=Col("grp") == 1),
                  [AggSpec("sum", Col("val"), "sv")]),
    ]
    results = run_concurrent(big_db, engine, plans, interarrival=0.0)
    assert results[0].rows[0][0] > 0
    # Scans still share pages (circular), but no operator-level attach.
    assert engine.osp_stats.attaches["agg"] == 0
    assert engine.osp_stats.attaches["fscan-circular"] == 1


# ---------------------------------------------------------------------------
# OSP savings are visible in time, not just I/O counters
# ---------------------------------------------------------------------------
def test_osp_reduces_makespan_for_identical_queries():
    import tests.conftest as cf
    from repro.hw.host import Host, HostConfig
    from repro.storage.manager import StorageManager

    def run_with(osp):
        host = Host(HostConfig())
        sm = StorageManager(host, buffer_pages=16, policy="lru")
        sm.create_table("r", cf.BIG_R_SCHEMA)
        sm.load_table("r", cf.make_big_r_rows())
        engine = QPipeEngine(sm, QPipeConfig(osp_enabled=osp))
        procs = []
        scan_time = sm.num_pages("r") * host.config.disk_transfer_time

        def client(delay):
            yield host.sim.timeout(delay)
            result = yield from engine.execute(
                Aggregate(TableScan("r"), [AggSpec("count", None, "n")])
            )
            return result

        for i in range(4):
            procs.append(host.sim.spawn(client(i * scan_time / 2)))
        host.sim.run_until_done(procs)
        return max(p.value.finished_at for p in procs)

    assert run_with(True) < run_with(False)
