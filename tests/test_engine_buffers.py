"""Unit tests for TupleBuffer and FanOut (the OSP plumbing)."""

import pytest

from repro.engine.buffers import SEGMENT_BOUNDARY, FanOut, TupleBuffer
from repro.sim import ChannelClosed, Simulator


def drive(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


# ---------------------------------------------------------------------------
# TupleBuffer
# ---------------------------------------------------------------------------
def test_put_get_roundtrip():
    sim = Simulator()
    buf = TupleBuffer(sim, 16)

    def producer():
        yield from buf.put([(1,), (2,)])
        buf.close()

    def consumer():
        rows = yield from buf.drain()
        return rows

    sim.spawn(producer())
    assert drive(sim, consumer()) == [(1,), (2,)]
    assert buf.tuples_in == 2 and buf.tuples_out == 2


def test_oversized_batches_are_chunked():
    sim = Simulator()
    buf = TupleBuffer(sim, 4)
    got = []

    def producer():
        yield from buf.put([(i,) for i in range(10)])
        buf.close()

    def consumer():
        while True:
            batch = yield from buf.get()
            if batch is None:
                break
            assert len(batch) <= 4
            got.extend(batch)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == [(i,) for i in range(10)]


def test_get_opens_activation_gate():
    sim = Simulator()
    buf = TupleBuffer(sim, 4)
    log = []

    def producer():
        yield from buf.wait_activated()
        log.append(("activated", sim.now))
        yield from buf.put([(1,)])

    def consumer():
        yield sim.timeout(5)
        batch = yield from buf.get()
        log.append(("got", sim.now, batch))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert log == [("activated", 5.0), ("got", 5.0, [(1,)])]


def test_markers_pass_through():
    sim = Simulator()
    buf = TupleBuffer(sim, 8)

    def producer():
        yield from buf.put([(1,)])
        yield from buf.put_marker()
        yield from buf.put([(2,)])
        buf.close()

    def consumer():
        seen = []
        while True:
            batch = yield from buf.get()
            if batch is None:
                return seen
            seen.append("M" if batch is SEGMENT_BOUNDARY else batch)

    sim.spawn(producer())
    assert drive(sim, consumer()) == [[(1,)], "M", [(2,)]]


def test_drain_skips_markers():
    sim = Simulator()
    buf = TupleBuffer(sim, 8)

    def producer():
        yield from buf.put([(1,)])
        yield from buf.put_marker()
        yield from buf.put([(2,)])
        buf.close()

    sim.spawn(producer())
    assert drive(sim, buf.drain()) == [(1,), (2,)]


def test_put_with_patience_times_out_whole():
    sim = Simulator()
    buf = TupleBuffer(sim, 2)

    def producer():
        ok1 = yield from buf.put_with_patience([(1,), (2,)], patience=5.0)
        ok2 = yield from buf.put_with_patience([(3,)], patience=5.0)
        return ok1, ok2

    result = drive(sim, producer())
    assert result == (True, False)
    # The withdrawn batch left no partial residue.
    assert buf.tuples_in == 2
    assert sim.now == pytest.approx(5.0)


def test_put_with_patience_succeeds_when_space_frees():
    sim = Simulator()
    buf = TupleBuffer(sim, 2)
    log = []

    def producer():
        yield from buf.put([(1,), (2,)])
        ok = yield from buf.put_with_patience([(3,)], patience=10.0)
        log.append((ok, sim.now))

    def consumer():
        yield sim.timeout(3)
        yield from buf.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert log == [(True, 3.0)]


def _run_patience_race(batch_size, consume_at, spawn_consumer_first):
    """One deadline/accept race; returns (ok, delivered rows, buffer).

    A full capacity-4 buffer, a ``put_with_patience(..., patience=5)``,
    and a consumer that frees space at exactly *consume_at* -- with
    ``consume_at == 5.0`` the channel accept and the patience deadline
    land on the same timestamp.  Spawn order flips which event gets the
    smaller sequence number, so both resolutions of the tie are covered.
    """
    sim = Simulator()
    buf = TupleBuffer(sim, 4)
    assert buf.try_put([("pre", i) for i in range(4)])
    batch = [("b", i) for i in range(batch_size)]
    outcome = []
    received = []

    def producer():
        ok = yield from buf.put_with_patience(list(batch), patience=5.0)
        outcome.append(ok)
        buf.close()

    def consumer():
        yield sim.timeout(consume_at)
        while True:
            got = yield from buf.get()
            if got is None:
                return
            received.extend(got)

    if spawn_consumer_first:
        sim.spawn(consumer())
        sim.spawn(producer())
    else:
        sim.spawn(producer())
        sim.spawn(consumer())
    sim.run()
    prefix = [("pre", i) for i in range(4)]
    assert received[:4] == prefix
    return outcome[0], received[4:], buf


@pytest.mark.parametrize("spawn_consumer_first", [True, False])
@pytest.mark.parametrize("batch_size", [3, 10])
def test_patience_deadline_accept_same_timestamp_exactly_once(
    batch_size, spawn_consumer_first
):
    """Deadline and accept at the same instant: delivered once or not at
    all -- never twice, never partially, for both the in-capacity batch
    and the oversized (chunked fallback) batch."""
    ok, delivered, buf = _run_patience_race(
        batch_size, consume_at=5.0, spawn_consumer_first=spawn_consumer_first
    )
    batch = [("b", i) for i in range(batch_size)]
    if ok:
        assert delivered == batch
        assert buf.tuples_in == 4 + batch_size
    else:
        assert delivered == []
        assert buf.tuples_in == 4


@pytest.mark.parametrize("batch_size", [3, 10])
def test_patience_timeout_withdraws_whole_batch(batch_size):
    """A consumer slower than patience: False, and nothing delivered --
    including for a batch larger than capacity, which previously fell
    back to an unbounded blocking put."""
    ok, delivered, buf = _run_patience_race(
        batch_size, consume_at=9.0, spawn_consumer_first=True
    )
    assert ok is False
    assert delivered == []
    assert buf.tuples_in == 4


def test_patience_oversized_batch_delivered_once_when_space_frees():
    ok, delivered, buf = _run_patience_race(
        10, consume_at=2.0, spawn_consumer_first=True
    )
    assert ok is True
    assert delivered == [("b", i) for i in range(10)]
    assert buf.tuples_in == 14
    assert buf.tuples_out == 14


def test_materialize_removes_backpressure():
    sim = Simulator()
    buf = TupleBuffer(sim, 2)
    buf.materialize()

    def producer():
        for i in range(50):
            yield from buf.put([(i,)])
        return sim.now

    assert drive(sim, producer()) == 0.0


# ---------------------------------------------------------------------------
# FanOut
# ---------------------------------------------------------------------------
def test_fanout_copies_to_all_buffers():
    sim = Simulator()
    a = TupleBuffer(sim, 16, name="a")
    b = TupleBuffer(sim, 16, name="b")
    fan = FanOut(sim, a)
    got_b = []

    def producer():
        yield from fan.put([(1,)])
        yield from fan.attach(b, replay=True)  # replays (1,)
        yield from fan.put([(2,)])
        fan.close()

    def consumer_b():
        while True:
            batch = yield from b.get()
            if batch is None:
                return
            got_b.extend(batch)

    def consumer_a():
        yield from a.drain()

    sim.spawn(producer())
    sim.spawn(consumer_a())
    sim.spawn(consumer_b())
    sim.run()
    assert got_b == [(1,), (2,)]


def test_fanout_slowest_consumer_governs():
    sim = Simulator()
    fast = TupleBuffer(sim, 1, name="fast")
    slow = TupleBuffer(sim, 1, name="slow")
    fan = FanOut(sim, fast)
    put_times = []

    def producer():
        yield from fan.attach(slow, replay=False)
        for i in range(3):
            yield from fan.put([(i,)])
            put_times.append(sim.now)

    def fast_reader():
        while True:
            batch = yield from fast.get()
            if batch is None:
                return

    def slow_reader():
        for _ in range(3):
            yield sim.timeout(10)
            yield from slow.get()
        slow.close()

    p = sim.spawn(producer())
    sim.spawn(fast_reader())
    sim.spawn(slow_reader())
    sim.run(until=100)
    # Every put waits for the slow reader's 10s cadence.
    assert put_times[0] == 0.0
    assert put_times[1] == pytest.approx(10.0)
    assert put_times[2] == pytest.approx(20.0)


def test_fanout_replay_ring_bounds():
    sim = Simulator()
    primary = TupleBuffer(sim, 1000)
    fan = FanOut(sim, primary, replay_tuples=4)

    def producer():
        yield from fan.put([(1,), (2,)])
        assert fan.can_replay()
        yield from fan.put([(3,), (4,), (5,)])  # exceeds the ring
        assert not fan.can_replay()

    def consumer():
        yield from primary.drain()

    p = sim.spawn(producer())
    sim.spawn(consumer())
    sim.run(until=10)
    assert p.triggered


def test_fanout_detaches_closed_buffers():
    sim = Simulator()
    primary = TupleBuffer(sim, 16)
    extra = TupleBuffer(sim, 16)
    fan = FanOut(sim, primary)

    def producer():
        yield from fan.attach(extra, replay=False)
        extra.close()  # consumer abandoned
        yield from fan.put([(1,)])
        yield from fan.put([(2,)])
        fan.close()

    def consumer():
        rows = yield from primary.drain()
        return rows

    sim.spawn(producer())
    assert drive(sim, consumer()) == [(1,), (2,)]
    assert extra not in fan.buffers


def test_fanout_attach_after_close_closes_satellite():
    sim = Simulator()
    primary = TupleBuffer(sim, 16)
    late = TupleBuffer(sim, 16)
    fan = FanOut(sim, primary)
    fan.close()

    def attacher():
        yield from fan.attach(late, replay=False)

    drive(sim, attacher())
    assert late.closed


def test_fanout_attach_capture_runs_under_lock():
    """The on_attached callback sees a consistent producer position."""
    sim = Simulator()
    primary = TupleBuffer(sim, 16)
    sat = TupleBuffer(sim, 16)
    fan = FanOut(sim, primary)
    captured = []

    def producer():
        yield from fan.put([(1,)])
        yield from fan.attach(
            sat, replay=False,
            on_attached=lambda: captured.append(fan.total_tuples),
        )
        yield from fan.put([(2,)])
        fan.close()

    def consumers():
        yield from primary.drain()

    sim.spawn(producer())
    sim.spawn(consumers())
    sim.spawn(sat.drain())
    sim.run()
    assert captured == [1]
