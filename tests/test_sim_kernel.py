"""Unit tests for the DES kernel: events, processes, timeouts, interrupts."""

import pytest

from repro.sim import (
    Interrupted,
    Simulator,
    SimulationError,
    StarvationError,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [5.0, 7.5]
    assert sim.now == 7.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return 42

    p = sim.spawn(proc())
    sim.run()
    assert p.triggered and p.value == 42


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    log = []

    def proc(name, delay):
        yield sim.timeout(delay)
        log.append((name, sim.now))

    sim.spawn(proc("b", 2))
    sim.spawn(proc("a", 1))
    sim.spawn(proc("c", 3))
    sim.run()
    assert log == [("a", 1), ("b", 2), ("c", 3)]


def test_fifo_order_at_equal_timestamps():
    """Events at the same timestamp run in scheduling order (determinism)."""
    sim = Simulator()
    log = []

    def proc(name):
        yield sim.timeout(1)
        log.append(name)

    for name in "abcde":
        sim.spawn(proc(name))
    sim.run()
    assert log == list("abcde")


def test_wait_on_process_completion():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(3)
        return "payload"

    def parent():
        value = yield sim.spawn(child())
        log.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert log == [(3.0, "payload")]


def test_subroutine_composition_with_yield_from():
    sim = Simulator()
    log = []

    def sub(n):
        yield sim.timeout(n)
        return n * 2

    def proc():
        a = yield from sub(1)
        b = yield from sub(2)
        log.append(a + b)

    sim.spawn(proc())
    sim.run()
    assert log == [6]
    assert sim.now == 3.0


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield sim.timeout(4)
        ev.succeed("hello")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == ["hello"]
    assert sim.now == 4.0


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_throws_into_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield sim.timeout(1)
        ev.fail(RuntimeError("boom"))

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_aborts_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("broken operator")

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupted as exc:
            log.append((sim.now, exc.cause))

    def killer(target):
        yield sim.timeout(5)
        target.interrupt("subtree terminated")

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    sim.run()
    assert log == [(5.0, "subtree terminated")]


def test_uncaught_interrupt_kills_process_quietly():
    sim = Simulator()

    def victim():
        yield sim.timeout(100)

    def killer(target):
        yield sim.timeout(5)
        target.interrupt()

    v = sim.spawn(victim())
    sim.spawn(killer(v))
    sim.run()
    assert v.triggered and v.value is None
    assert sim.now == 5.0


def test_interrupt_terminated_process_is_noop():
    sim = Simulator()

    def victim():
        yield sim.timeout(1)

    v = sim.spawn(victim())
    sim.run()
    v.interrupt()  # must not raise
    assert v.triggered


def test_run_until_limits_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.spawn(proc())
    sim.run(until=10)
    assert sim.now == 10.0


def test_run_until_done_raises_on_starvation():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never fires

    p = sim.spawn(stuck())
    with pytest.raises(StarvationError):
        sim.run_until_done([p])


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc():
        t1, t2 = sim.timeout(5, "slow"), sim.timeout(2, "fast")
        fired = yield sim.any_of([t1, t2])
        results.append((sim.now, sorted(fired.values())))

    sim.spawn(proc())
    sim.run()
    assert results == [(2.0, ["fast"])]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc():
        t1, t2 = sim.timeout(5, "slow"), sim.timeout(2, "fast")
        fired = yield sim.all_of([t1, t2])
        results.append((sim.now, sorted(fired.values())))

    sim.spawn(proc())
    sim.run()
    assert results == [(5.0, ["fast", "slow"])]


def test_determinism_two_identical_runs():
    """The same program produces the exact same trace on every run."""

    def trace_run():
        sim = Simulator()
        log = []

        def proc(name, period, count):
            for _ in range(count):
                yield sim.timeout(period)
                log.append((name, sim.now))

        sim.spawn(proc("x", 1.5, 4))
        sim.spawn(proc("y", 2.0, 3))
        sim.run()
        return log

    assert trace_run() == trace_run()
