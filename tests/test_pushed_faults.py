"""Fault teardown on the push-based fused backend.

A crashed pushed query unwinds compiled pipeline generators rather than
operator objects, so the teardown path is different from both the
packet engine (packet chains) and the iterator engine (operator close
methods): the engine must close the generator stack, drop any live
spill files, release every buffer pin, and sweep the query's locks.
These tests pin that balance after faults land mid-sort-spill and
mid-join-partitioning, and that the engine stays usable afterwards.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, QueryAborted
from repro.faults.errors import FaultError
from repro.pushexec import PushEngine
from repro.relational.plans import HashJoin, Sort, TableScan


def make_engine(sm):
    # A tiny memory budget so sorts spill runs and hash joins partition
    # to temp files -- teardown has real satellites to clean up.
    return PushEngine(sm, work_mem_tuples=500)


def spawn_catching(host, engine, plan, name="client"):
    box = {}

    def client():
        try:
            result = yield from engine.execute(plan)
        except FaultError as exc:
            box["error"] = exc
            return None
        box["rows"] = result.rows
        return result

    box["proc"] = host.sim.spawn(client(), name=name)
    return box


def assert_balanced(sm, engine, files_before):
    assert dict(sm.pool._pins) == {}
    assert all(not grants for grants in sm.locks._granted.values())
    assert len(sm.store._files) == files_before
    assert engine.active_queries == 0
    assert engine._active == {}


def sort_plan():
    return Sort(TableScan("r"), keys=["val"])


def join_plan():
    return HashJoin(TableScan("r"), TableScan("s"), "id", "rid")


@pytest.mark.parametrize("plan_fn", [sort_plan, join_plan],
                         ids=["sort-spill", "hash-partition"])
def test_crash_mid_spill_releases_everything(big_db, plan_fn):
    host, sm, _, _ = big_db
    engine = make_engine(sm)
    files_before = len(sm.store._files)
    injector = FaultInjector(
        FaultPlan().crash_query(at=0.2, target=0)
    ).attach(engine)
    box = spawn_catching(host, engine, plan_fn())
    host.sim.run()
    assert isinstance(box.get("error"), QueryAborted)
    assert engine.queries_aborted == 1
    assert_balanced(sm, engine, files_before)
    assert injector.fired


def test_client_interrupt_runs_pipeline_finalizers(big_db):
    """A raw process interrupt (client disconnect, no abort_query call)
    must still unwind the generator stack and drop spill files."""
    host, sm, _, _ = big_db
    engine = make_engine(sm)
    files_before = len(sm.store._files)
    box = spawn_catching(host, engine, sort_plan())

    def killer():
        yield host.sim.timeout(0.25)
        if box["proc"].alive:
            box["proc"].interrupt("client disconnected")
        return None

    host.sim.spawn(killer(), name="killer")
    host.sim.run()
    # The Interrupted propagates out of the client (it is not a
    # FaultError), so the query produced neither rows nor a typed error.
    assert "rows" not in box and "error" not in box
    assert_balanced(sm, engine, files_before)


def test_engine_survives_repeated_crashes(big_db):
    """Crash several spilling queries back to back, then run one clean:
    no residue from the crashed runs may leak into the survivor."""
    host, sm, r_rows, _ = big_db
    engine = make_engine(sm)
    files_before = len(sm.store._files)
    plan = FaultPlan()
    for at in (0.2, 0.6, 1.0):
        plan.crash_query(at=at, target=0)
    FaultInjector(plan).attach(engine)
    boxes = []

    def submit(delay, plan_fn):
        def client():
            yield host.sim.timeout(delay)
            boxes.append(spawn_catching(host, engine, plan_fn()))
            return None
        host.sim.spawn(client(), name=f"submit-{delay}")

    submit(0.0, sort_plan)
    submit(0.45, join_plan)
    submit(0.85, sort_plan)
    host.sim.run()
    assert sum(isinstance(b.get("error"), QueryAborted)
               for b in boxes) == 3
    assert_balanced(sm, engine, files_before)

    survivor = spawn_catching(host, engine, sort_plan())
    host.sim.run()
    expected = sorted(r_rows, key=lambda row: row[2])
    assert [row[2] for row in survivor["rows"]] == \
        [row[2] for row in expected]
    assert_balanced(sm, engine, files_before)
