"""Pipeline-deadlock detection and resolution (section 4.3.3).

The crossed-dependency scenario of section 3.3 is built directly from
buffers: producer and consumer wait on each other through two buffers,
and the detector must materialise one of them to break the loop.
"""

import pytest

from repro.engine.buffers import TupleBuffer
from repro.osp.deadlock import DeadlockDetector
from repro.osp.stats import OspStats
from repro.sim import Simulator


class StubEngine:
    """Just enough engine surface for the detector."""

    def __init__(self, sim):
        self.sim = sim
        self.osp_stats = OspStats()
        self._buffers = []
        self.active_queries = 1

    def register_buffer(self, buf):
        self._buffers.append(buf)

    def live_buffers(self):
        return [b for b in self._buffers if not b.closed]


def make_stub():
    sim = Simulator()
    return sim, StubEngine(sim)


def test_no_cycle_no_action():
    sim, engine = make_stub()
    buf = TupleBuffer(sim, capacity_tuples=4, producer="P", consumer="C")
    engine.register_buffer(buf)
    detector = DeadlockDetector(engine)
    assert detector.check_once() is None
    assert engine.osp_stats.deadlocks_resolved == 0


def test_crossed_waits_resolve_by_materialisation():
    """X blocked putting to b1 (full), Y blocked getting from b2 (empty)
    where X is also b2's producer -> cycle X->Y->X."""
    sim, engine = make_stub()
    b1 = TupleBuffer(sim, 2, name="b1", producer="X", consumer="Y")
    b2 = TupleBuffer(sim, 2, name="b2", producer="X", consumer="Y")
    engine.register_buffer(b1)
    engine.register_buffer(b2)
    done = []

    def x():
        # Fill b1 beyond capacity, blocking; only then feed b2.
        yield from b1.put([(1,), (2,)])
        yield from b1.put([(3,)])  # blocks: b1 full, Y not reading yet
        yield from b2.put([(9,)])
        done.append(("x", sim.now))

    def y():
        # Needs b2 first -- the crossed order.
        batch = yield from b2.get()
        done.append(("y-got-b2", batch))
        while True:
            batch = yield from b1.get()
            if batch is None:
                break
        done.append(("y", sim.now))

    px = sim.spawn(x())
    py = sim.spawn(y())
    detector = DeadlockDetector(engine)
    engine_detector_ran = []

    def run_detector():
        yield sim.timeout(1.0)
        engine_detector_ran.append(detector.check_once())
        b1.close()  # let Y terminate after X finished

    sim.spawn(run_detector())
    sim.run()
    # The detector found and resolved the cycle...
    assert engine_detector_ran[0] is not None
    assert engine.osp_stats.deadlocks_resolved == 1
    # ...and both processes completed.
    assert ("x", 1.0) in done
    assert any(tag == "y" for tag, _ in done)


def test_victim_is_cheapest_buffer():
    """Among cycle candidates the least-full buffer is materialised."""
    sim, engine = make_stub()
    # Two full buffers on the cycle with different levels.
    big = TupleBuffer(sim, 10, name="big", producer="X", consumer="Y")
    small = TupleBuffer(sim, 2, name="small", producer="Y", consumer="X")
    engine.register_buffer(big)
    engine.register_buffer(small)

    def x():
        yield from big.put([(i,) for i in range(10)])
        yield from big.put([(99,)])  # blocks

    def y():
        yield from small.put([(1,), (2,)])
        yield from small.put([(3,)])  # blocks

    def x_reader():
        # X also waits on small being... actually both are blocked
        # producers; complete the cycle via consumer edges by never
        # reading.  The graph is X -> Y (big full) and Y -> X (small
        # full): a two-node cycle of producers.
        return
        yield

    sim.spawn(x())
    sim.spawn(y())
    detector = DeadlockDetector(engine)

    def run_detector():
        yield sim.timeout(1.0)
        detector.check_once()

    sim.spawn(run_detector())
    sim.run()
    assert detector.resolved and detector.resolved[0] is small


def test_detector_parks_when_idle():
    sim, engine = make_stub()
    engine.active_queries = 0
    detector = DeadlockDetector(engine)
    detector.ensure_running()
    sim.run()
    assert sim.now < 1.0  # the loop exited without periodic wakeups


def test_materialised_buffer_accepts_unbounded_puts():
    sim, engine = make_stub()
    buf = TupleBuffer(sim, 2, producer="P", consumer="C")
    buf.materialize()
    times = []

    def producer():
        for i in range(100):
            yield from buf.put([(i,)])
        times.append(sim.now)

    sim.spawn(producer())
    sim.run()
    assert times == [0.0]
