"""Pipeline-deadlock detection and resolution (section 4.3.3).

The crossed-dependency scenario of section 3.3 is built directly from
buffers: producer and consumer wait on each other through two buffers,
and the detector must materialise one of them to break the loop.
"""

import pytest

from repro.engine.buffers import TupleBuffer
from repro.osp.deadlock import DeadlockDetector
from repro.osp.stats import OspStats
from repro.sim import Simulator


class StubEngine:
    """Just enough engine surface for the detector."""

    def __init__(self, sim):
        self.sim = sim
        self.osp_stats = OspStats()
        self._buffers = []
        self.active_queries = 1

    def register_buffer(self, buf):
        self._buffers.append(buf)

    def live_buffers(self):
        return [b for b in self._buffers if not b.closed]


def make_stub():
    sim = Simulator()
    return sim, StubEngine(sim)


def test_no_cycle_no_action():
    sim, engine = make_stub()
    buf = TupleBuffer(sim, capacity_tuples=4, producer="P", consumer="C")
    engine.register_buffer(buf)
    detector = DeadlockDetector(engine)
    assert detector.check_once() is None
    assert engine.osp_stats.deadlocks_resolved == 0


def test_crossed_waits_resolve_by_materialisation():
    """X blocked putting to b1 (full), Y blocked getting from b2 (empty)
    where X is also b2's producer -> cycle X->Y->X."""
    sim, engine = make_stub()
    b1 = TupleBuffer(sim, 2, name="b1", producer="X", consumer="Y")
    b2 = TupleBuffer(sim, 2, name="b2", producer="X", consumer="Y")
    engine.register_buffer(b1)
    engine.register_buffer(b2)
    done = []

    def x():
        # Fill b1 beyond capacity, blocking; only then feed b2.
        yield from b1.put([(1,), (2,)])
        yield from b1.put([(3,)])  # blocks: b1 full, Y not reading yet
        yield from b2.put([(9,)])
        done.append(("x", sim.now))

    def y():
        # Needs b2 first -- the crossed order.
        batch = yield from b2.get()
        done.append(("y-got-b2", batch))
        while True:
            batch = yield from b1.get()
            if batch is None:
                break
        done.append(("y", sim.now))

    px = sim.spawn(x())
    py = sim.spawn(y())
    detector = DeadlockDetector(engine)
    engine_detector_ran = []

    def run_detector():
        yield sim.timeout(1.0)
        engine_detector_ran.append(detector.check_once())
        b1.close()  # let Y terminate after X finished

    sim.spawn(run_detector())
    sim.run()
    # The detector found and resolved the cycle...
    assert engine_detector_ran[0] is not None
    assert engine.osp_stats.deadlocks_resolved == 1
    # ...and both processes completed.
    assert ("x", 1.0) in done
    assert any(tag == "y" for tag, _ in done)


def test_victim_is_cheapest_buffer():
    """Among cycle candidates the least-full buffer is materialised."""
    sim, engine = make_stub()
    # Two full buffers on the cycle with different levels.
    big = TupleBuffer(sim, 10, name="big", producer="X", consumer="Y")
    small = TupleBuffer(sim, 2, name="small", producer="Y", consumer="X")
    engine.register_buffer(big)
    engine.register_buffer(small)

    def x():
        yield from big.put([(i,) for i in range(10)])
        yield from big.put([(99,)])  # blocks

    def y():
        yield from small.put([(1,), (2,)])
        yield from small.put([(3,)])  # blocks

    def x_reader():
        # X also waits on small being... actually both are blocked
        # producers; complete the cycle via consumer edges by never
        # reading.  The graph is X -> Y (big full) and Y -> X (small
        # full): a two-node cycle of producers.
        return
        yield

    sim.spawn(x())
    sim.spawn(y())
    detector = DeadlockDetector(engine)

    def run_detector():
        yield sim.timeout(1.0)
        detector.check_once()

    sim.spawn(run_detector())
    sim.run()
    assert detector.resolved and detector.resolved[0] is small


def test_detector_parks_when_idle():
    sim, engine = make_stub()
    engine.active_queries = 0
    detector = DeadlockDetector(engine)
    detector.ensure_running()
    sim.run()
    assert sim.now < 1.0  # the loop exited without periodic wakeups


def test_three_packet_cycle_detected_and_resolved():
    """A waits-for loop spanning three packets (A -> B -> C -> A) --
    strictly longer than the crossed-pair case -- must be found and
    broken by materialising the cheapest buffer on it."""
    sim, engine = make_stub()
    # ab full: A waits for B.  bc full: B waits for C.  ca full: C
    # waits for A.  Distinct levels make the victim deterministic.
    ab = TupleBuffer(sim, 6, name="ab", producer="A", consumer="B")
    bc = TupleBuffer(sim, 4, name="bc", producer="B", consumer="C")
    ca = TupleBuffer(sim, 2, name="ca", producer="C", consumer="A")
    for buf in (ab, bc, ca):
        engine.register_buffer(buf)

    def a():
        yield from ab.put([(i,) for i in range(6)])
        yield from ab.put([(99,)])  # blocks: ab full, B not reading

    def b():
        yield from bc.put([(i,) for i in range(4)])
        yield from bc.put([(99,)])  # blocks: bc full, C not reading

    def c():
        yield from ca.put([(1,), (2,)])
        yield from ca.put([(99,)])  # blocks: ca full, A not reading

    sim.spawn(a())
    sim.spawn(b())
    sim.spawn(c())
    detector = DeadlockDetector(engine)
    found = []

    def run_detector():
        yield sim.timeout(1.0)
        found.append(detector.check_once())

    sim.spawn(run_detector())
    sim.run()
    # All three full buffers lie on the cycle; the emptiest one (ca,
    # level 2) is the materialisation victim.
    assert found[0] is not None and len(found[0]) == 3
    assert detector.resolved == [ca]
    assert engine.osp_stats.deadlocks_resolved == 1


def test_three_packet_chain_without_back_edge_is_no_deadlock():
    """The same A -> B -> C chain with no C -> A edge must not trigger."""
    sim, engine = make_stub()
    ab = TupleBuffer(sim, 4, name="ab", producer="A", consumer="B")
    bc = TupleBuffer(sim, 4, name="bc", producer="B", consumer="C")
    engine.register_buffer(ab)
    engine.register_buffer(bc)

    def a():
        yield from ab.put([(i,) for i in range(4)])
        yield from ab.put([(99,)])  # blocks, but C is not waiting on A

    sim.spawn(a())
    detector = DeadlockDetector(engine)
    found = []

    def run_detector():
        yield sim.timeout(1.0)
        found.append(detector.check_once())

    sim.spawn(run_detector())
    sim.run()
    assert found == [None]
    assert engine.osp_stats.deadlocks_resolved == 0


def test_deadlock_resolution_emits_trace_event():
    """With a Tracer installed, resolving a cycle records an osp event
    carrying the victim buffer and the cycle size."""
    from repro.obs import Tracer

    sim, engine = make_stub()
    tracer = Tracer(sim)
    b1 = TupleBuffer(sim, 2, name="b1", producer="X", consumer="Y")
    b2 = TupleBuffer(sim, 2, name="b2", producer="Y", consumer="X")
    engine.register_buffer(b1)
    engine.register_buffer(b2)

    def x():
        yield from b1.put([(1,), (2,)])
        yield from b1.put([(3,)])  # blocks

    def y():
        yield from b2.put([(1,), (2,)])
        yield from b2.put([(3,)])  # blocks

    sim.spawn(x())
    sim.spawn(y())

    def run_detector():
        yield sim.timeout(1.0)
        DeadlockDetector(engine).check_once()

    sim.spawn(run_detector())
    sim.run()
    events = [e for e in tracer.events if e["type"] == "osp.deadlock_resolved"]
    assert len(events) == 1
    assert events[0]["buffer"] in ("b1", "b2")
    assert events[0]["cycle_size"] == 2


def test_materialised_buffer_accepts_unbounded_puts():
    sim, engine = make_stub()
    buf = TupleBuffer(sim, 2, producer="P", consumer="C")
    buf.materialize()
    times = []

    def producer():
        for i in range(100):
            yield from buf.put([(i,)])
        times.append(sim.now)

    sim.spawn(producer())
    sim.run()
    assert times == [0.0]
