"""Unit tests for the analytic window-of-opportunity model (section 3.2)."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osp.wop import (
    OPERATOR_PHASES,
    OverlapClass,
    WoPProfile,
    expected_gain,
)


def test_progress_bounds_validated():
    profile = WoPProfile(OverlapClass.FULL)
    with pytest.raises(ValueError):
        expected_gain(profile, -0.1)
    with pytest.raises(ValueError):
        expected_gain(profile, 1.1)


def test_full_overlap_saves_everything_until_done():
    profile = WoPProfile(OverlapClass.FULL)
    assert expected_gain(profile, 0.0) == 1.0
    assert expected_gain(profile, 0.99) == 1.0
    assert expected_gain(profile, 1.0) == 0.0


def test_linear_overlap_decays_with_progress():
    profile = WoPProfile(OverlapClass.LINEAR)
    assert expected_gain(profile, 0.0) == 1.0
    assert expected_gain(profile, 0.25) == pytest.approx(0.75)
    assert expected_gain(profile, 1.0) == 0.0


def test_step_overlap_falls_at_first_output():
    profile = WoPProfile(OverlapClass.STEP)
    assert expected_gain(profile, 0.0) == 1.0
    assert expected_gain(profile, 0.01) == 0.0


def test_step_with_buffering_widens_window():
    profile = WoPProfile(OverlapClass.STEP, buffer_fraction=0.3)
    assert expected_gain(profile, 0.2) == 1.0
    assert expected_gain(profile, 0.31) == 0.0


def test_spike_shares_only_at_zero():
    profile = WoPProfile(OverlapClass.SPIKE)
    assert expected_gain(profile, 0.0) == 1.0
    assert expected_gain(profile, 1e-9) == 0.0


def test_spike_with_buffering_becomes_step():
    """Figure 4b: 'an ordered table scan that buffers N tuples can be
    converted from spike to step.'"""
    profile = WoPProfile(OverlapClass.SPIKE, buffer_fraction=0.1)
    assert expected_gain(profile, 0.05) == 1.0
    assert expected_gain(profile, 0.2) == 0.0


def test_materialization_converts_spike_to_linear():
    """Figure 4b: materialisation converts spike to linear 'albeit with a
    smaller effective slope'."""
    profile = WoPProfile(
        OverlapClass.SPIKE, materialized=True, materialize_efficiency=0.8
    )
    assert expected_gain(profile, 0.0) == pytest.approx(0.8)
    assert expected_gain(profile, 0.5) == pytest.approx(0.4)
    assert expected_gain(profile, 1.0) == 0.0


def test_operator_phase_classification_matches_paper():
    """Spot-check the section 3.2 operator classification table."""
    phases = dict(OPERATOR_PHASES["hash_join"])
    assert phases["build"] is OverlapClass.FULL
    assert phases["probe"] is OverlapClass.STEP
    assert OPERATOR_PHASES["single_aggregate"][0][1] is OverlapClass.FULL
    assert OPERATOR_PHASES["table_scan_unordered"][0][1] is OverlapClass.LINEAR
    assert OPERATOR_PHASES["table_scan_ordered"][0][1] is OverlapClass.SPIKE
    assert OPERATOR_PHASES["sort"][0] == ("sort", OverlapClass.FULL)
    rid, fetch = OPERATOR_PHASES["unclustered_index_scan"]
    assert rid[1] is OverlapClass.FULL and fetch[1] is OverlapClass.LINEAR


@settings(max_examples=60, deadline=None)
@given(
    cls=st.sampled_from(list(OverlapClass)),
    buffer_fraction=st.floats(0, 1),
    p1=st.floats(0, 1),
    p2=st.floats(0, 1),
)
def test_property_gain_is_monotone_nonincreasing(cls, buffer_fraction, p1, p2):
    """Later arrivals can never save MORE than earlier ones."""
    profile = WoPProfile(cls, buffer_fraction=buffer_fraction)
    lo, hi = sorted((p1, p2))
    assert expected_gain(profile, lo) >= expected_gain(profile, hi)


@settings(max_examples=60, deadline=None)
@given(
    cls=st.sampled_from(list(OverlapClass)),
    progress=st.floats(0, 1),
)
def test_property_gain_in_unit_interval(cls, progress):
    profile = WoPProfile(cls)
    assert 0.0 <= expected_gain(profile, progress) <= 1.0
