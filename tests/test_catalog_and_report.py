"""Remaining unit coverage: catalog errors, report rendering, CLI."""

import pytest

from repro.harness.__main__ import main as harness_main
from repro.harness.report import Series, render_breakdown
from repro.hw.host import Host, HostConfig
from repro.relational.schema import Schema
from repro.storage.catalog import Catalog, TableInfo
from repro.storage.file import BlockStore, HeapFile
from repro.storage.manager import StorageManager


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------
def make_info(name="t"):
    store = BlockStore()
    return TableInfo(
        name=name,
        schema=Schema.of("a:int"),
        heap=HeapFile(store, name, rows_per_page=4),
    )


def test_catalog_add_and_lookup():
    catalog = Catalog()
    info = make_info()
    catalog.add_table(info)
    assert catalog.table("t") is info
    assert catalog.table_schema("t").names == ["a"]
    assert "t" in catalog and "x" not in catalog
    assert catalog.tables() == ["t"]


def test_catalog_duplicate_rejected():
    catalog = Catalog()
    catalog.add_table(make_info())
    with pytest.raises(ValueError):
        catalog.add_table(make_info())


def test_catalog_missing_table_error_names_candidates():
    catalog = Catalog()
    catalog.add_table(make_info("orders"))
    with pytest.raises(KeyError) as err:
        catalog.table("order")
    assert "orders" in str(err.value)


def test_catalog_missing_index_error():
    host = Host(HostConfig())
    sm = StorageManager(host)
    sm.create_table("t", Schema.of("a:int"))
    with pytest.raises(KeyError):
        sm.catalog.index("t", "nope")


def test_catalog_drop_table():
    catalog = Catalog()
    catalog.add_table(make_info())
    catalog.drop_table("t")
    assert "t" not in catalog
    catalog.drop_table("t")  # idempotent


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------
def test_series_alignment_with_missing_points():
    series = Series("T", "x", "y")
    series.add_point("a", 1, 10)
    series.add_point("b", 2, 20)  # 'b' skipped x=1
    text = series.render()
    assert "T" in text and "-" in text


def test_series_curve_access():
    series = Series("T", "x", "y")
    series.add_point("a", 1, 10)
    series.add_point("a", 2, 30)
    assert series.curve("a") == [10, 30]
    with pytest.raises(KeyError):
        series.curve("zzz")


def test_series_overwrites_same_x():
    series = Series("T", "x", "y")
    series.add_point("a", 1, 10)
    series.add_point("a", 1, 99)
    assert series.curve("a") == [99]


def test_series_number_formatting():
    series = Series("T", "x", "y")
    series.add_point("a", 0, 1234.5)
    series.add_point("a", 1, 0.123456)
    series.add_point("a", 2, 0)
    text = series.render()
    assert "1,234" in text or "1,235" in text
    assert "0.123" in text


def test_render_breakdown_table():
    text = render_breakdown(
        "title", {"Q1": {"x": 0.5, "y": 0.25}}, ["x", "y", "z"]
    )
    assert "0.50" in text and "0.00" in text and "Q1" in text


def test_series_notes_rendered():
    series = Series("T", "x", "y", notes=["hello note"])
    series.add_point("a", 1, 1)
    assert "hello note" in series.render()


# ---------------------------------------------------------------------------
# Harness CLI
# ---------------------------------------------------------------------------
def test_cli_list(capsys):
    assert harness_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out and "ablation-replay" in out


def test_cli_unknown_figure():
    with pytest.raises(SystemExit):
        harness_main(["nope"])


def test_cli_runs_one_figure(capsys):
    assert harness_main(["overhead", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "ratio" in out
    assert "cells:" in out


def test_cli_cache_roundtrip(capsys, tmp_path):
    args = ["overhead", "--scale", "smoke",
            "--cache", "--cache-dir", str(tmp_path / "cache")]
    assert harness_main(args) == 0
    cold = capsys.readouterr().out
    assert "cache-hits=0" in cold
    assert harness_main(args) == 0
    warm = capsys.readouterr().out
    assert "hit-rate=100%" in warm
    # Cached cells render the figure byte-identically.
    body = lambda text: [
        line for line in text.splitlines()
        if "wall]" not in line and "cells:" not in line
    ]
    assert body(warm) == body(cold)


def test_cli_cache_clear(capsys, tmp_path):
    args = ["overhead", "--scale", "smoke",
            "--cache", "--cache-dir", str(tmp_path / "cache")]
    assert harness_main(args) == 0
    capsys.readouterr()
    assert harness_main(args + ["--cache-clear"]) == 0
    out = capsys.readouterr().out
    assert "cache-hits=0" in out
