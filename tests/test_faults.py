"""The fault-injection subsystem: plan DSL, injector, storage hardening.

Covers the deterministic fault-schedule DSL, the disk-hook and
process-fault delivery channels, the buffer pool's bounded
retry-with-backoff for transient errors, checksum verification, and the
Interrupted-during-I/O cleanup (no leaked pin, no stale in-flight slot).
"""

import pytest

from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.faults import (
    DiskReadError,
    FaultInjector,
    FaultPlan,
    PageCorruptError,
    QueryAborted,
    random_plan,
)
from repro.faults.errors import FaultError
from repro.obs import Tracer
from repro.relational.expressions import AggSpec
from repro.relational.plans import Aggregate, TableScan


def count_plan():
    return Aggregate(TableScan("r"), [AggSpec("count", None, "n")])


def make_engine(sm, **overrides):
    return QPipeEngine(sm, QPipeConfig(osp_enabled=True, **overrides))


def spawn_catching(host, engine, plan, name="client"):
    """Spawn a client that records either the result rows or the typed
    failure (an unhandled exception in a process crashes the simulation,
    exactly so tests cannot silently swallow real bugs)."""
    box = {}

    def client():
        try:
            result = yield from engine.execute(plan)
        except FaultError as exc:
            box["error"] = exc
            return None
        box["rows"] = result.rows
        return result

    box["proc"] = host.sim.spawn(client(), name=name)
    return box


# ---------------------------------------------------------------------------
# The plan DSL
# ---------------------------------------------------------------------------
def test_fault_plan_builders_and_describe():
    plan = (
        FaultPlan()
        .disk_error(at=5.0, table="r", transient=True)
        .latency_spike(at=2.0, extra_latency=1.5)
        .corrupt_page(at=9.0, transient=False)
        .crash_query(at=30.0, target=1)
        .crash_scanner(at=40.0, table="r")
        .disconnect(at=45.0, target=0)
    )
    assert len(plan) == 6
    lines = plan.describe()
    assert len(lines) == 6
    # describe() is time-ordered.
    assert "slow" in lines[0] and "disk error on r" in lines[1]


def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan().disk_error(at=0.0, count=0)
    from repro.faults.plan import DiskFault, ProcessFault

    with pytest.raises(ValueError):
        DiskFault(at=0.0, kind="explode")
    with pytest.raises(ValueError):
        ProcessFault(at=0.0, kind="meteor")


def test_random_plan_is_deterministic():
    a = random_plan(17, tables=["r", "s"])
    b = random_plan(17, tables=["r", "s"])
    assert a.disk_faults == b.disk_faults
    assert a.process_faults == b.process_faults
    assert random_plan(18).disk_faults != a.disk_faults


# ---------------------------------------------------------------------------
# Disk-channel faults through a live engine
# ---------------------------------------------------------------------------
def test_transient_disk_error_is_retried_to_success(db):
    host, sm, r_rows, _s = db
    engine = make_engine(sm)
    tracer = Tracer(host.sim)
    plan = FaultPlan().disk_error(at=0.0, table="r", transient=True, count=2)
    injector = FaultInjector(plan).attach(engine)

    rows = engine.run_query(count_plan())
    assert rows == [(len(r_rows),)]
    assert [e["type"] for e in injector.fired].count("disk_error") == 2
    retries = [e for e in tracer.events if e["type"] == "fault.retry"]
    assert len(retries) == 2
    assert engine.queries_aborted == 0


def test_permanent_disk_error_aborts_with_typed_failure(db):
    host, sm, _r, _s = db
    engine = make_engine(sm)
    plan = FaultPlan().disk_error(at=0.0, table="r", transient=False)
    FaultInjector(plan).attach(engine)

    box = spawn_catching(host, engine, count_plan())
    host.sim.run()
    assert isinstance(box["error"], DiskReadError)
    assert not box["error"].transient
    assert engine.queries_aborted == 1
    assert engine.active_queries == 0
    # All resources reclaimed: no pins, no table locks.
    assert sm.pool._pins == {}
    assert all(not grants for grants in sm.locks._granted.values())


def test_dead_block_poisons_every_later_read(db):
    host, sm, _r, _s = db
    engine = make_engine(sm)
    plan = FaultPlan().disk_error(at=0.0, table="r", transient=False)
    injector = FaultInjector(plan).attach(engine)

    first = spawn_catching(host, engine, count_plan())
    host.sim.run()
    assert isinstance(first["error"], DiskReadError)
    # The armed fault is consumed, but the block stays dead.
    second = spawn_catching(host, engine, count_plan())
    host.sim.run()
    assert isinstance(second["error"], DiskReadError)
    assert engine.queries_aborted == 2


def test_latency_spike_slows_but_does_not_fail(db):
    host, sm, r_rows, _s = db
    baseline_engine = make_engine(sm)
    start = host.sim.now
    assert baseline_engine.run_query(count_plan()) == [(len(r_rows),)]
    baseline = host.sim.now - start

    engine = make_engine(sm)
    sm.pool.invalidate_file(sm.table_file_id("r"))
    plan = FaultPlan().latency_spike(
        at=0.0, extra_latency=5.0, table="r", count=3
    )
    injector = FaultInjector(plan).attach(engine)
    start = host.sim.now
    assert engine.run_query(count_plan()) == [(len(r_rows),)]
    spiked = min(3, sm.num_pages("r"))  # one spike per page read
    assert len(injector.fired) == spiked
    assert host.sim.now - start >= baseline + spiked * 5.0 - 1e-9


def test_transient_corruption_retries_clean(db):
    host, sm, r_rows, _s = db
    engine = make_engine(sm)
    tracer = Tracer(host.sim)
    plan = FaultPlan().corrupt_page(at=0.0, table="r", transient=True)
    FaultInjector(plan).attach(engine)

    rows = engine.run_query(count_plan())
    assert rows == [(len(r_rows),)]
    kinds = [e["type"] for e in tracer.events if e["type"].startswith("fault.")]
    assert "fault.page_corrupt" in kinds and "fault.retry" in kinds


def test_permanent_corruption_aborts(db):
    host, sm, _r, _s = db
    engine = make_engine(sm)
    plan = FaultPlan().corrupt_page(at=0.0, table="r", transient=False)
    FaultInjector(plan).attach(engine)

    box = spawn_catching(host, engine, count_plan())
    host.sim.run()
    assert isinstance(box["error"], PageCorruptError)
    assert sm.pool._pins == {}


# ---------------------------------------------------------------------------
# Storage-level units
# ---------------------------------------------------------------------------
def test_blockstore_corruption_marks(db):
    _host, sm, _r, _s = db
    fid = sm.table_file_id("r")
    # Transient: the first failed verify clears the mark.
    sm.store.corrupt_block(fid, 0, permanent=False)
    with pytest.raises(PageCorruptError) as exc:
        sm.store.verify_block(fid, 0)
    assert exc.value.transient
    sm.store.verify_block(fid, 0)  # clean again
    # Permanent: every verify fails.
    sm.store.corrupt_block(fid, 1, permanent=True)
    for _ in range(2):
        with pytest.raises(PageCorruptError) as exc:
            sm.store.verify_block(fid, 1)
        assert not exc.value.transient


def test_bufferpool_retry_exhaustion_gives_up(db):
    host, sm, _r, _s = db
    sm.pool.max_retries = 2
    tracer = Tracer(host.sim)
    attempts = []

    def always_fail(file_id, block_no):
        from repro.faults.injector import FaultAction

        attempts.append(block_no)
        return FaultAction(
            error=DiskReadError(file_id, block_no, transient=True)
        )

    host.disk.fault_hook = always_fail
    fid = sm.table_file_id("r")

    outcome = {}

    def reader():
        try:
            yield from sm.pool.get_page(fid, 0)
        except FaultError as exc:
            outcome["error"] = exc

    host.sim.spawn(reader())
    host.sim.run()
    assert isinstance(outcome["error"], DiskReadError)
    assert len(attempts) == 3  # first try + max_retries
    kinds = [e["type"] for e in tracer.events if e["type"].startswith("fault.")]
    assert kinds.count("fault.retry") == 2
    assert kinds.count("fault.giveup") == 1
    assert sm.pool._in_flight == {}


def test_interrupted_io_leaves_no_pin_or_inflight_slot(db):
    """A process killed mid-read must not leak its pin or leave a stale
    in-flight coalescing slot behind."""
    host, sm, _r, _s = db
    fid = sm.table_file_id("r")

    def pinned_reader():
        yield from sm.pool.get_page(fid, 0, pin=True)

    proc = host.sim.spawn(pinned_reader())
    host.sim.schedule(
        host.disk.seek_time / 2, proc.interrupt, "killed mid-read"
    )
    host.sim.run()
    assert not proc.alive
    assert sm.pool._pins == {}
    assert sm.pool._in_flight == {}
    # The page is still readable afterwards by anyone else.
    ok = host.sim.spawn(sm.pool.get_page(fid, 0))
    host.sim.run()
    assert ok.triggered and ok.ok


def test_interrupted_on_hit_path_releases_pin(db):
    """The pin taken on a buffer-hit is released when the hit-cost wait
    is interrupted."""
    host, sm, _r, _s = db
    fid = sm.table_file_id("r")
    warm = host.sim.spawn(sm.pool.get_page(fid, 0))
    host.sim.run()
    assert warm.triggered and warm.ok

    def hit_reader():
        yield from sm.pool.get_page(fid, 0, pin=True)

    proc = host.sim.spawn(hit_reader())
    host.sim.schedule(
        sm.pool.page_hit_cost / 2, proc.interrupt, "killed on hit path"
    )
    host.sim.run()
    assert not proc.alive
    assert sm.pool._pins == {}


# ---------------------------------------------------------------------------
# Process-channel faults
# ---------------------------------------------------------------------------
def test_crash_query_picks_deterministic_victim(big_db):
    host, sm, _r, _s = big_db
    engine = make_engine(sm)
    plan = FaultPlan().crash_query(at=0.05, target=0)
    injector = FaultInjector(plan).attach(engine)

    boxes = [
        spawn_catching(host, engine, count_plan(), name=f"client-{i}")
        for i in range(2)
    ]
    host.sim.run()
    # Exactly one died, with the injected QueryAborted; sorted-id order
    # makes the victim the first-submitted query.
    assert isinstance(boxes[0]["error"], QueryAborted)
    assert "injected process crash" in str(boxes[0]["error"])
    assert "error" not in boxes[1] and "rows" in boxes[1]
    assert injector.fired[0]["type"] == "query_crash"
    assert engine.active_queries == 0
    assert sm.pool._pins == {}
    assert all(not grants for grants in sm.locks._granted.values())


def test_disconnect_interrupts_registered_client(big_db):
    host, sm, _r, _s = big_db
    engine = make_engine(sm)
    plan = FaultPlan().disconnect(at=0.05, target=0)
    injector = FaultInjector(plan).attach(engine)
    outcome = {}

    def client():
        from repro.sim import Interrupted

        try:
            result = yield from engine.execute(count_plan())
        except Interrupted:
            outcome["status"] = "disconnected"
            return None
        outcome["status"] = "completed"
        return result

    proc = host.sim.spawn(client(), name="client-0")
    injector.register_client(proc)
    host.sim.run()
    assert outcome["status"] == "disconnected"
    assert engine.queries_aborted == 1
    assert engine.active_queries == 0
    assert all(not grants for grants in sm.locks._granted.values())
