"""End-to-end tests for generalized sharing (:mod:`repro.folding`).

Correctness is non-negotiable: per-query results under folding must be
byte-identical to the unfolded run (and agree with the iterator and
push engines), and the trace invariants must hold even when the fold
donor -- the host query whose widened scan everyone rides -- is
cancelled or crashed mid-fold.
"""

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.faults import FaultInjector, FaultPlan
from repro.faults.errors import FaultError, QueryAborted
from repro.harness.config import SMOKE, build_wisconsin_system
from repro.hw.host import Host, HostConfig
from repro.obs import InvariantChecker, Tracer
from repro.pushexec import PushEngine
from repro.relational.expressions import AggSpec, Between, Col
from repro.relational.plans import Aggregate, GroupBy, TableScan
from repro.storage.manager import StorageManager
from repro.workloads.wisconsin import WisconsinScale, load_wisconsin


def build_db(buffer_pages: int = 64, **host_overrides):
    host = Host(HostConfig(**host_overrides))
    sm = StorageManager(host, buffer_pages=buffer_pages)
    load_wisconsin(sm, WisconsinScale(big_rows=300), seed=7)
    return host, sm


def fold_plans(count: int = 4):
    """A subsumption chain over big1, widest first: whole-query
    ``Aggregate`` folds plus one ``GroupBy`` whose scan folds."""
    plans = []
    for i in range(count):
        pred = Between(Col("unique1"), 0, 280 - 40 * i)
        aggs = [
            AggSpec("sum", Col("unique2"), "s"),
            AggSpec("count", Col("unique1"), "c"),
        ]
        if i % 3 == 2:
            plans.append(GroupBy(TableScan("big1", pred), ["tenpercent"], aggs))
        else:
            plans.append(Aggregate(TableScan("big1", pred), aggs))
    return plans


def run_concurrent(host, engine, plans, stagger: float = 0.0):
    procs = []

    def client(plan, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(plan)
        return result

    for i, plan in enumerate(plans):
        procs.append(host.sim.spawn(client(plan, i * stagger), name=f"q{i}"))
    host.sim.run_until_done(procs)
    return [p.value.rows for p in procs]


def make_engine(sm, folded: bool) -> QPipeEngine:
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    engine.config.fold_enabled = folded
    return engine


# ---------------------------------------------------------------------------
# Differential: folded vs unfolded vs iterator vs push, per query
# ---------------------------------------------------------------------------
def test_folded_results_identical_across_engines():
    plans = fold_plans(5)

    host_ref, sm_ref = build_db()
    reference = [IteratorEngine(sm_ref).run_query(p) for p in plans]

    host_push, sm_push = build_db()
    pushed = [PushEngine(sm_push).run_query(p) for p in plans]
    assert pushed == reference

    for stagger in (0.0, 0.008):
        host_off, sm_off = build_db()
        unfolded = run_concurrent(
            host_off, make_engine(sm_off, folded=False), plans, stagger
        )
        host_on, sm_on = build_db()
        engine = make_engine(sm_on, folded=True)
        folded = run_concurrent(host_on, engine, plans, stagger)

        # Byte-identity: exact rows in exact order, per query.
        assert folded == unfolded
        assert [sorted(rows) for rows in folded] == [
            sorted(rows) for rows in reference
        ]
        if stagger == 0.0:
            # Simultaneous arrival: everything folds into one group.
            stats = engine.fold_stats
            assert stats.groups == 1
            assert stats.folded == len(plans) - 1
            assert stats.members["scan"] >= 1 and stats.members["agg"] >= 2
            assert stats.banks >= 1
            assert stats.pages_saved > 0


def test_fold_trace_invariants_clean():
    host, sm = build_db()
    tracer = Tracer(host.sim)
    engine = make_engine(sm, folded=True)
    run_concurrent(host, engine, fold_plans(5), stagger=0.008)
    assert engine.fold_stats.folded >= 3
    attaches = [
        e for e in tracer.events
        if e["type"] == "packet.attach"
        and e["mechanism"].startswith("fold-")
    ]
    assert len(attaches) == engine.fold_stats.folded
    assert InvariantChecker(tracer.events).check() == []


# ---------------------------------------------------------------------------
# Acceptance: >=25% folded throughput gain at >=4 similar queries
# ---------------------------------------------------------------------------
def test_fold_gain_and_invariance_at_smoke_scale():
    from repro.harness.experiments import fold_sharing

    series, sharing, lines = fold_sharing(
        SMOKE, counts=(4, 6), similarities=(1.0,)
    )
    gains = series.curve("gain (%)")
    assert all(gain >= 25.0 for gain in gains), gains
    assert lines and all(line.endswith("yes") for line in lines)
    assert all(rate == 1.0 for rate in sharing.curve("fold rate"))


# ---------------------------------------------------------------------------
# Donor failure mid-fold: exactly-once delivery must survive
# ---------------------------------------------------------------------------
def _run_with_donor_failure(fail):
    """Run 4 foldable queries; *fail* kills the donor (query 1) mid-scan.

    Returns (per-client outcome boxes, engine, tracer events).
    """
    host, sm = build_db()
    tracer = Tracer(host.sim)
    engine = make_engine(sm, folded=True)
    plans = fold_plans(4)
    boxes = [{} for _ in plans]

    def client(i, plan):
        try:
            result = yield from engine.execute(plan)
        except (FaultError, QueryAborted) as exc:
            boxes[i]["error"] = exc
            return None
        boxes[i]["rows"] = result.rows
        return result

    procs = [
        host.sim.spawn(client(i, plan), name=f"q{i}")
        for i, plan in enumerate(plans)
    ]
    fail(host, engine)
    host.sim.run_until_done(procs)
    return boxes, engine, tracer.events


def _reference_rows():
    host, sm = build_db()
    return [IteratorEngine(sm).run_query(p) for p in fold_plans(4)]


def test_donor_cancelled_mid_fold():
    """Cancelling the host query unfolds the members into private
    re-executions that still deliver exactly-once."""
    boxes, engine, events = _run_with_donor_failure(
        lambda host, engine: host.sim.schedule(
            0.015, lambda: engine.cancel(1, "client gave up")
        )
    )
    reference = _reference_rows()
    assert isinstance(boxes[0].get("error"), QueryAborted)
    for i in (1, 2, 3):
        assert sorted(boxes[i]["rows"]) == sorted(reference[i])
    assert engine.fold_stats.folded == 3
    assert InvariantChecker(events).check() == []


def test_donor_crashed_mid_fold():
    """An injected process crash of the donor behaves like PR 2's
    host-death path: members detach, redispatch, and finish correctly."""
    def crash(host, engine):
        FaultInjector(FaultPlan().crash_query(at=0.015, target=0)).attach(engine)

    boxes, engine, events = _run_with_donor_failure(crash)
    reference = _reference_rows()
    assert isinstance(boxes[0].get("error"), QueryAborted)
    for i in (1, 2, 3):
        assert sorted(boxes[i]["rows"]) == sorted(reference[i])
    assert engine.fold_stats.folded == 3
    assert InvariantChecker(events).check() == []


def test_donor_deadline_mid_fold():
    host, sm = build_db()
    tracer = Tracer(host.sim)
    engine = make_engine(sm, folded=True)
    plans = fold_plans(4)
    boxes = [{} for _ in plans]

    def client(i, plan, deadline=None):
        try:
            result = yield from engine.execute(plan, deadline=deadline)
        except QueryAborted as exc:
            boxes[i]["error"] = exc
            return None
        boxes[i]["rows"] = result.rows
        return result

    procs = [
        host.sim.spawn(
            client(i, plan, deadline=0.015 if i == 0 else None), name=f"q{i}"
        )
        for i, plan in enumerate(plans)
    ]
    host.sim.run_until_done(procs)
    reference = _reference_rows()
    assert isinstance(boxes[0].get("error"), QueryAborted)
    for i in (1, 2, 3):
        assert sorted(boxes[i]["rows"]) == sorted(reference[i])
    assert InvariantChecker(tracer.events).check() == []


# ---------------------------------------------------------------------------
# WoP rejections: cost model, closed window, sealed ring
# ---------------------------------------------------------------------------
def test_cost_model_rejects_expensive_residuals():
    """With an absurdly slow CPU the residual filtering outweighs the
    saved I/O, so the WoP cost rule refuses the fold -- and the queries
    still run (unfolded) to the right answer."""
    host, sm = build_db(cpu_per_tuple=10.0)
    engine = make_engine(sm, folded=True)
    plans = fold_plans(3)
    rows = run_concurrent(host, engine, plans)
    assert engine.fold_stats.folded == 0
    assert engine.fold_stats.rejected["cost"] >= 2

    host_ref, sm_ref = build_db(cpu_per_tuple=10.0)
    reference = [IteratorEngine(sm_ref).run_query(p) for p in plans]
    assert [sorted(r) for r in rows] == [sorted(r) for r in reference]


def test_window_closes_for_non_subsumed_late_arrivals():
    """A late query whose predicate the wide scan does not cover cannot
    widen a scan that already filtered pages: it must run privately."""
    host, sm = build_db()
    engine = make_engine(sm, folded=True)
    aggs = [AggSpec("count", Col("unique1"), "c")]
    plans = [
        Aggregate(TableScan("big1", Between(Col("unique1"), 0, 100)), aggs),
        # Disjoint range, arriving after pages were filtered.
        Aggregate(TableScan("big1", Between(Col("unique1"), 200, 299)), aggs),
    ]
    rows = run_concurrent(host, engine, plans, stagger=0.035)
    assert engine.fold_stats.rejected["window-closed"] == 1
    assert engine.fold_stats.folded == 0
    host_ref, sm_ref = build_db()
    reference = [IteratorEngine(sm_ref).run_query(p) for p in plans]
    assert [sorted(r) for r in rows] == [sorted(r) for r in reference]


def test_sealed_ring_rejects_late_joiner():
    """Once the survivor ring overflows (tiny replay budget), mid-scan
    joins are refused -- correct results, no partial replay."""
    host, sm = build_db()
    engine = QPipeEngine(
        sm, QPipeConfig(osp_enabled=True, replay_tuples=8)
    )
    engine.config.fold_enabled = True
    plans = fold_plans(3)
    rows = run_concurrent(host, engine, plans, stagger=0.02)
    stats = engine.fold_stats
    assert stats.rejected["ring-dropped"] >= 1
    host_ref, sm_ref = build_db()
    reference = [IteratorEngine(sm_ref).run_query(p) for p in plans]
    assert [sorted(r) for r in rows] == [sorted(r) for r in reference]
