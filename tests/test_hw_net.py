"""Network fabric model: framing, NIC queueing, loopback, determinism.

Timings use a deliberately tiny bandwidth (one frame per simulated
second) so expected clock values are round numbers.
"""

import pytest

from repro.hw.net import NetConfig, NetStats, Network
from repro.sim import Simulator

FRAME = 8192


def _net(latency=0.0, hosts=("a", "b", "c")):
    sim = Simulator()
    config = NetConfig(latency=latency, bandwidth=float(FRAME))
    return sim, Network(sim, config, hosts)


def _send(sim, net, src, dst, nbytes, delay=0.0):
    def proc():
        if delay:
            yield sim.timeout(delay)
        wire = yield from net.transfer(src, dst, nbytes)
        return (sim.now, wire)

    return sim.spawn(proc(), name=f"xfer-{src}-{dst}")


# ---------------------------------------------------------------------------
# Config and framing
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        NetConfig(latency=-0.1)
    with pytest.raises(ValueError):
        NetConfig(bandwidth=0.0)
    with pytest.raises(ValueError):
        NetConfig(frame_bytes=0)


def test_messages_charge_whole_frames():
    _sim, net = _net()
    assert net.frames_for(0) == 1  # even empty messages ride one frame
    assert net.frames_for(1) == 1
    assert net.frames_for(FRAME) == 1
    assert net.frames_for(FRAME + 1) == 2
    with pytest.raises(ValueError):
        net.frames_for(-1)
    # Serialization charges wire bytes (whole frames), not payload.
    assert net.serialize_time(1) == net.serialize_time(FRAME) == 1.0
    assert net.transfer_time(1) == 2.0  # send + recv, zero latency


def test_attach_and_lookup():
    sim = Simulator()
    net = Network(sim, NetConfig(), ("a",))
    with pytest.raises(ValueError):
        net.attach("a")
    with pytest.raises(KeyError):
        net.nic("nowhere")
    net.attach("b")
    assert net.hosts == ["a", "b"]


# ---------------------------------------------------------------------------
# Transfer semantics
# ---------------------------------------------------------------------------
def test_transfer_is_store_and_forward():
    sim, net = _net(latency=0.25)
    proc = _send(sim, net, "a", "b", 100)
    sim.run()
    finished, wire = proc.value
    # 1 s sender serialization + 0.25 s propagation + 1 s receiver.
    assert finished == pytest.approx(2.25)
    assert wire == FRAME
    assert net.stats.messages == 1
    assert net.stats.frames == 1
    assert net.stats.bytes_on_wire == FRAME
    assert net.stats.per_link[("a", "b")] == [1, FRAME]


def test_loopback_is_free():
    sim, net = _net()
    proc = _send(sim, net, "a", "a", 10_000_000)
    sim.run()
    finished, wire = proc.value
    assert finished == 0.0 and wire == 0
    assert net.stats.loopback_messages == 1
    assert net.stats.messages == 0 and net.stats.bytes_on_wire == 0


def test_sender_nic_serializes_concurrent_sends():
    """Two messages out of one host share its send queue: the second
    cannot start serializing until the first is on the wire."""
    sim, net = _net()
    p1 = _send(sim, net, "a", "b", 100)
    p2 = _send(sim, net, "a", "c", 100)
    sim.run()
    # msg1: tx [0,1], rx on b [1,2]; msg2: tx [1,2], rx on c [2,3].
    assert p1.value[0] == pytest.approx(2.0)
    assert p2.value[0] == pytest.approx(3.0)


def test_receiver_nic_serializes_concurrent_arrivals():
    """Fan-in: senders serialize in parallel on their own NICs, then
    queue on the shared receiver NIC."""
    sim, net = _net()
    p1 = _send(sim, net, "b", "a", 100)
    p2 = _send(sim, net, "c", "a", 100)
    sim.run()
    finishes = sorted(p.value[0] for p in (p1, p2))
    assert finishes == [pytest.approx(2.0), pytest.approx(3.0)]


def test_fabric_is_deterministic():
    """The same spawn schedule replays to identical completion times
    and identical counters on a fresh simulator."""

    def run_once():
        sim, net = _net(latency=0.125)
        procs = [
            _send(sim, net, "a", "b", 3 * FRAME),
            _send(sim, net, "b", "c", 100, delay=0.5),
            _send(sim, net, "a", "c", FRAME + 1),
            _send(sim, net, "c", "a", 42, delay=1.0),
        ]
        sim.run()
        stats = net.stats
        return (
            [p.value for p in procs],
            (stats.messages, stats.frames, stats.bytes_on_wire),
            sorted(stats.per_link.items()),
        )

    assert run_once() == run_once()


def test_stats_default_state():
    stats = NetStats()
    assert stats.messages == 0 and stats.per_link == {}
