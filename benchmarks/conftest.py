"""Benchmark plumbing: each benchmark regenerates one paper figure.

Every benchmark runs its experiment once per measurement round (the
simulation is deterministic, so more rounds only measure wall-clock
noise) and writes the rendered figure to ``benchmarks/out/<name>.txt``
so results survive output capturing.
"""

import pathlib

import pytest

from repro.harness import collected_tracers, disable_tracing, enable_tracing
from repro.obs import InvariantChecker

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def invariant_tracing():
    """Trace every system the benchmark builds; after the figure's own
    assertions pass, replay each trace through the InvariantChecker.

    Tracing is passive, so the rendered figures in ``benchmarks/out/``
    are identical with and without this fixture.
    """
    enable_tracing()
    yield
    try:
        tracers = collected_tracers()
        assert tracers, "tracing captured no simulated systems"
        for tracer in tracers:
            InvariantChecker(tracer.events).assert_ok()
    finally:
        disable_tracing()


@pytest.fixture
def figure_sink():
    """Persist a rendered figure; returns the path written."""

    def write(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return write


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
