"""Benchmark plumbing: each benchmark regenerates one paper figure.

Every benchmark runs its experiment once per measurement round (the
simulation is deterministic, so more rounds only measure wall-clock
noise) and writes the rendered figure to ``benchmarks/out/<name>.txt``
so results survive output capturing.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def figure_sink():
    """Persist a rendered figure; returns the path written."""

    def write(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return write


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
