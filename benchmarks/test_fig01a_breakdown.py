"""Figure 1a: time breakdown of five TPC-H queries by table read."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig1a_breakdown


def test_fig01a_breakdown(benchmark, figure_sink):
    rows, rendered = run_once(benchmark, lambda: fig1a_breakdown(SMOKE))
    figure_sink("fig01a_breakdown", rendered)
    for fractions in rows.values():
        tracked = sum(
            fractions.get(t, 0) for t in ("lineitem", "orders", "part")
        )
        assert tracked > 0.5
