"""Figure 9: order-sensitive clustered index scans under merge-join."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig9_ordered_scans

GAPS = (0, 20, 40, 60, 80, 100, 120, 140)


def test_fig09_ordered_scans(benchmark, figure_sink):
    series = run_once(
        benchmark, lambda: fig9_ordered_scans(SMOKE, interarrivals=GAPS)
    )
    figure_sink("fig09_ordered_scans", series.render())
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    assert all(q <= b + 1e-6 for q, b in zip(qpipe, baseline))
    assert qpipe[2] < 0.75 * baseline[2]  # mid-sweep sharing
    assert qpipe[-1] == baseline[-1]  # no overlap left: curves converge
