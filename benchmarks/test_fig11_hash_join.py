"""Figure 11: hash-join build-phase sharing, then scan-only sharing."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig11_hash_join

GAPS = (0, 20, 40, 60, 80, 100, 120, 140)


def test_fig11_hash_join(benchmark, figure_sink):
    series = run_once(
        benchmark, lambda: fig11_hash_join(SMOKE, interarrivals=GAPS)
    )
    figure_sink("fig11_hash_join", series.render())
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    assert all(q <= b + 1e-6 for q, b in zip(qpipe, baseline))
    # Two regimes: full sharing early, partial (scan-only) sharing later.
    assert qpipe[1] == qpipe[0]
    assert qpipe[-2] > qpipe[0]
