"""Figure 12: TPC-H mix throughput, three systems, 1-12 clients."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig12_throughput

CLIENTS = (1, 2, 4, 6, 8, 10, 12)


def test_fig12_full_throughput(benchmark, figure_sink, invariant_tracing):
    series = run_once(
        benchmark, lambda: fig12_throughput(SMOKE, client_counts=CLIENTS)
    )
    figure_sink("fig12_full_throughput", series.render())
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    dbmsx = series.curve("DBMS X")
    # One client: disk-bound, all systems equivalent.
    assert abs(qpipe[0] - dbmsx[0]) / dbmsx[0] < 0.15
    # High concurrency: QPipe well ahead of both (paper: up to 2x).
    high = slice(4, None)
    assert sum(qpipe[high]) > 1.5 * sum(baseline[high])
    assert sum(qpipe[high]) > 1.5 * sum(dbmsx[high])
    # QPipe's throughput grows with the client count overall.
    assert qpipe[-1] > 2 * qpipe[0]
