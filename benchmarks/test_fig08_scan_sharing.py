"""Figure 8: disk blocks read vs interarrival, 2/4/8 Q6 clients."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig8_scan_sharing

GAPS = (0, 10, 20, 40, 60, 80, 100)


def test_fig08_scan_sharing(benchmark, figure_sink, invariant_tracing):
    out = run_once(
        benchmark,
        lambda: fig8_scan_sharing(SMOKE, client_counts=(2, 4, 8),
                                  interarrivals=GAPS),
    )
    text = "\n\n".join(out[n].render() for n in (2, 4, 8))
    figure_sink("fig08_scan_sharing", text)
    for count in (2, 4, 8):
        series = out[count]
        baseline = series.curve("Baseline")
        qpipe = series.curve("QPipe w/OSP")
        assert baseline[0] == qpipe[0]  # lockstep arrivals share anyway
        assert all(q <= b for q, b in zip(qpipe, baseline))
        # The paper's headline saving (63% at 20s for 8 clients) -- we
        # require a substantial saving without pinning the exact number.
        assert qpipe[2] < 0.75 * baseline[2]
