"""Section 5 claim: the OSP coordinator's overhead is negligible when
queries present no sharing opportunities."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, osp_overhead


def test_osp_overhead(benchmark, figure_sink):
    result = run_once(benchmark, lambda: osp_overhead(SMOKE, queries=6))
    text = (
        "OSP coordinator overhead (no sharing opportunities):\n"
        f"  makespan OSP on : {result['makespan_osp_on']:.1f} s\n"
        f"  makespan OSP off: {result['makespan_osp_off']:.1f} s\n"
        f"  ratio           : {result['overhead_ratio']:.4f}"
    )
    figure_sink("osp_overhead", text)
    assert abs(result["overhead_ratio"] - 1.0) < 0.05
