"""Figure 13: average response time vs think time, 10 clients."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig13_think_time

THINK = (0, 20, 40, 60, 240)


def test_fig13_think_time(benchmark, figure_sink):
    series = run_once(
        benchmark,
        lambda: fig13_think_time(SMOKE, think_times=THINK, clients=10),
    )
    figure_sink("fig13_think_time", series.render())
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    # QPipe keeps response times low even at full load...
    assert qpipe[0] < 0.5 * baseline[0]
    # ...and the baseline recovers as think time relieves the system.
    assert baseline[-1] < baseline[0]
