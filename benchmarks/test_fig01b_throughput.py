"""Figure 1b: TPC-H throughput, QPipe vs DBMS X (the intro figure)."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE
from repro.harness.experiments import fig1b_throughput

CLIENTS = (1, 4, 8, 12)


def test_fig01b_throughput(benchmark, figure_sink, invariant_tracing):
    series = run_once(
        benchmark, lambda: fig1b_throughput(SMOKE, client_counts=CLIENTS)
    )
    figure_sink("fig01b_throughput", series.render())
    qpipe, dbmsx = series.curve("QPipe w/OSP"), series.curve("DBMS X")
    # Equal when disk-bound at one client; ~2x at high concurrency.
    assert abs(qpipe[0] - dbmsx[0]) / dbmsx[0] < 0.15
    assert qpipe[-1] > 1.5 * dbmsx[-1]
