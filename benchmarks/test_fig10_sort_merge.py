"""Figure 10: Wisconsin 3-way sort-merge join sharing."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig10_sort_merge

GAPS = (0, 20, 40, 60, 80, 100, 120, 140)


def test_fig10_sort_merge(benchmark, figure_sink):
    series = run_once(
        benchmark, lambda: fig10_sort_merge(SMOKE, interarrivals=GAPS)
    )
    figure_sink("fig10_sort_merge", series.render())
    qpipe = series.curve("QPipe w/OSP")
    baseline = series.curve("Baseline")
    assert all(q <= b + 1e-6 for q, b in zip(qpipe, baseline))
    # The paper's 2x speedup plateau.
    assert qpipe[2] <= 0.65 * baseline[2]
