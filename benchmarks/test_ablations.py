"""Ablations for DESIGN.md's design decisions."""

from benchmarks.conftest import run_once
from repro.harness import (
    SMOKE,
    ablation_replacement_policies,
    ablation_replay_ring,
)


def test_ablation_replacement_policies(benchmark, figure_sink):
    series = run_once(
        benchmark,
        lambda: ablation_replacement_policies(
            SMOKE,
            policies=("lru", "mru", "clock", "lru-k", "2q", "arc"),
            clients=4,
            interarrival=20.0,
        ),
    )
    figure_sink("ablation_replacement", series.render())
    values = series.curve("Baseline")
    assert len(values) == 6 and all(v > 0 for v in values)


def test_ablation_replay_ring(benchmark, figure_sink):
    series = run_once(
        benchmark,
        lambda: ablation_replay_ring(
            SMOKE, ring_sizes=(16, 256, 4096, 65536), interarrival=40.0
        ),
    )
    figure_sink("ablation_replay_ring", series.render())
    attaches = series.curve("attaches")
    assert attaches[-1] >= attaches[0]


def test_ablation_circular_wraparound(benchmark, figure_sink):
    from repro.harness import ablation_circular_wraparound

    series = run_once(
        benchmark,
        lambda: ablation_circular_wraparound(
            SMOKE, clients=4, interarrivals=(0, 20, 60, 100)
        ),
    )
    figure_sink("ablation_wraparound", series.render())
    circular = series.curve("circular")
    naive = series.curve("attach-at-start")
    # Wrap-around shares at every gap; naive only at lockstep arrivals.
    assert circular[0] == naive[0]
    assert all(c <= n for c, n in zip(circular, naive))
    assert circular[1] < 0.6 * naive[1]


def test_ablation_late_activation(benchmark, figure_sink):
    from repro.harness import ablation_late_activation

    series = run_once(
        benchmark, lambda: ablation_late_activation(SMOKE, clients=4)
    )
    figure_sink("ablation_late_activation", series.render())
    on = series.curve("late-activation on")
    off = series.curve("late-activation off")
    assert on[0] <= off[0]  # makespan no worse with late activation
