"""Figure 4a (measured): windows of opportunity per overlap class."""

from benchmarks.conftest import run_once
from repro.harness import SMOKE, fig4_wop

POINTS = (0.0, 0.25, 0.5, 0.75, 0.95)


def test_fig04_wop(benchmark, figure_sink):
    series = run_once(benchmark, lambda: fig4_wop(SMOKE, POINTS))
    figure_sink("fig04_wop", series.render())
    assert all(g == 1.0 for g in series.curve("full(aggregate)"))
    assert series.curve("spike(ordered scan)")[1] == 0
    linear = series.curve("linear(scan)")
    assert linear == sorted(linear, reverse=True)  # monotone decay
