#!/usr/bin/env python3
"""SQL on QPipe: run TPC-H-style SQL text on the simulated engine.

The library ships a small SQL-92 subset (`repro.sql`) that compiles to
the same logical plans the engines execute, with predicate pushdown and
hash-join selection — so SQL queries share work through OSP exactly like
hand-built plans.

Run:  python examples/sql_queries.py
"""

from repro import QPipeConfig, QPipeEngine, StorageManager
from repro.hw.host import Host, HostConfig
from repro.sql import run
from repro.workloads.tpch import TpchScale, load_tpch

QUERIES = {
    "pricing summary (Q1-like)": """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity)     AS sum_qty,
               COUNT(*)            AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-09-01'
        GROUP BY l_returnflag, l_linestatus
        ORDER BY sum_qty DESC
    """,
    "revenue forecast (Q6-like)": """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1995-01-01'
          AND l_shipdate < DATE '1996-01-01'
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
    "priority counts over a join (Q4-like)": """
        SELECT o_orderpriority, COUNT(*) AS order_count
        FROM orders JOIN lineitem ON o_orderkey = l_orderkey
        WHERE o_orderdate >= DATE '1995-03-01'
          AND o_orderdate < DATE '1995-06-01'
          AND l_commitdate < l_receiptdate
        GROUP BY o_orderpriority
        ORDER BY order_count DESC
    """,
    "top customers by spend": """
        SELECT c_custkey, SUM(o_totalprice) AS spend
        FROM customer JOIN orders ON c_custkey = o_custkey
        GROUP BY c_custkey
        HAVING COUNT(*) > 2
        ORDER BY spend DESC
        LIMIT 5
    """,
}


def main() -> None:
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=256)
    load_tpch(sm, TpchScale(factor=0.05), seed=11)
    engine = QPipeEngine(sm, QPipeConfig())
    for title, sql in QUERIES.items():
        rows = run(engine, sql)
        print(f"-- {title}")
        for row in rows[:6]:
            print("  ", row)
        if len(rows) > 6:
            print(f"   ... ({len(rows)} rows)")
        print()


if __name__ == "__main__":
    main()
