#!/usr/bin/env python3
"""Quickstart: build a database, run queries, watch two queries share.

This walks the public API end to end:

1. create a simulated host and storage manager,
2. define and load a table,
3. run a query on the QPipe engine,
4. submit two *overlapping* queries concurrently and observe on-demand
   simultaneous pipelining (OSP) attach one to the other.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AggSpec,
    Aggregate,
    Col,
    GroupBy,
    Host,
    HostConfig,
    QPipeConfig,
    QPipeEngine,
    Schema,
    StorageManager,
    TableScan,
)


def build_database(slow_disk: bool = False) -> StorageManager:
    """A fresh simulated machine with one loaded table.

    ``slow_disk`` stretches the scan to ~15 simulated seconds so the
    sharing demo has a window for the second query to arrive in.
    """
    config = HostConfig(disk_transfer_time=0.12) if slow_disk else HostConfig()
    host = Host(config)
    sm = StorageManager(host, buffer_pages=64)
    schema = Schema.of("id:int", "region:int", "amount:float", "pad:str:180")
    rng = random.Random(7)
    rows = [
        (i, i % 8, round(rng.uniform(1, 500), 2), f"order-{i:06d}")
        for i in range(5000)
    ]
    sm.create_table("sales", schema)
    sm.load_table("sales", rows)
    print(f"loaded sales: {sm.num_rows('sales')} rows, "
          f"{sm.num_pages('sales')} pages")
    return sm


def single_query(sm: StorageManager) -> None:
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    plan = GroupBy(
        TableScan("sales", predicate=Col("amount") > 250.0),
        ["region"],
        [AggSpec("count", None, "n"), AggSpec("sum", Col("amount"), "rev")],
    )
    rows = engine.run_query(plan)
    print("\nrevenue by region (amount > 250):")
    for region, n, rev in rows:
        print(f"  region {region}: {n:4d} sales, {rev:12.2f} total")


def concurrent_sharing(sm: StorageManager) -> None:
    """Two identical aggregates, ten (simulated) seconds apart.

    The second query attaches to the first as a *satellite* (the paper's
    Figure 6b) and both finish together, paying for one table scan.
    """
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    sim = sm.sim

    def plan():
        return Aggregate(
            TableScan("sales"), [AggSpec("avg", Col("amount"), "avg_amt")]
        )

    def client(delay):
        yield sim.timeout(delay)
        result = yield from engine.execute(plan())
        return result

    first = sim.spawn(client(0.0))
    second = sim.spawn(client(10.0))
    sim.run_until_done([first, second])

    print("\nconcurrent identical aggregates:")
    for name, proc in (("first", first), ("second", second)):
        r = proc.value
        print(f"  {name}: submitted t={r.submitted_at:6.1f}s  "
              f"finished t={r.finished_at:6.1f}s  avg={r.rows[0][0]:.2f}")
    pages = sm.num_pages("sales")
    blocks = sm.host.disk.stats.blocks_read
    print(f"  operator-level attaches: {engine.osp_stats.total_attaches}")
    print(f"  disk blocks read: {blocks} for a {pages}-page table "
          f"(two independent scans would read {2 * pages})")


def main() -> None:
    single_query(build_database())
    concurrent_sharing(build_database(slow_disk=True))


if __name__ == "__main__":
    main()
