#!/usr/bin/env python3
"""Transactions, write-ahead logging, and crash recovery.

The paper delegates "the necessary transactional support" to BerkeleyDB;
this library implements it: a write-ahead log on a dedicated device, a
steal/write-through page policy, and undo-only crash recovery.

Run:  python examples/transactions.py
"""

from repro import Host, HostConfig, Schema, StorageManager
from repro.storage import TransactionManager
from repro.storage.page import RID


def main() -> None:
    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=64)
    sm.create_table("accounts", Schema.of("id:int", "balance:int"))
    sm.load_table("accounts", [(i, 100) for i in range(10)])
    tm = TransactionManager(sm)

    def balances():
        return {
            row[0]: row[1]
            for row in sm.catalog.table("accounts").heap.all_rows()
        }

    def committed_transfer():
        """Move 30 from account 0 to account 1, atomically."""
        txn = tm.begin()
        yield from tm.update(txn, "accounts", RID(0, 0), (0, 70))
        yield from tm.update(txn, "accounts", RID(0, 1), (1, 130))
        yield from tm.commit(txn)

    def aborted_transfer():
        """Start a transfer, then change our mind."""
        txn = tm.begin()
        yield from tm.update(txn, "accounts", RID(0, 2), (2, 0))
        yield from tm.abort(txn)

    def doomed_transfer():
        """A transfer in flight when the machine dies."""
        txn = tm.begin()
        yield from tm.update(txn, "accounts", RID(0, 3), (3, 0))
        yield from tm.update(txn, "accounts", RID(0, 4), (4, 200))
        # ... crash before commit

    for step in (committed_transfer, aborted_transfer, doomed_transfer):
        proc = host.sim.spawn(step())
        host.sim.run()
    print("before crash     :", balances())
    print("  (accounts 3/4 show the doomed transfer's dirty writes)")

    tm.simulate_crash()
    proc = host.sim.spawn(tm.recover())
    host.sim.run()
    print("after recovery   :", balances())
    print(f"  losers undone  : {proc.value}")
    print(f"  log records    : {len(tm.wal.records)} "
          f"(flushed through lsn {tm.wal.flushed_lsn})")

    final = balances()
    assert final[0] == 70 and final[1] == 130  # committed work survives
    assert final[2] == 100                     # abort rolled back
    assert final[3] == 100 and final[4] == 100  # crash recovery undid
    print("\natomicity + durability verified.")


if __name__ == "__main__":
    main()
