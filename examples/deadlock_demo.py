#!/usr/bin/env python3
"""Pipeline deadlock detection and resolution (section 4.3.3).

Simultaneous pipelining forms a shared dataflow graph across queries;
crossed producer/consumer dependencies can deadlock (the two-scan
scenario of section 3.3).  This demo builds the crossed dependency
directly from engine buffers, lets it wedge, and shows the waits-for
deadlock detector resolve it by materialising one buffer.

Run:  python examples/deadlock_demo.py
"""

from repro.engine.buffers import TupleBuffer
from repro.osp.deadlock import DeadlockDetector
from repro.osp.stats import OspStats
from repro.sim import Simulator


class MiniEngine:
    """The minimal engine surface the detector needs."""

    def __init__(self, sim):
        self.sim = sim
        self.osp_stats = OspStats()
        self.buffers = []
        self.active_queries = 1

    def live_buffers(self):
        return [b for b in self.buffers if not b.closed]


def main() -> None:
    sim = Simulator()
    engine = MiniEngine(sim)

    # Producer X feeds consumer Y through two buffers with crossed
    # ordering requirements: X insists on finishing b1 before touching
    # b2, while Y insists on reading b2 first.
    b1 = TupleBuffer(sim, capacity_tuples=4, name="b1", producer="X",
                     consumer="Y")
    b2 = TupleBuffer(sim, capacity_tuples=4, name="b2", producer="X",
                     consumer="Y")
    engine.buffers += [b1, b2]
    log = []

    def producer_x():
        yield from b1.put([("r", i) for i in range(4)])
        log.append((sim.now, "X filled b1"))
        yield from b1.put([("r", 99)])  # blocks: b1 full, Y not reading
        log.append((sim.now, "X finished b1 (unblocked!)"))
        yield from b2.put([("s", 0)])
        b1.close()
        b2.close()
        log.append((sim.now, "X done"))

    def consumer_y():
        batch = yield from b2.get()  # blocks: b2 empty -- the cross
        log.append((sim.now, f"Y got b2 batch {batch}"))
        while True:
            batch = yield from b1.get()
            if batch is None:
                break
        log.append((sim.now, "Y done"))

    px = sim.spawn(producer_x(), name="X")
    py = sim.spawn(consumer_y(), name="Y")

    detector = DeadlockDetector(engine, period=1.0)

    def watchdog():
        yield sim.timeout(1.0)
        print("t=1.0s: both processes wedged; running the detector...")
        cycle = detector.check_once()
        if cycle:
            names = ", ".join(b.name for b in cycle)
            print(f"  waits-for cycle found; candidate buffers: {names}")
            print(f"  resolved by materialising "
                  f"'{detector.resolved[0].name}' "
                  "(its back-pressure is removed, as if spilled to disk)")

    sim.spawn(watchdog(), name="watchdog")
    sim.run_until_done([px, py])

    print("\nevent log:")
    for t, message in log:
        print(f"  t={t:4.1f}s  {message}")
    print(f"\ndeadlocks resolved: {engine.osp_stats.deadlocks_resolved}")


if __name__ == "__main__":
    main()
