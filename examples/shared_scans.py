#!/usr/bin/env python3
"""Circular scan sharing: many clients, different predicates, one scan.

The Figure 8 story at example scale: several clients scan the same table
with *different* selection predicates at staggered arrival times.  With
OSP enabled, every scan attaches to the table's shared circular scanner
(section 4.3.1 of the paper) and sets its own termination point one full
cycle later; the disk reads each page once per cycle regardless of how
many queries consume it.  With OSP disabled, every query pays for its
own pass.

Run:  python examples/shared_scans.py
"""

from repro import (
    AggSpec,
    Aggregate,
    Col,
    Host,
    HostConfig,
    QPipeConfig,
    QPipeEngine,
    Schema,
    StorageManager,
    TableScan,
)

N_CLIENTS = 6
INTERARRIVAL = 8.0  # seconds between client arrivals


def build_database() -> StorageManager:
    host = Host(HostConfig(disk_transfer_time=0.12, disk_seek_time=0.024))
    sm = StorageManager(host, buffer_pages=32)
    schema = Schema.of("id:int", "grp:int", "v:float", "pad:str:180")
    rows = [(i, i % N_CLIENTS, float(i % 97), f"row{i:06d}")
            for i in range(6000)]
    sm.create_table("events", schema)
    sm.load_table("events", rows)
    return sm


def run_workload(osp_enabled: bool):
    sm = build_database()
    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=osp_enabled))
    sim = sm.sim

    def client(idx):
        yield sim.timeout(idx * INTERARRIVAL)
        # Each client filters a different group: no two queries compute
        # the same thing, yet their page reads are fully shareable.
        plan = Aggregate(
            TableScan("events", predicate=Col("grp") == idx),
            [AggSpec("sum", Col("v"), "s"), AggSpec("count", None, "n")],
        )
        result = yield from engine.execute(plan)
        return result

    procs = [sim.spawn(client(i)) for i in range(N_CLIENTS)]
    sim.run_until_done(procs)
    results = [p.value for p in procs]
    return sm, engine, results


def main() -> None:
    print(f"{N_CLIENTS} clients, one every {INTERARRIVAL:.0f}s, "
          "each aggregating a different slice of the same table\n")
    for osp in (False, True):
        sm, engine, results = run_workload(osp)
        label = "QPipe w/OSP" if osp else "Baseline (OSP off)"
        makespan = max(r.finished_at for r in results)
        blocks = sm.host.disk.stats.blocks_read
        print(f"{label}:")
        print(f"  makespan          : {makespan:8.1f} s")
        print(f"  disk blocks read  : {blocks:5d} "
              f"(table is {sm.num_pages('events')} pages)")
        if osp:
            print(f"  circular attaches : "
                  f"{engine.osp_stats.attaches['fscan-circular']}")
            print(f"  pages delivered to extra consumers for free: "
                  f"{engine.osp_stats.shared_page_deliveries}")
        # Answers are identical either way.
        total = sum(r.rows[0][1] for r in results)
        print(f"  rows aggregated   : {total}\n")


if __name__ == "__main__":
    main()
