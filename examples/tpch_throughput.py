#!/usr/bin/env python3
"""A miniature Figure 12: TPC-H mix throughput for the three systems.

Runs the paper's closed-loop TPC-H workload (queries Q1, Q4, Q6, Q8,
Q12, Q13, Q14, Q19 with qgen-randomised predicates, zero think time) at
a few client counts on all three systems:

* QPipe w/OSP  -- the paper's contribution,
* Baseline     -- the same engine with OSP disabled,
* DBMS X       -- a conventional iterator engine with a stronger pool.

Run:  python examples/tpch_throughput.py         (about a minute)
"""

from repro.harness import SMOKE, fig12_throughput
from repro.harness.config import with_overrides

CLIENTS = (1, 4, 8, 12)


def main() -> None:
    scale = with_overrides(SMOKE, queries_per_client=2)
    print(
        "TPC-H mix throughput (smoke scale: "
        f"~{int(15000 * scale.tpch_factor * 4):,} lineitem rows, "
        f"{scale.buffer_pages}-page pool)\n"
    )
    series = fig12_throughput(scale, client_counts=CLIENTS)
    print(series.render())
    qpipe = series.curve("QPipe w/OSP")
    dbmsx = series.curve("DBMS X")
    print(
        f"\nQPipe vs DBMS X at {CLIENTS[-1]} clients: "
        f"{qpipe[-1] / dbmsx[-1]:.1f}x "
        "(the paper reports up to 2x)"
    )


if __name__ == "__main__":
    main()
