"""The fault injector: arms a :class:`FaultPlan` against a live engine.

The injector has two delivery channels:

* a **disk hook** installed on the host's :class:`~repro.hw.disk.Disk`.
  On every read the hook consumes the earliest armed matching disk fault
  and translates it into a :class:`FaultAction` (an error to raise, extra
  latency to charge) or a corruption mark on the
  :class:`~repro.storage.file.BlockStore` (which the buffer pool's
  checksum verification then trips over);
* **process-fault processes**, one per scheduled crash/disconnect, that
  sleep until their virtual timestamp and then pick a victim
  deterministically (sorted candidates, index modulo count).

Determinism: faults are consumed in disk-request order under a virtual
clock, victims are chosen by sorted ids -- two runs with the same plan,
seed and workload inject byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set, Tuple

from repro.faults.errors import DiskReadError, QueryAborted
from repro.faults.plan import DiskFault, FaultPlan, LogFault, ProcessFault


@dataclass
class FaultAction:
    """What the disk hook tells the Disk to do for one read."""

    error: Optional[BaseException] = None
    extra_latency: float = 0.0


class FaultInjector:
    """Arms one :class:`FaultPlan` against one QPipe engine."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.engine = None
        self.sm = None
        self.sim = None
        #: Dead blocks: every further read of these fails permanently.
        self._dead_blocks: Set[Tuple[int, int]] = set()
        #: Armed disk faults with remaining counts, in schedule order.
        self._armed: List[List] = []  # [DiskFault, remaining_count]
        self._clients: List[Any] = []
        #: Live lineage logs eligible for log-device faults, in
        #: registration order (victims picked by sorted query id).
        self._lineage_logs: List[Any] = []
        #: Log of fired faults (for reports/tests); deterministic values.
        self.fired: List[dict] = []

    # ------------------------------------------------------------------
    def attach(self, engine) -> "FaultInjector":
        """Install the disk hook and start the process-fault timers."""
        self.engine = engine
        self.sm = engine.sm
        self.sim = engine.sim
        self._armed = [
            [fault, fault.count]
            for fault in sorted(
                self.plan.disk_faults,
                key=lambda f: (f.at, f.kind, f.table or "", f.count),
            )
        ]
        self.sm.host.disk.fault_hook = self._disk_hook
        for i, fault in enumerate(
            sorted(self.plan.process_faults,
                   key=lambda f: (f.at, f.kind, f.target))
        ):
            self.sim.spawn(
                self._process_fault(fault), name=f"fault-{fault.kind}-{i}"
            )
        for i, fault in enumerate(
            sorted(self.plan.log_faults,
                   key=lambda f: (f.at, f.kind, f.target))
        ):
            self.sim.spawn(
                self._log_fault(fault), name=f"fault-log-{fault.kind}-{i}"
            )
        return self

    def register_client(self, process) -> None:
        """Make a client process eligible for ``disconnect`` faults."""
        self._clients.append(process)

    def register_lineage_log(self, log) -> None:
        """Make a per-query lineage log eligible for log-device faults."""
        self._lineage_logs.append(log)

    # ------------------------------------------------------------------
    # Disk channel
    # ------------------------------------------------------------------
    def _table_file_id(self, table: Optional[str]) -> Optional[int]:
        if table is None:
            return None
        return self.sm.table_file_id(table)

    def _record(self, etype: str, **fields) -> None:
        entry = {"ts": self.sim.now, "type": etype}
        entry.update(fields)
        self.fired.append(entry)
        self.sim.tracer.fault(etype, **fields)

    def _disk_hook(self, file_id: int, block_no: int) -> Optional[FaultAction]:
        key = (file_id, block_no)
        if key in self._dead_blocks:
            return FaultAction(
                error=DiskReadError(file_id, block_no, transient=False)
            )
        now = self.sim.now
        for entry in self._armed:
            fault, remaining = entry
            if fault.at > now:
                continue
            scope = self._table_file_id(fault.table)
            if scope is not None and scope != file_id:
                continue
            entry[1] = remaining - 1
            if entry[1] <= 0:
                self._armed.remove(entry)
            return self._fire_disk(fault, file_id, block_no)
        return None

    def _fire_disk(
        self, fault: DiskFault, file_id: int, block_no: int
    ) -> Optional[FaultAction]:
        if fault.kind == "slow":
            self._record(
                "disk_slow", file=file_id, block=block_no,
                extra=fault.extra_latency,
            )
            return FaultAction(extra_latency=fault.extra_latency)
        if fault.kind == "error":
            self._record(
                "disk_error", file=file_id, block=block_no,
                transient=fault.transient,
            )
            if not fault.transient:
                self._dead_blocks.add((file_id, block_no))
            return FaultAction(
                error=DiskReadError(file_id, block_no,
                                    transient=fault.transient)
            )
        # "corrupt": the read itself succeeds but delivers a page that
        # fails its checksum; the mark lives on the BlockStore and the
        # buffer pool verifies after every read.
        self._record(
            "page_corrupt", file=file_id, block=block_no,
            transient=fault.transient,
        )
        self.sm.store.corrupt_block(
            file_id, block_no, permanent=not fault.transient
        )
        return None

    # ------------------------------------------------------------------
    # Process channel
    # ------------------------------------------------------------------
    def _process_fault(self, fault: ProcessFault):
        delay = max(0.0, fault.at - self.sim.now)
        yield self.sim.timeout(delay)
        if fault.kind == "crash_query":
            self._crash_query(fault)
        elif fault.kind == "crash_scanner":
            self._crash_scanner(fault)
        elif fault.kind == "disconnect":
            self._disconnect(fault)

    def _crash_query(self, fault: ProcessFault) -> None:
        active = getattr(self.engine, "_active", {})
        candidates = sorted(active)
        if not candidates:
            return
        query_id = candidates[fault.target % len(candidates)]
        query = active[query_id]
        self._record("query_crash", query=query_id)
        self.engine.abort_query(
            query,
            "injected process crash",
            QueryAborted(query_id, "injected process crash"),
        )

    def _crash_scanner(self, fault: ProcessFault) -> None:
        # Engines without micro-engines (IteratorEngine, PushEngine) have
        # no shared scanner threads to crash.
        engines = getattr(self.engine, "engines", None)
        fscan = engines.get("fscan") if engines is not None else None
        manager = getattr(fscan, "_circular", None)
        if manager is None or not manager.scans:
            return
        if fault.table is not None:
            scan = manager.scans.get(fault.table)
        else:
            tables = sorted(manager.scans)
            scan = manager.scans[tables[fault.target % len(tables)]]
        if scan is None:
            return
        proc = getattr(scan, "scanner_proc", None)
        if proc is None or not proc.alive:
            return
        self._record(
            "scanner_crash", table=scan.table, position=scan.current_page
        )
        proc.interrupt("injected scanner crash")

    def _disconnect(self, fault: ProcessFault) -> None:
        alive = sorted(
            (p for p in self._clients if p.alive), key=lambda p: p.name
        )
        if not alive:
            return
        victim = alive[fault.target % len(alive)]
        self._record("client_disconnect", client=victim.name)
        victim.interrupt("client disconnected")

    # ------------------------------------------------------------------
    # Log-device channel
    # ------------------------------------------------------------------
    def _log_fault(self, fault: LogFault):
        delay = max(0.0, fault.at - self.sim.now)
        yield self.sim.timeout(delay)
        logs = sorted(self._lineage_logs, key=lambda l: l.query_id)
        if not logs:
            return
        victim = logs[fault.target % len(logs)]
        if fault.kind == "error":
            victim.fail_next_flush = True
            victim.fail_transient = fault.transient
            self._record(
                "log_error", query=victim.query_id, transient=fault.transient
            )
        else:
            victim.tear_next_flush = True
            self._record("log_torn", query=victim.query_id)
