"""Typed fault and abort errors.

Every failure the fault-injection subsystem can surface is a subclass of
:class:`FaultError`, so engine code distinguishes *injected/operational*
failures (retry, abort, isolate) from programming errors (crash the
simulation).  The ``transient`` flag drives the storage layer's bounded
retry: transient faults are worth retrying in virtual time, permanent
ones (dead block, corrupt page that stays corrupt) are not.
"""

from __future__ import annotations

from repro.sim.errors import SimulationError


class FaultError(SimulationError):
    """Base class for injected/operational failures.

    Attributes:
        transient: whether a bounded retry may succeed.
    """

    transient = False


class DiskReadError(FaultError):
    """A disk read failed (media error, controller timeout, ...)."""

    def __init__(self, file_id: int, block_no: int, transient: bool = True):
        self.file_id = file_id
        self.block_no = block_no
        self.transient = transient
        flavor = "transient" if transient else "permanent"
        super().__init__(
            f"{flavor} read error on block ({file_id}, {block_no})"
        )


class PageCorruptError(FaultError):
    """A page failed its checksum after a read."""

    def __init__(self, file_id: int, block_no: int, transient: bool = False):
        self.file_id = file_id
        self.block_no = block_no
        self.transient = transient
        flavor = "transient" if transient else "permanent"
        super().__init__(
            f"{flavor} checksum failure on page ({file_id}, {block_no})"
        )


class LogWriteError(FaultError):
    """A lineage-log flush failed at the log device.

    Recovery treats the log as best-effort: a write failure disables
    further lineage recording for the query (degrading a later crash to
    a clean restart) but never fails the query itself.
    """

    def __init__(self, query_id: int, transient: bool = True):
        self.query_id = query_id
        self.transient = transient
        flavor = "transient" if transient else "permanent"
        super().__init__(
            f"{flavor} write error on query {query_id}'s lineage log"
        )


class QueryAborted(FaultError):
    """A query was aborted (fault, deadline, cancellation, disconnect).

    Raised out of :meth:`QPipeEngine.execute` after the engine has torn
    the packet tree down and reclaimed the query's resources.
    """

    transient = False

    def __init__(self, query_id: int, reason: str = "aborted"):
        self.query_id = query_id
        self.reason = reason
        super().__init__(f"query {query_id} aborted: {reason}")
