"""Deterministic fault injection for the QPipe reproduction.

Faults are declared in virtual time via :class:`FaultPlan` and armed
against a live engine by :class:`FaultInjector`; everything downstream
(retry, abort, OSP failure isolation) keys off the typed errors in
:mod:`repro.faults.errors`.
"""

from repro.faults.errors import (
    DiskReadError,
    FaultError,
    LogWriteError,
    PageCorruptError,
    QueryAborted,
)
from repro.faults.injector import FaultAction, FaultInjector
from repro.faults.plan import (
    DiskFault,
    FaultPlan,
    LogFault,
    ProcessFault,
    random_plan,
)

__all__ = [
    "DiskFault",
    "DiskReadError",
    "FaultAction",
    "FaultError",
    "FaultPlan",
    "FaultInjector",
    "LogFault",
    "LogWriteError",
    "PageCorruptError",
    "ProcessFault",
    "QueryAborted",
    "random_plan",
]
