"""The fault-schedule DSL.

A :class:`FaultPlan` is a declarative, fully deterministic schedule of
faults in *virtual* time.  Disk faults arm at a virtual timestamp and
fire on the next matching disk read(s); process faults (query crashes,
scanner crashes, client disconnects) fire at their timestamp against a
deterministically chosen victim.  Because victims are selected by sorted
order and index -- never by Python object identity or wall-clock state --
the same plan against the same workload produces bit-identical runs.

Build plans either explicitly::

    plan = (FaultPlan()
            .disk_error(at=5.0, transient=True)
            .corrupt_page(at=9.0, table="lineitem", transient=False)
            .crash_query(at=30.0, target=1)
            .disconnect(at=45.0, target=0))

or randomly from a seed with :func:`random_plan`, which is what the
chaos harness does (``python -m repro.harness chaos --fault-seed N``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class DiskFault:
    """One armed disk fault: fires on the next matching read(s).

    Args:
        at: virtual time at/after which the fault arms.
        kind: ``error`` (read fails), ``slow`` (latency spike), or
            ``corrupt`` (page checksum failure after a "successful" read).
        table: restrict to reads of this table's heap file (None: any read).
        transient: transient faults are consumed by one read and a retry
            succeeds; permanent ones poison the block for good.
        extra_latency: added service seconds for ``slow`` faults.
        count: how many matching reads this entry affects.
    """

    at: float
    kind: str = "error"
    table: Optional[str] = None
    transient: bool = True
    extra_latency: float = 0.0
    count: int = 1

    def __post_init__(self):
        if self.kind not in ("error", "slow", "corrupt"):
            raise ValueError(f"unknown disk fault kind {self.kind!r}")
        if self.count < 1:
            raise ValueError("disk fault count must be >= 1")


@dataclass(frozen=True)
class ProcessFault:
    """One scheduled process-level fault.

    Args:
        at: virtual time the fault fires.
        kind: ``crash_query`` (abort a running query mid-flight),
            ``crash_scanner`` (kill a shared circular-scan thread), or
            ``disconnect`` (interrupt a registered client process).
        target: deterministic victim index into the sorted candidate list
            (wraps modulo the candidate count).
        table: for ``crash_scanner``, the scanned table (None: pick by
            ``target`` among the active scans, sorted by table name).
    """

    at: float
    kind: str = "crash_query"
    target: int = 0
    table: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ("crash_query", "crash_scanner", "disconnect"):
            raise ValueError(f"unknown process fault kind {self.kind!r}")


@dataclass(frozen=True)
class LogFault:
    """One scheduled lineage-log-device fault.

    Args:
        at: virtual time the fault arms.
        kind: ``error`` (the victim's next log flush raises a
            :class:`~repro.faults.errors.LogWriteError`; the query keeps
            running but stops recording lineage) or ``torn`` (the
            victim's next flush "succeeds" but its tail record lands
            torn -- a checksum mismatch that truncates the durable
            frontier at recovery time).
        target: deterministic victim index into the registered lineage
            logs, sorted by query id (wraps modulo the count).
        transient: reported flavour for ``error`` faults.
    """

    at: float
    kind: str = "error"
    target: int = 0
    transient: bool = True

    def __post_init__(self):
        if self.kind not in ("error", "torn"):
            raise ValueError(f"unknown log fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of disk, process, and log-device faults."""

    disk_faults: List[DiskFault] = field(default_factory=list)
    process_faults: List[ProcessFault] = field(default_factory=list)
    log_faults: List[LogFault] = field(default_factory=list)

    # -- fluent builders -------------------------------------------------
    def disk_error(
        self,
        at: float,
        table: Optional[str] = None,
        transient: bool = True,
        count: int = 1,
    ) -> "FaultPlan":
        self.disk_faults.append(
            DiskFault(at=at, kind="error", table=table,
                      transient=transient, count=count)
        )
        return self

    def latency_spike(
        self,
        at: float,
        extra_latency: float,
        table: Optional[str] = None,
        count: int = 1,
    ) -> "FaultPlan":
        self.disk_faults.append(
            DiskFault(at=at, kind="slow", table=table,
                      extra_latency=extra_latency, count=count)
        )
        return self

    def corrupt_page(
        self,
        at: float,
        table: Optional[str] = None,
        transient: bool = True,
        count: int = 1,
    ) -> "FaultPlan":
        self.disk_faults.append(
            DiskFault(at=at, kind="corrupt", table=table,
                      transient=transient, count=count)
        )
        return self

    def crash_query(self, at: float, target: int = 0) -> "FaultPlan":
        self.process_faults.append(
            ProcessFault(at=at, kind="crash_query", target=target)
        )
        return self

    def crash_scanner(
        self, at: float, table: Optional[str] = None, target: int = 0
    ) -> "FaultPlan":
        self.process_faults.append(
            ProcessFault(at=at, kind="crash_scanner", table=table,
                         target=target)
        )
        return self

    def disconnect(self, at: float, target: int = 0) -> "FaultPlan":
        self.process_faults.append(
            ProcessFault(at=at, kind="disconnect", target=target)
        )
        return self

    def log_error(
        self, at: float, target: int = 0, transient: bool = True
    ) -> "FaultPlan":
        self.log_faults.append(
            LogFault(at=at, kind="error", target=target, transient=transient)
        )
        return self

    def torn_record(self, at: float, target: int = 0) -> "FaultPlan":
        self.log_faults.append(
            LogFault(at=at, kind="torn", target=target)
        )
        return self

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return (
            len(self.disk_faults)
            + len(self.process_faults)
            + len(self.log_faults)
        )

    def describe(self) -> List[str]:
        """One human-readable line per scheduled fault, in time order."""
        lines = []
        for fault in sorted(self.disk_faults, key=lambda f: f.at):
            scope = f" on {fault.table}" if fault.table else ""
            flavor = "transient" if fault.transient else "permanent"
            lines.append(
                (fault.at, f"t={fault.at:.1f}s disk {fault.kind}{scope} "
                           f"({flavor}, x{fault.count})")
            )
        for fault in sorted(self.process_faults, key=lambda f: f.at):
            scope = f" on {fault.table}" if fault.table else ""
            lines.append(
                (fault.at,
                 f"t={fault.at:.1f}s {fault.kind}{scope} #{fault.target}")
            )
        for fault in sorted(self.log_faults, key=lambda f: f.at):
            flavor = (
                " (transient)" if fault.kind == "error" and fault.transient
                else " (permanent)" if fault.kind == "error" else ""
            )
            lines.append(
                (fault.at,
                 f"t={fault.at:.1f}s log {fault.kind}{flavor} "
                 f"#{fault.target}")
            )
        return [text for _at, text in sorted(lines, key=lambda p: p[0])]


def random_plan(
    seed: int,
    horizon: float = 200.0,
    disk_faults: int = 6,
    process_faults: int = 3,
    tables: Optional[List[str]] = None,
    log_faults: int = 0,
) -> FaultPlan:
    """A seeded random fault plan over ``[0, horizon)`` virtual seconds.

    The same ``seed`` always yields the same plan, which is the contract
    the chaos harness's determinism guarantee rests on.  ``log_faults``
    draws come *after* every disk and process draw, so enabling them
    never perturbs the disk/process schedule an existing seed produces.
    """
    rng = random.Random(seed)
    plan = FaultPlan()
    for _ in range(disk_faults):
        at = rng.uniform(0.0, horizon)
        table = rng.choice(tables) if tables and rng.random() < 0.5 else None
        roll = rng.random()
        if roll < 0.45:
            plan.disk_error(at, table=table,
                            transient=rng.random() < 0.8,
                            count=rng.randint(1, 3))
        elif roll < 0.75:
            plan.latency_spike(at, extra_latency=rng.uniform(0.5, 3.0),
                               table=table, count=rng.randint(1, 4))
        else:
            plan.corrupt_page(at, table=table,
                              transient=rng.random() < 0.6)
    for _ in range(process_faults):
        at = rng.uniform(horizon * 0.1, horizon)
        roll = rng.random()
        if roll < 0.4:
            plan.crash_query(at, target=rng.randint(0, 7))
        elif roll < 0.7:
            plan.crash_scanner(at)
        else:
            plan.disconnect(at, target=rng.randint(0, 7))
    for _ in range(log_faults):
        at = rng.uniform(horizon * 0.05, horizon)
        roll = rng.random()
        target = rng.randint(0, 7)
        if roll < 0.6:
            plan.log_error(at, target=target, transient=rng.random() < 0.7)
        else:
            plan.torn_record(at, target=target)
    return plan
