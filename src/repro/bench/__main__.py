"""CLI: ``python -m repro.bench [--json PATH] [--check BASELINE]``."""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.report import collect, compare, render_text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Wall-clock micro + macro benchmarks of the engine.",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write the result document to PATH")
    parser.add_argument("--micro-only", action="store_true",
                        help="skip the macro (fig8/fig12) suite")
    parser.add_argument("--macro-only", action="store_true",
                        help="skip the micro suite")
    parser.add_argument("--repeat", type=int, default=3,
                        help="samples per benchmark (default 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="warmup runs per benchmark (default 1)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON; exit 1 on "
                             "regression")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="regression threshold as a fraction "
                             "(default 0.30)")
    parser.add_argument("--macro-threshold", type=float, default=0.40,
                        help="regression threshold for macro.* benchmarks "
                             "(whole-figure wall-clock is noisier; "
                             "default 0.40)")
    args = parser.parse_args(argv)
    if args.micro_only and args.macro_only:
        parser.error("--micro-only and --macro-only are mutually exclusive")

    doc = collect(
        run_micro=not args.macro_only,
        run_macro=not args.micro_only,
        repeat=args.repeat,
        warmup=args.warmup,
        progress=lambda name: print(f"running {name} ...", file=sys.stderr),
    )
    print(render_text(doc))

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}", file=sys.stderr)

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        complaints = compare(
            doc, baseline, threshold=args.threshold,
            overrides={"macro.": args.macro_threshold},
        )
        if complaints:
            print("\nREGRESSIONS vs " + args.check + ":", file=sys.stderr)
            for line in complaints:
                print("  " + line, file=sys.stderr)
            return 1
        print(f"\nno regressions vs {args.check} "
              f"(threshold {args.threshold:.0%}, "
              f"macro {args.macro_threshold:.0%})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
