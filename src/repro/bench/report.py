"""Result collection, the JSON document, and regression comparison."""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict, List, Optional

from repro.bench import macro, micro
from repro.bench.timing import measure

#: Bump when the document layout changes incompatibly.
DOC_VERSION = 1


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _machine() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def collect(
    run_micro: bool = True,
    run_macro: bool = True,
    repeat: int = 3,
    warmup: int = 1,
    progress=None,
) -> Dict[str, Any]:
    """Run the selected suites; returns the full JSON-ready document."""
    benches = []
    if run_micro:
        benches.extend(micro.suite())
    if run_macro:
        benches.extend(macro.suite())
    results: Dict[str, Any] = {}
    for bench in benches:
        if progress is not None:
            progress(bench.name)
        results[bench.name] = measure(bench, repeat=repeat, warmup=warmup)
    return {
        "version": DOC_VERSION,
        "issue": "0005",
        "git_rev": _git_rev(),
        "machine": _machine(),
        "repeat": repeat,
        "warmup": warmup,
        "benchmarks": results,
    }


def _fmt(value: float, unit: str) -> str:
    if unit.endswith("/s"):
        return f"{value:>12,.0f} {unit}"
    return f"{value:>12.3f} {unit}"


def render_text(doc: Dict[str, Any]) -> str:
    """Human-readable report of one collected document."""
    lines = [
        f"repro.bench v{doc['version']}  rev={doc['git_rev']}  "
        f"python={doc['machine']['python']}  "
        f"cpus={doc['machine']['cpu_count']}",
        f"median of {doc['repeat']} (after {doc['warmup']} warmup)",
        "",
    ]
    for name, rec in doc["benchmarks"].items():
        lines.append(
            f"  {name:<28} {_fmt(rec['median'], rec['unit'])}"
            f"   [p10 {rec['p10']:.4g}, p90 {rec['p90']:.4g}]"
        )
    return "\n".join(lines)


def threshold_for(
    name: str,
    threshold: float,
    overrides: Optional[Dict[str, float]] = None,
) -> float:
    """The tolerance for one benchmark: the longest matching name
    prefix in *overrides* wins, else the default *threshold*."""
    best = threshold
    best_len = -1
    for prefix, value in (overrides or {}).items():
        if name.startswith(prefix) and len(prefix) > best_len:
            best, best_len = value, len(prefix)
    return best


def compare(
    doc: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = 0.30,
    overrides: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Regressions of *doc* vs *baseline* beyond the tolerance.

    *threshold* is the default fractional tolerance; *overrides* maps
    benchmark-name prefixes to looser or tighter values (the macro
    experiments run whole figures, so their wall-clock is noisier than
    the micro kernels and gets a wider band).  Only benchmarks present
    in both documents are compared, so adding or retiring a benchmark
    never breaks the check.  Returns human-readable complaint strings;
    empty means no regression.
    """
    complaints: List[str] = []
    for name, base in baseline.get("benchmarks", {}).items():
        current: Optional[Dict[str, Any]] = doc["benchmarks"].get(name)
        if current is None or not base.get("median"):
            continue
        tolerance = threshold_for(name, threshold, overrides)
        if base.get("higher_is_better", False):
            change = (base["median"] - current["median"]) / base["median"]
            direction = "slower"
        else:
            change = (current["median"] - base["median"]) / base["median"]
            direction = "slower"
        if change > tolerance:
            complaints.append(
                f"{name}: {current['median']:.4g} vs baseline "
                f"{base['median']:.4g} {base['unit']} "
                f"({change:.0%} {direction}, threshold {tolerance:.0%})"
            )
    return complaints
