"""Wall-clock performance harness (``python -m repro.bench``).

Everything else in this repository measures *virtual* time; this package
is the one place that measures *real* time.  It runs two suites:

* **micro** -- kernel-level operation rates: events scheduled/sec through
  the now-queue and the timeout heap, channel and tuple-buffer batch
  throughput, and the buffer-pool hit path.
* **macro** -- end-to-end wall-clock of the paper's fig8 scan-sharing and
  fig12 throughput experiments at ``SMOKE`` scale, with frozen
  parameters so numbers stay comparable across commits.

Each benchmark is median-of-k with warmup; results are written as a
single JSON document (``BENCH_0004.json`` is the committed baseline) so
every future PR has a trajectory to compare against.  ``--check`` fails
on regressions beyond a threshold -- the CI ``bench-smoke`` job runs the
micro suite against the committed baseline with a generous 30% margin.
"""

from repro.bench.report import collect, compare, render_text
from repro.bench.timing import Bench, measure

__all__ = ["Bench", "collect", "compare", "measure", "render_text"]
