"""Median-of-k wall-clock measurement.

The only module in the tree that legitimately reads the host clock; the
``DET001`` suppressions below are deliberate and confined to here and
the macro suite.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class Bench:
    """One benchmark: a closure plus how to interpret its timing.

    With ``ops`` set, each sample is converted to an operation rate
    (``ops / elapsed``, higher is better); otherwise the sample is the
    elapsed wall-clock in seconds (lower is better).
    """

    name: str
    fn: Callable[[], Any]
    unit: str
    ops: Optional[int] = None

    @property
    def higher_is_better(self) -> bool:
        return self.ops is not None


def percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[rank - 1]


def measure(bench: Bench, repeat: int = 3, warmup: int = 1) -> Dict[str, Any]:
    """Run one benchmark; returns its stats record for the JSON report."""
    for _ in range(warmup):
        bench.fn()
    samples: List[float] = []
    for _ in range(repeat):
        start = time.perf_counter()  # simlint: disable=DET001
        bench.fn()
        elapsed = time.perf_counter() - start  # simlint: disable=DET001
        samples.append(bench.ops / elapsed if bench.ops else elapsed)
    ordered = sorted(samples)
    return {
        "median": percentile(ordered, 50),
        "p10": percentile(ordered, 10),
        "p90": percentile(ordered, 90),
        "samples": samples,
        "unit": bench.unit,
        "higher_is_better": bench.higher_is_better,
    }
