"""Macro benchmarks: end-to-end wall-clock of the paper experiments.

The parameter sets are FROZEN -- same scale, client counts, and
interarrivals on every commit -- so the recorded numbers form a
comparable trajectory.  Changing them invalidates every older
``BENCH_*.json``; add a new benchmark name instead.
"""

from __future__ import annotations

from typing import List

from repro.bench.timing import Bench

FIG8_CLIENTS = (2, 4, 8)
FIG8_INTERARRIVALS = (0, 20, 60, 100)
FIG12_CLIENTS = (1, 2, 4, 8)
FOLD_COUNTS = (4, 6)
FOLD_SIMILARITIES = (0.0, 0.5, 1.0)
#: Worker count of the parallel variants (also frozen: the par4 numbers
#: only form a trajectory if the pool width never moves).
PAR_JOBS = 4


def fig8_smoke() -> None:
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fig8_scan_sharing

    fig8_scan_sharing(
        SMOKE,
        client_counts=FIG8_CLIENTS,
        interarrivals=FIG8_INTERARRIVALS,
    )


def fig12_smoke() -> None:
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fig12_throughput

    fig12_throughput(SMOKE, client_counts=FIG12_CLIENTS)


def _run_parallel(specs) -> None:
    from repro.parallel import PoolRunner

    with PoolRunner(jobs=PAR_JOBS) as runner:
        runner.run(specs)


def _run_serial(specs) -> None:
    from repro.parallel.cells import run_cells_serial

    run_cells_serial(specs)


def fig8_pushed() -> None:
    """The ``fig8_smoke`` grid with *every* cell on the push backend.

    Unlike the harness's ``--engine pushed`` (which substitutes only the
    engine-invariant slots), this forces the whole grid -- including the
    QPipe-persona slots -- onto the fused pipelines: the point is the
    backend's wall-clock on the full sweep, not figure fidelity.
    """
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fig8_cells, force_engine

    _run_serial(
        force_engine(
            fig8_cells(
                SMOKE,
                client_counts=FIG8_CLIENTS,
                interarrivals=FIG8_INTERARRIVALS,
            ),
            "pushed",
        )
    )


def fig12_pushed() -> None:
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fig12_cells, force_engine

    _run_serial(
        force_engine(fig12_cells(SMOKE, client_counts=FIG12_CLIENTS), "pushed")
    )


def fig8_smoke_par4() -> None:
    """The same cells as ``fig8_smoke``, through a 4-worker pool.

    Measures the fabric's end-to-end overhead (spawn, pickling, marker
    files) against the serial trajectory; on multi-core machines it also
    tracks the realized speedup.
    """
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fig8_cells

    _run_parallel(
        fig8_cells(
            SMOKE,
            client_counts=FIG8_CLIENTS,
            interarrivals=FIG8_INTERARRIVALS,
        )
    )


def fig12_smoke_par4() -> None:
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fig12_cells

    _run_parallel(fig12_cells(SMOKE, client_counts=FIG12_CLIENTS))


def fold_throughput() -> None:
    """The generalized-sharing grid: folded and unfolded arms of every
    (client count, similarity) config, serially.

    Tracks the fold coordinator's end-to-end cost (subsumption tests,
    residual filters, merged-aggregation banks) plus the unfolded
    reference arms over time.  The fold-invariance and >=25%-gain
    acceptance checks live in the harness payloads and the test suite;
    this benchmark times the wall-clock of producing them.
    """
    from repro.harness.config import SMOKE
    from repro.harness.experiments import fold_cells

    _run_serial(
        fold_cells(SMOKE, counts=FOLD_COUNTS, similarities=FOLD_SIMILARITIES)
    )


def scaleout_4h() -> None:
    """The sharded scan workload at 1 and 4 hosts, smoke scale.

    Times the whole distributed path end to end -- cluster build, range
    partitioning, partition-parallel fragments, exchange shipping, and
    the coordinator merge -- for the host counts the speedup acceptance
    gate compares.  The byte-identity and speedup verdicts themselves
    are asserted in the test suite; this tracks their production cost.
    """
    from repro.harness.config import SMOKE
    from repro.harness.experiments import scaleout

    scaleout(SMOKE, host_counts=(1, 4), workloads=("scan",))


def recovery_smoke() -> None:
    """All crash-recovery scenarios at smoke scale, fault seed 1.

    Each scenario runs a fault-free reference plus a crashed-and-
    recovered run, so this tracks the lineage/recovery path's end-to-end
    cost (log appends, WAL flushes, frontier replay) over time.
    """
    from repro.harness.config import SMOKE
    from repro.harness.experiments import recovery

    recovery(SMOKE, fault_seed=1)


def suite() -> List[Bench]:
    return [
        Bench("macro.fig8_smoke", fig8_smoke, "s"),
        Bench("macro.fig12_smoke", fig12_smoke, "s"),
        Bench("macro.fig8_smoke_par4", fig8_smoke_par4, "s"),
        Bench("macro.fig12_smoke_par4", fig12_smoke_par4, "s"),
        Bench("macro.fig8_pushed", fig8_pushed, "s"),
        Bench("macro.fig12_pushed", fig12_pushed, "s"),
        Bench("macro.fold_throughput", fold_throughput, "s"),
        Bench("macro.scaleout_4h", scaleout_4h, "s"),
        Bench("macro.recovery_smoke", recovery_smoke, "s"),
    ]
