"""Kernel microbenchmarks: operation rates for the hot paths.

Every workload here is deterministic (fixed counts, fixed patterns, no
RNG, no dataset) so that run-to-run variance is dominated by the host,
not the benchmark.
"""

from __future__ import annotations

from typing import List

from repro.bench.timing import Bench
from repro.engine.buffers import TupleBuffer
from repro.hw.disk import Disk
from repro.sim import Channel, ChannelClosed, Simulator
from repro.storage.bufferpool import BufferPool
from repro.storage.file import BlockStore

SCHEDULE_EVENTS = 100_000
TIMEOUT_EVENTS = 50_000
CANCEL_EVENTS = 50_000
CHANNEL_BATCHES = 20_000
BUFFER_BATCHES = 5_000
POOL_GETS = 20_000


def _nop() -> None:
    pass


def schedule_drain() -> None:
    """Zero-delay scheduling: the now-queue fast path end to end."""
    sim = Simulator()
    schedule = sim.schedule
    for _ in range(SCHEDULE_EVENTS):
        schedule(0.0, _nop)
    sim.run()


def timeout_heap() -> None:
    """Delayed scheduling: heap push/pop with a deterministic spread."""
    sim = Simulator()
    schedule = sim.schedule
    for i in range(TIMEOUT_EVENTS):
        schedule(float((i * 7) % 1000) + 1.0, _nop)
    sim.run()


def cancel_compact() -> None:
    """Cancel-heavy scheduling: lazy deletion plus heap compaction."""
    sim = Simulator()
    entries = [
        sim.schedule(float((i * 7) % 1000) + 1.0, _nop)
        for i in range(CANCEL_EVENTS)
    ]
    for i, entry in enumerate(entries):
        if i % 10:  # cancel 90%
            sim.cancel(entry)
    sim.run()


def channel_batches() -> None:
    """One producer, one consumer, a bounded channel in between."""
    sim = Simulator()
    chan = Channel(sim, capacity=64, name="bench")

    def producer():
        for i in range(CHANNEL_BATCHES):
            yield chan.put(i, size=1.0)
        chan.close()

    def consumer():
        while True:
            try:
                yield chan.get()
            except ChannelClosed:
                return

    sim.spawn(producer(), name="bench-producer")
    sim.spawn(consumer(), name="bench-consumer")
    sim.run()


def tuplebuffer_batches() -> None:
    """Batch exchange through a TupleBuffer (the per-operator hot path)."""
    sim = Simulator()
    buf = TupleBuffer(sim, capacity_tuples=256, name="bench")
    rows: List[tuple] = [(i, i) for i in range(32)]

    def producer():
        for _ in range(BUFFER_BATCHES):
            yield from buf.put(list(rows))
        buf.close()

    def consumer():
        while True:
            batch = yield from buf.get()
            if batch is None:
                return

    sim.spawn(producer(), name="bench-producer")
    sim.spawn(consumer(), name="bench-consumer")
    sim.run()


def pool_hits() -> None:
    """Buffer-pool gets that always hit (resident working set)."""
    sim = Simulator()
    disk = Disk(sim, transfer_time=0.001, seek_time=0.001)
    store = BlockStore()
    fid = store.create_file("bench")
    for i in range(8):
        store.append_block(fid, ("payload", i))
    pool = BufferPool(sim=sim, disk=disk, store=store, capacity=16)

    def reader():
        for i in range(POOL_GETS):
            yield from pool.get_page(fid, i % 8)

    sim.spawn(reader(), name="bench-reader")
    sim.run()


def suite() -> List[Bench]:
    return [
        Bench("micro.schedule_drain", schedule_drain, "events/s",
              ops=SCHEDULE_EVENTS),
        Bench("micro.timeout_heap", timeout_heap, "events/s",
              ops=TIMEOUT_EVENTS),
        Bench("micro.cancel_compact", cancel_compact, "events/s",
              ops=CANCEL_EVENTS),
        Bench("micro.channel_batches", channel_batches, "batches/s",
              ops=CHANNEL_BATCHES),
        Bench("micro.tuplebuffer_batches", tuplebuffer_batches, "batches/s",
              ops=BUFFER_BATCHES),
        Bench("micro.pool_hits", pool_hits, "pages/s", ops=POOL_GETS),
    ]
