"""QPipe: a simultaneously pipelined relational query engine.

A from-scratch reproduction of Harizopoulos, Ailamaki & Shkapenyuk,
"QPipe: A Simultaneously Pipelined Relational Query Engine" (SIGMOD
2005), on a deterministic discrete-event-simulated host.

Typical use::

    from repro import (
        Host, HostConfig, StorageManager, QPipeEngine, QPipeConfig,
        Schema, TableScan, Aggregate, AggSpec, Col,
    )

    host = Host(HostConfig())
    sm = StorageManager(host, buffer_pages=128)
    sm.create_table("t", Schema.of("id:int", "v:float"))
    sm.load_table("t", [(i, float(i)) for i in range(1000)])

    engine = QPipeEngine(sm, QPipeConfig(osp_enabled=True))
    rows = engine.run_query(
        Aggregate(TableScan("t"), [AggSpec("sum", Col("v"), "total")])
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions (driven by :mod:`repro.harness`).
"""

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.hw.host import Host, HostConfig
from repro.relational import (
    AggSpec,
    Aggregate,
    AntiJoin,
    Col,
    Column,
    DeleteRows,
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    LeftOuterJoin,
    Limit,
    MergeJoin,
    NLJoin,
    Project,
    Schema,
    SemiJoin,
    Sort,
    TableScan,
    UpdateRows,
)
from repro.results import QueryResult
from repro.storage.manager import StorageManager

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "Aggregate",
    "AntiJoin",
    "Col",
    "Column",
    "DeleteRows",
    "Distinct",
    "Filter",
    "GroupBy",
    "HashJoin",
    "Host",
    "HostConfig",
    "IndexScan",
    "InsertRows",
    "IteratorEngine",
    "LeftOuterJoin",
    "Limit",
    "MergeJoin",
    "NLJoin",
    "Project",
    "QPipeConfig",
    "QPipeEngine",
    "QueryResult",
    "Schema",
    "SemiJoin",
    "Sort",
    "StorageManager",
    "TableScan",
    "UpdateRows",
]
