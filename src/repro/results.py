"""Engine-agnostic execution results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class QueryResult:
    """Rows plus timing for one executed query."""

    query_id: int
    rows: List[tuple]
    submitted_at: float
    started_at: float
    finished_at: float

    @property
    def response_time(self) -> float:
        return self.finished_at - self.submitted_at
