"""The experiment harness: one entry point per figure in the paper.

Every experiment builds fresh, seeded systems per configuration point,
runs the workload on the simulated host, and returns a structured
:class:`~repro.harness.report.Series` whose ``render()`` prints the same
rows the paper plots.  EXPERIMENTS.md records paper-vs-measured shapes.
"""

from repro.harness.config import (
    Scale,
    SMOKE,
    DEFAULT,
    collected_tracers,
    disable_tracing,
    enable_tracing,
)
from repro.harness.experiments import (
    FIGURES,
    Figure,
    chaos,
    render_chaos,
    recovery,
    render_recovery,
    fig1a_breakdown,
    fig1b_throughput,
    fig4_wop,
    fig8_scan_sharing,
    fig9_ordered_scans,
    fig10_sort_merge,
    fig11_hash_join,
    fig12_throughput,
    fig13_think_time,
    osp_overhead,
    scaleout,
    ablation_circular_wraparound,
    ablation_late_activation,
    ablation_replacement_policies,
    ablation_replay_ring,
)
from repro.harness.report import Series

__all__ = [
    "DEFAULT",
    "FIGURES",
    "Figure",
    "SMOKE",
    "Scale",
    "Series",
    "ablation_circular_wraparound",
    "ablation_late_activation",
    "ablation_replacement_policies",
    "ablation_replay_ring",
    "chaos",
    "render_chaos",
    "recovery",
    "render_recovery",
    "collected_tracers",
    "disable_tracing",
    "enable_tracing",
    "fig10_sort_merge",
    "fig11_hash_join",
    "fig12_throughput",
    "fig13_think_time",
    "fig1a_breakdown",
    "fig1b_throughput",
    "fig4_wop",
    "fig8_scan_sharing",
    "fig9_ordered_scans",
    "osp_overhead",
    "scaleout",
]
