"""One experiment per figure, decomposed into *cells*.

Every figure is a declarative list of :class:`~repro.parallel.cells.CellSpec`
grid points plus a deterministic merge step (DESIGN.md section 11):

* a **cell function** (registered with :func:`repro.parallel.cells.cell`)
  builds a fresh seeded system for one data point and returns a
  JSON-serialisable payload -- cells are pure, so they can run in any
  order, in any process, and be cached by content address;
* a ``figN_cells(scale, ...)`` builder lists the figure's specs in the
  paper's sweep order;
* a ``figN_merge(specs, payloads)`` step folds ``{spec: payload}`` back
  into :class:`~repro.harness.report.Series` rows, ordered by the spec
  list alone -- never by completion order -- so serial and parallel runs
  render byte-identically.

The public ``figN_*`` functions keep their historical signatures and run
the cells serially in-process; ``python -m repro.harness --jobs N``
feeds the same specs through :class:`~repro.parallel.pool.PoolRunner`.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.config import (
    CHAOS_QUERY_SEED_BASE,
    CLIENT_SEED_BASE,
    FIG_QUERY_SEED,
    FOLD_QUERY_SEED,
    SHARED_PARAM_SEED,
    SMOKE,
    Scale,
    build_tpch_system,
    build_wisconsin_system,
)
from repro.harness.report import Series, render_breakdown
from repro.parallel.cells import CellSpec, cell, coords, fn_key, run_cells_serial
from repro.relational.expressions import AggSpec, Between, Col
from repro.relational.plans import Aggregate, GroupBy, HashJoin, TableScan
from repro.workloads.clients import ClosedLoopClient, mixed_tpch_factory, run_workload
from repro.workloads.tpch import queries as Q
from repro.workloads.wisconsin import three_way_join

#: Paper section 5.3 / Figure 12 query mix.
MIX = ("q1", "q4", "q6", "q8", "q12", "q13", "q14", "q19")

INTERARRIVALS = (0, 10, 20, 40, 60, 80, 100, 120, 140)

FIG8_INTERARRIVALS = (0, 10, 20, 40, 60, 80, 100)

Payloads = Mapping[CellSpec, Any]


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------
def _run_staggered(host, engine, plans: Sequence, delays: Sequence[float]):
    """Submit one query per plan at the given delays; returns results."""
    procs = []

    def client(plan, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(plan)
        return result

    for plan, delay in zip(plans, delays):
        procs.append(host.sim.spawn(client(plan, delay), name="client"))
    host.sim.run_until_done(procs)
    return [p.value for p in procs]


def _makespan(results) -> float:
    return max(r.finished_at for r in results) - min(
        r.submitted_at for r in results
    )


def _limited_buffers(scale: Scale) -> Scale:
    """Figures 4/9-11 run in the paper's limited-buffer regime: a small
    fan-out replay ring, so step windows actually close and the
    order-sensitive split / scan-only sharing regimes become visible."""
    from repro.harness.config import with_overrides

    return with_overrides(
        scale,
        replay_tuples=min(scale.replay_tuples, 16),
        buffer_tuples=min(scale.buffer_tuples, 1024),
    )


def _payloads(specs: Sequence[CellSpec], results: Optional[Payloads]) -> Payloads:
    """Serial in-process execution unless the caller supplies results."""
    if results is not None:
        return results
    return run_cells_serial(specs)


# ---------------------------------------------------------------------------
# Figure 1a: time breakdown of five TPC-H queries by table read
# ---------------------------------------------------------------------------
FIG1A_QUERIES = ("Q8", "Q12", "Q13", "Q14", "Q19")
FIG1A_TRACKED = ("lineitem", "orders", "part")


@cell
def fig1a_cell(spec: CellSpec) -> Dict[str, float]:
    """Per-table share of disk read time for one query, solo."""
    c = spec.coord
    name = c["query"]
    builder = Q.QUERY_BUILDERS[name.lower()]
    host, sm, engine = build_tpch_system(
        spec.scale, "dbmsx", backend=c.get("engine", "packets")
    )
    file_to_table = {sm.table_file_id(t): t for t in sm.catalog.tables()}
    before = host.disk.stats.snapshot()
    host.sim.spawn(engine.execute(builder(random.Random(FIG_QUERY_SEED))))
    host.sim.run()
    delta = host.disk.stats.delta(before)
    total = sum(t for _b, t in delta.per_file.values()) or 1.0
    fractions = {"other": 0.0}
    for fid, (_blocks, time) in delta.per_file.items():
        table = file_to_table.get(fid)
        if table in FIG1A_TRACKED:
            fractions[table] = fractions.get(table, 0.0) + time / total
        else:
            fractions["other"] += time / total
    return fractions


def fig1a_cells(scale: Scale = SMOKE) -> List[CellSpec]:
    return [
        CellSpec(
            "fig1a", fn_key(fig1a_cell), scale,
            coords(query=name),
            seeds=(("FIG_QUERY_SEED", FIG_QUERY_SEED),),
        )
        for name in FIG1A_QUERIES
    ]


def fig1a_merge(specs: Sequence[CellSpec], payloads: Payloads):
    rows = {spec.coord["query"]: payloads[spec] for spec in specs}
    rendered = render_breakdown(
        "Figure 1a: per-table share of disk read time",
        rows,
        list(FIG1A_TRACKED) + ["other"],
    )
    return rows, rendered


def fig1a_breakdown(scale: Scale = SMOKE, results: Optional[Payloads] = None):
    """Fraction of disk-read time per table for Q8, Q12, Q13, Q14, Q19.

    Reproduces Figure 1a's observation: despite disjoint computation,
    the queries overlap heavily on LINEITEM/ORDERS/PART reads.
    """
    specs = fig1a_cells(scale)
    return fig1a_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Figure 4: measured window-of-opportunity curves
# ---------------------------------------------------------------------------
FIG4_POINTS = (0.0, 0.25, 0.5, 0.75, 0.95)

#: The two queries of each pair differ in their ROOT aggregate so that
#: sharing can only happen at the operator under test (a shared root
#: would trivially yield a full overlap for every class).
_FIG4_AGGS = {
    "a": [AggSpec("count", None, "n")],
    "b": [AggSpec("sum", Col("l_quantity"), "s")],
}


def _fig4_scan_plan(flavor, ordered):
    return Aggregate(
        TableScan("lineitem", ordered=ordered), _FIG4_AGGS[flavor]
    )


def _fig4_full_plan(flavor):
    # The single aggregate itself is the measured operator, so the
    # pair is identical here: full overlap across the whole lifetime.
    return Aggregate(
        TableScan("lineitem"), [AggSpec("sum", Col("l_quantity"), "s")]
    )


def _fig4_step_plan(flavor):
    # Hash join: full during ORDERS build, step once probing starts.
    return GroupBy(
        HashJoin(
            TableScan("orders"),
            TableScan("lineitem"),
            "o_orderkey",
            "l_orderkey",
        ),
        ["o_orderpriority"],
        _FIG4_AGGS[flavor],
    )


FIG4_CLASSES = {
    "linear(scan)": lambda flavor: _fig4_scan_plan(flavor, False),
    "full(aggregate)": _fig4_full_plan,
    "step(hash-join)": _fig4_step_plan,
    "spike(ordered scan)": lambda flavor: _fig4_scan_plan(flavor, True),
}


@cell
def fig4_cell(spec: CellSpec) -> List[List[float]]:
    """One overlap class: solo baseline plus every progress point.

    Cost is measured in *eliminated disk blocks*: a gain of 1 means Q2
    caused no additional I/O at all.
    """
    make_plan = FIG4_CLASSES[spec.coord["klass"]]
    progress_points = spec.coord["progress_points"]
    # Solo baseline.
    host, sm, engine = build_tpch_system(spec.scale, "qpipe")
    before = host.disk.stats.blocks_read
    solo = _run_staggered(host, engine, [make_plan("b")], [0.0])[0]
    solo_blocks = host.disk.stats.blocks_read - before
    solo_duration = solo.response_time
    points: List[List[float]] = []
    for progress in progress_points:
        host, sm, engine = build_tpch_system(spec.scale, "qpipe")
        plans = [make_plan("a"), make_plan("b")]
        _run_staggered(host, engine, plans, [0.0, progress * solo_duration])
        pair_blocks = host.disk.stats.blocks_read
        extra = max(0, pair_blocks - solo_blocks)
        gain = max(0.0, 1.0 - extra / max(1, solo_blocks))
        points.append([round(progress, 2), round(gain, 3)])
    return points


def fig4_cells(
    scale: Scale = SMOKE,
    progress_points: Sequence[float] = FIG4_POINTS,
) -> List[CellSpec]:
    limited = _limited_buffers(scale)
    return [
        CellSpec(
            "fig4", fn_key(fig4_cell), limited,
            coords(klass=label, progress_points=tuple(progress_points)),
        )
        for label in FIG4_CLASSES
    ]


def fig4_merge(specs: Sequence[CellSpec], payloads: Payloads) -> Series:
    series = Series(
        title="Figure 4 (measured): Q2 cost saving vs Q1 progress",
        x_label="Q1 progress",
        y_label="fraction of Q2's disk blocks eliminated",
    )
    for spec in specs:
        label = spec.coord["klass"]
        for progress, gain in payloads[spec]:
            series.add_point(label, progress, gain)
    return series


def fig4_wop(
    scale: Scale = SMOKE,
    progress_points: Sequence[float] = FIG4_POINTS,
    results: Optional[Payloads] = None,
) -> Series:
    """Measured Q2 I/O savings vs Q1 progress, one curve per overlap
    class (linear / step / full / spike), mirroring Figure 4a."""
    specs = fig4_cells(scale, progress_points)
    return fig4_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Figure 8: disk blocks read vs interarrival time (2/4/8 clients of Q6)
# ---------------------------------------------------------------------------
@cell
def fig8_cell(spec: CellSpec) -> int:
    """Total disk blocks read by N staggered Q6 clients on one system."""
    c = spec.coord
    host, sm, engine = build_tpch_system(
        spec.scale, c["system"], backend=c.get("engine", "packets")
    )
    plans = [
        Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(c["count"])
    ]
    delays = [i * c["gap"] for i in range(c["count"])]
    _run_staggered(host, engine, plans, delays)
    return host.disk.stats.blocks_read


def fig8_cells(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = (2, 4, 8),
    interarrivals: Optional[Sequence[float]] = None,
) -> List[CellSpec]:
    if interarrivals is None:
        interarrivals = FIG8_INTERARRIVALS
    return [
        CellSpec(
            "fig8", fn_key(fig8_cell), scale,
            coords(count=count, system=system, gap=gap),
            seeds=(("CLIENT_SEED_BASE", CLIENT_SEED_BASE),),
        )
        for count in client_counts
        for system in ("baseline", "qpipe")
        for gap in interarrivals
    ]


def fig8_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Dict[int, Series]:
    out: Dict[int, Series] = {}
    for spec in specs:
        c = spec.coord
        series = out.get(c["count"])
        if series is None:
            series = out[c["count"]] = Series(
                title=f"Figure 8 ({c['count']} clients): disk blocks read",
                x_label="interarrival (s)",
                y_label="total disk blocks read",
            )
        series.add_point(
            "QPipe w/OSP" if c["system"] == "qpipe" else "Baseline",
            c["gap"],
            payloads[spec],
        )
    return out


def fig8_scan_sharing(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = (2, 4, 8),
    interarrivals: Optional[Sequence[float]] = None,
    results: Optional[Payloads] = None,
) -> Dict[int, Series]:
    """Total disk blocks read by N staggered Q6 clients, Baseline vs
    QPipe w/OSP."""
    specs = fig8_cells(scale, client_counts, interarrivals)
    return fig8_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Figures 9-11: two staggered queries, total response time
# ---------------------------------------------------------------------------
def _two_query_makespan(scale: Scale, system: str, gap: float,
                        build_system, make_plans) -> float:
    host, sm, engine = build_system(scale, system)
    plans = make_plans()
    results = _run_staggered(host, engine, plans, [0.0, gap])
    return round(_makespan(results), 1)


@cell
def fig9_cell(spec: CellSpec) -> float:
    """Two TPC-H Q4 instances with merge-joins over clustered index
    scans: order-sensitive scan sharing via the 4.3.2 two-pass split."""
    c = spec.coord
    return _two_query_makespan(
        spec.scale, c["system"], c["gap"], build_tpch_system,
        lambda: [
            Q.q4_merge(random.Random(SHARED_PARAM_SEED), flavor="count"),
            Q.q4_merge(random.Random(SHARED_PARAM_SEED), flavor="sum"),
        ],
    )


@cell
def fig10_cell(spec: CellSpec) -> float:
    """Two Wisconsin 3-way sort-merge joins sharing the BIG1/BIG2 sort
    (full overlap) and merge (step overlap) subtrees."""
    c = spec.coord
    big_range = max(100, spec.scale.wisconsin_big_rows // 2)
    return _two_query_makespan(
        spec.scale, c["system"], c["gap"], build_wisconsin_system,
        lambda: [
            three_way_join(big_range, Col("onepercent") < 50),
            three_way_join(big_range, Col("onepercent") >= 50),
        ],
    )


@cell
def fig11_cell(spec: CellSpec) -> float:
    """Two TPC-H Q4 instances with hybrid hash joins: build-phase
    sharing first, then scan-only sharing once probing starts."""
    c = spec.coord
    return _two_query_makespan(
        spec.scale, c["system"], c["gap"], build_tpch_system,
        lambda: [
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="count"),
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="sum"),
        ],
    )


def _two_query_cells(
    figure: str, cell_fn, scale: Scale, interarrivals: Sequence[float]
) -> List[CellSpec]:
    limited = _limited_buffers(scale)
    return [
        CellSpec(
            figure, fn_key(cell_fn), limited,
            coords(system=system, gap=gap),
            seeds=(("SHARED_PARAM_SEED", SHARED_PARAM_SEED),),
        )
        for system in ("baseline", "qpipe")
        for gap in interarrivals
    ]


def _two_query_merge(title: str, specs: Sequence[CellSpec],
                     payloads: Payloads) -> Series:
    series = Series(
        title=title,
        x_label="interarrival (s)",
        y_label="total response time (s)",
    )
    for spec in specs:
        c = spec.coord
        label = "QPipe w/OSP" if c["system"] == "qpipe" else "Baseline"
        series.add_point(label, c["gap"], payloads[spec])
    return series


FIG9_TITLE = "Figure 9: order-sensitive clustered index scans (Q4, merge-join)"
FIG10_TITLE = "Figure 10: Wisconsin 3-way sort-merge join sharing"
FIG11_TITLE = "Figure 11: hash-join build sharing (Q4, hash-join)"


def fig9_cells(scale: Scale = SMOKE,
               interarrivals: Sequence[float] = INTERARRIVALS):
    return _two_query_cells("fig9", fig9_cell, scale, interarrivals)


def fig10_cells(scale: Scale = SMOKE,
                interarrivals: Sequence[float] = INTERARRIVALS):
    return _two_query_cells("fig10", fig10_cell, scale, interarrivals)


def fig11_cells(scale: Scale = SMOKE,
                interarrivals: Sequence[float] = INTERARRIVALS):
    return _two_query_cells("fig11", fig11_cell, scale, interarrivals)


def fig9_ordered_scans(
    scale: Scale = SMOKE,
    interarrivals: Sequence[float] = INTERARRIVALS,
    results: Optional[Payloads] = None,
) -> Series:
    specs = fig9_cells(scale, interarrivals)
    return _two_query_merge(FIG9_TITLE, specs, _payloads(specs, results))


def fig10_sort_merge(
    scale: Scale = SMOKE,
    interarrivals: Sequence[float] = INTERARRIVALS,
    results: Optional[Payloads] = None,
) -> Series:
    specs = fig10_cells(scale, interarrivals)
    return _two_query_merge(FIG10_TITLE, specs, _payloads(specs, results))


def fig11_hash_join(
    scale: Scale = SMOKE,
    interarrivals: Sequence[float] = INTERARRIVALS,
    results: Optional[Payloads] = None,
) -> Series:
    specs = fig11_cells(scale, interarrivals)
    return _two_query_merge(FIG11_TITLE, specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Figures 1b/12: throughput vs number of clients, three systems
# ---------------------------------------------------------------------------
FIG12_SYSTEMS = ("qpipe", "baseline", "dbmsx")
FIG12_LABELS = {
    "qpipe": "QPipe w/OSP",
    "baseline": "Baseline",
    "dbmsx": "DBMS X",
}


@cell
def fig12_cell(spec: CellSpec) -> float:
    """TPC-H mix throughput (queries/hour) at one client count."""
    c = spec.coord
    scale = spec.scale
    host, sm, engine = build_tpch_system(
        scale, c["system"], backend=c.get("engine", "packets")
    )
    builders = [Q.QUERY_BUILDERS[name] for name in MIX]
    factory = mixed_tpch_factory(builders)
    clients = [
        ClosedLoopClient(
            i,
            factory,
            queries=scale.queries_per_client,
            think_time=0.0,
            start_delay=i * scale.client_stagger,
        )
        for i in range(c["count"])
    ]
    metrics = run_workload(engine, clients, seed=scale.seed + c["count"])
    return round(metrics.throughput_qph, 1)


def fig12_cells(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = tuple(range(1, 13)),
    systems: Sequence[str] = FIG12_SYSTEMS,
) -> List[CellSpec]:
    # fig1b is fig12 restricted to two systems, so its specs carry the
    # owning figure id "fig12" and the two figures share cache entries.
    return [
        CellSpec(
            "fig12", fn_key(fig12_cell), scale,
            coords(system=system, count=count),
            seeds=(("workload_seed", scale.seed + count),),
        )
        for system in systems
        for count in client_counts
    ]


def fig12_merge(specs: Sequence[CellSpec], payloads: Payloads) -> Series:
    series = Series(
        title="Figure 12: TPC-H throughput vs concurrent clients",
        x_label="clients",
        y_label="throughput (queries/hour)",
    )
    for spec in specs:
        c = spec.coord
        series.add_point(FIG12_LABELS[c["system"]], c["count"], payloads[spec])
    return series


def fig12_throughput(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = tuple(range(1, 13)),
    systems: Sequence[str] = FIG12_SYSTEMS,
    results: Optional[Payloads] = None,
) -> Series:
    """TPC-H mix throughput (queries/hour), zero think time.

    Figure 1b is this figure restricted to QPipe and DBMS X.
    """
    specs = fig12_cells(scale, client_counts, systems)
    return fig12_merge(specs, _payloads(specs, results))


def fig1b_cells(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = tuple(range(1, 13)),
) -> List[CellSpec]:
    return fig12_cells(scale, client_counts, ("qpipe", "dbmsx"))


def fig1b_throughput(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = tuple(range(1, 13)),
    results: Optional[Payloads] = None,
) -> Series:
    """Figure 1b: the introduction's QPipe-vs-DBMS X throughput curve."""
    specs = fig1b_cells(scale, client_counts)
    series = fig12_merge(specs, _payloads(specs, results))
    series.title = "Figure 1b: TPC-H throughput, QPipe vs DBMS X"
    return series


# ---------------------------------------------------------------------------
# Figure 13: average response time vs think time, 10 clients
# ---------------------------------------------------------------------------
@cell
def fig13_cell(spec: CellSpec) -> float:
    """Average response time of the TPC-H mix at one think time."""
    c = spec.coord
    scale = spec.scale
    builders = [Q.QUERY_BUILDERS[name] for name in MIX]
    # Think time only matters between consecutive queries of one client.
    queries = max(3, scale.queries_per_client)
    host, sm, engine = build_tpch_system(scale, c["system"])
    factory = mixed_tpch_factory(builders)
    clients = [
        ClosedLoopClient(
            i,
            factory,
            queries=queries,
            think_time=c["think"],
            start_delay=i * scale.client_stagger,
        )
        for i in range(c["clients"])
    ]
    metrics = run_workload(engine, clients, seed=scale.seed)
    return round(metrics.avg_response_time, 1)


def fig13_cells(
    scale: Scale = SMOKE,
    think_times: Sequence[float] = (0, 20, 40, 60, 240),
    clients: int = 10,
) -> List[CellSpec]:
    return [
        CellSpec(
            "fig13", fn_key(fig13_cell), scale,
            coords(system=system, think=think, clients=clients),
            seeds=(("workload_seed", scale.seed),),
        )
        for system in ("baseline", "qpipe")
        for think in think_times
    ]


def fig13_merge(specs: Sequence[CellSpec], payloads: Payloads) -> Series:
    clients = specs[0].coord["clients"] if specs else 10
    series = Series(
        title=f"Figure 13: average response time vs think time "
        f"({clients} clients)",
        x_label="think time (s)",
        y_label="average response time (s)",
    )
    for spec in specs:
        c = spec.coord
        label = "QPipe w/OSP" if c["system"] == "qpipe" else "Baseline"
        series.add_point(label, c["think"], payloads[spec])
    return series


def fig13_think_time(
    scale: Scale = SMOKE,
    think_times: Sequence[float] = (0, 20, 40, 60, 240),
    clients: int = 10,
    results: Optional[Payloads] = None,
) -> Series:
    """Average response time of the TPC-H mix under varying think time
    (low think time = high load), QPipe w/OSP vs Baseline."""
    specs = fig13_cells(scale, think_times, clients)
    return fig13_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Section 5 claim: negligible OSP coordinator overhead
# ---------------------------------------------------------------------------
@cell
def osp_overhead_cell(spec: CellSpec) -> float:
    """Makespan of back-to-back mixed queries on one system."""
    c = spec.coord
    scale = spec.scale
    builders = [Q.QUERY_BUILDERS[name] for name in MIX]
    host, sm, engine = build_tpch_system(scale, c["system"])
    client = ClosedLoopClient(
        0, mixed_tpch_factory(builders), queries=c["queries"]
    )
    metrics = run_workload(engine, [client], seed=scale.seed)
    return metrics.makespan


def osp_overhead_cells(scale: Scale = SMOKE, queries: int = 6) -> List[CellSpec]:
    return [
        CellSpec(
            "overhead", fn_key(osp_overhead_cell), scale,
            coords(system=system, queries=queries),
            seeds=(("workload_seed", scale.seed),),
        )
        for system in ("qpipe", "baseline")
    ]


def osp_overhead_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Dict[str, float]:
    by_system = {spec.coord["system"]: payloads[spec] for spec in specs}
    with_osp = by_system["qpipe"]
    without = by_system["baseline"]
    return {
        "makespan_osp_on": with_osp,
        "makespan_osp_off": without,
        "overhead_ratio": with_osp / without if without else 1.0,
    }


def osp_overhead(
    scale: Scale = SMOKE, queries: int = 6,
    results: Optional[Payloads] = None,
) -> Dict[str, float]:
    """Back-to-back (zero-concurrency) mixed queries with OSP on vs off.

    With no sharing opportunities the two runs must take essentially the
    same time; the paper reports the overhead as negligible.
    """
    specs = osp_overhead_cells(scale, queries)
    return osp_overhead_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 4)
# ---------------------------------------------------------------------------
@cell
def ablation_policy_cell(spec: CellSpec) -> int:
    """Blocks read by N staggered Q6 clients under one pool policy (or
    the QPipe w/OSP reference when ``kind == "reference"``)."""
    c = spec.coord
    scale = spec.scale
    plans = [
        Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(c["clients"])
    ]
    delays = [i * c["interarrival"] for i in range(c["clients"])]
    if c["kind"] == "reference":
        host, sm, engine = build_tpch_system(scale, "qpipe")
    else:
        from repro.harness.config import make_engine
        from repro.harness.config import _estimate_lineitem_pages, _host_for_pages
        from repro.storage.manager import StorageManager
        from repro.workloads.tpch import TpchScale, load_tpch

        host = _host_for_pages(scale, _estimate_lineitem_pages(scale))
        sm = StorageManager(
            host, buffer_pages=scale.buffer_pages, policy=c["policy"],
            use_scan_ring=False,
        )
        load_tpch(sm, TpchScale(scale.tpch_factor), seed=scale.seed)
        engine = make_engine(sm, scale, "baseline")
    _run_staggered(host, engine, plans, delays)
    return host.disk.stats.blocks_read


def ablation_policies_cells(
    scale: Scale = SMOKE,
    policies: Sequence[str] = ("lru", "mru", "clock", "lru-k", "2q", "arc"),
    clients: int = 4,
    interarrival: float = 20.0,
) -> List[CellSpec]:
    specs = [
        CellSpec(
            "ablation-policies", fn_key(ablation_policy_cell), scale,
            coords(kind="policy", policy=policy, clients=clients,
                   interarrival=interarrival),
            seeds=(("CLIENT_SEED_BASE", CLIENT_SEED_BASE),),
        )
        for policy in policies
    ]
    specs.append(
        CellSpec(
            "ablation-policies", fn_key(ablation_policy_cell), scale,
            coords(kind="reference", policy="lru", clients=clients,
                   interarrival=interarrival),
            seeds=(("CLIENT_SEED_BASE", CLIENT_SEED_BASE),),
        )
    )
    return specs


def ablation_policies_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Series:
    grid = [s for s in specs if s.coord["kind"] == "policy"]
    clients = grid[0].coord["clients"]
    interarrival = grid[0].coord["interarrival"]
    series = Series(
        title="Ablation: buffer replacement policy vs blocks read "
        f"({clients} Q6 clients, {interarrival:.0f}s apart)",
        x_label="policy",
        y_label="total disk blocks read",
    )
    for spec in grid:
        series.add_point("Baseline", spec.coord["policy"], payloads[spec])
    for spec in specs:
        if spec.coord["kind"] == "reference":
            series.notes.append(
                f"QPipe w/OSP (lru) reads {payloads[spec]} blocks"
            )
    return series


def ablation_replacement_policies(
    scale: Scale = SMOKE,
    policies: Sequence[str] = ("lru", "mru", "clock", "lru-k", "2q", "arc"),
    clients: int = 4,
    interarrival: float = 20.0,
    results: Optional[Payloads] = None,
) -> Series:
    """Figure 8's Baseline point under every replacement policy: how much
    of QPipe's sharing can a smarter pool recover on its own?

    Scan pages go through the policy itself here (no scan ring), so the
    policies' scan handling is what is actually being compared.
    """
    specs = ablation_policies_cells(scale, policies, clients, interarrival)
    return ablation_policies_merge(specs, _payloads(specs, results))


@cell
def ablation_wraparound_cell(spec: CellSpec) -> int:
    """Blocks read with circular wrap-around on or off."""
    c = spec.coord
    host, sm, engine = build_tpch_system(spec.scale, "qpipe")
    engine.config.circular_wraparound = c["wrap"]
    plans = [
        Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(c["clients"])
    ]
    delays = [i * c["gap"] for i in range(c["clients"])]
    _run_staggered(host, engine, plans, delays)
    return host.disk.stats.blocks_read


def ablation_wraparound_cells(
    scale: Scale = SMOKE,
    clients: int = 4,
    interarrivals: Sequence[float] = (0, 20, 60, 100),
) -> List[CellSpec]:
    return [
        CellSpec(
            "ablation-wraparound", fn_key(ablation_wraparound_cell), scale,
            coords(mode=label, wrap=wrap, gap=gap, clients=clients),
            seeds=(("CLIENT_SEED_BASE", CLIENT_SEED_BASE),),
        )
        for label, wrap in (("circular", True), ("attach-at-start", False))
        for gap in interarrivals
    ]


def ablation_wraparound_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Series:
    series = Series(
        title="Ablation: circular wrap-around vs naive scan sharing",
        x_label="interarrival (s)",
        y_label="total disk blocks read",
    )
    for spec in specs:
        c = spec.coord
        series.add_point(c["mode"], c["gap"], payloads[spec])
    return series


def ablation_circular_wraparound(
    scale: Scale = SMOKE,
    clients: int = 4,
    interarrivals: Sequence[float] = (0, 20, 60, 100),
    results: Optional[Payloads] = None,
) -> Series:
    """What wrap-around adds over naive attach-at-start scan sharing.

    "When the scanner thread reaches the end-of-file for the first time,
    it will keep scanning the relation from the beginning, to serve the
    unread pages" (section 4.3.1).  Without the wrap, a late scan can
    share only if it happens to arrive while the scanner sits at page 0.
    """
    specs = ablation_wraparound_cells(scale, clients, interarrivals)
    return ablation_wraparound_merge(specs, _payloads(specs, results))


@cell
def ablation_late_activation_cell(spec: CellSpec) -> Dict[str, float]:
    """Makespan / blocks / detaches with late activation on or off."""
    c = spec.coord
    host, sm, engine = build_tpch_system(spec.scale, "qpipe")
    engine.config.late_activation = c["late"]
    plans = [
        Q.q4_hash(random.Random(SHARED_PARAM_SEED), "count" if i % 2 else "sum")
        for i in range(c["clients"])
    ]
    delays = [i * 5.0 for i in range(c["clients"])]
    results = _run_staggered(host, engine, plans, delays)
    return {
        "makespan": round(_makespan(results), 1),
        "blocks": host.disk.stats.blocks_read,
        "detaches": engine.osp_stats.scan_detaches,
    }


def ablation_late_activation_cells(
    scale: Scale = SMOKE, clients: int = 4
) -> List[CellSpec]:
    return [
        CellSpec(
            "ablation-late-activation",
            fn_key(ablation_late_activation_cell), scale,
            coords(label=label, late=late, clients=clients),
            seeds=(("SHARED_PARAM_SEED", SHARED_PARAM_SEED),),
        )
        for label, late in (("on", True), ("off", False))
    ]


def ablation_late_activation_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Series:
    series = Series(
        title="Ablation: late activation of scan packets",
        x_label="policy",
        y_label="value",
    )
    for spec in specs:
        label = f"late-activation {spec.coord['label']}"
        payload = payloads[spec]
        series.add_point(label, "makespan (s)", payload["makespan"])
        series.add_point(label, "blocks read", payload["blocks"])
        series.add_point(label, "scan detaches", payload["detaches"])
    return series


def ablation_late_activation(
    scale: Scale = SMOKE,
    clients: int = 4,
    results: Optional[Payloads] = None,
) -> Series:
    """Section 4.3.1's late activation policy, on vs off.

    Without it, probe-side scans attach to the shared scanner before
    their joins are ready to consume; the filled buffers stall the
    scanner (until detach-on-stall cuts them loose), costing extra time
    and I/O for everyone.
    """
    specs = ablation_late_activation_cells(scale, clients)
    return ablation_late_activation_merge(specs, _payloads(specs, results))


@cell
def ablation_replay_cell(spec: CellSpec) -> int:
    """Hash-join attaches at one fan-out replay ring size."""
    from repro.harness.config import with_overrides

    c = spec.coord
    sized = with_overrides(spec.scale, replay_tuples=max(1, c["ring"]))
    host, sm, engine = build_tpch_system(sized, "qpipe")
    plans = [
        Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="count"),
        Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="sum"),
    ]
    _run_staggered(host, engine, plans, [0.0, c["interarrival"]])
    return engine.osp_stats.attaches["hashjoin"]


def ablation_replay_cells(
    scale: Scale = SMOKE,
    ring_sizes: Sequence[int] = (16, 256, 4096, 65536),
    interarrival: float = 40.0,
) -> List[CellSpec]:
    return [
        CellSpec(
            "ablation-replay", fn_key(ablation_replay_cell), scale,
            coords(ring=size, interarrival=interarrival),
            seeds=(("SHARED_PARAM_SEED", SHARED_PARAM_SEED),),
        )
        for size in ring_sizes
    ]


def ablation_replay_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Series:
    series = Series(
        title="Ablation: fan-out replay ring size vs join sharing",
        x_label="replay ring (tuples)",
        y_label="hash-join attaches",
    )
    for spec in specs:
        series.add_point("attaches", spec.coord["ring"], payloads[spec])
    return series


def ablation_replay_ring(
    scale: Scale = SMOKE,
    ring_sizes: Sequence[int] = (16, 256, 4096, 65536),
    interarrival: float = 40.0,
    results: Optional[Payloads] = None,
) -> Series:
    """The Figure 4b buffering enhancement: a larger fan-out replay ring
    widens the hash-join step window, so later arrivals still attach."""
    specs = ablation_replay_cells(scale, ring_sizes, interarrival)
    return ablation_replay_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Engine substitution (the CLI --engine flag)
# ---------------------------------------------------------------------------
#: Cell functions that honour an ``engine`` coordinate (they forward it
#: to the system builders as ``backend=``).  Specs whose function is not
#: listed here are never rewritten.
_ENGINE_AWARE_FNS = frozenset((
    "repro.harness.experiments:fig1a_cell",
    "repro.harness.experiments:fig8_cell",
    "repro.harness.experiments:fig12_cell",
))


def _with_engine(spec: CellSpec, backend: str) -> CellSpec:
    """Rebuild *spec* with an ``engine`` coordinate.

    The coordinate feeds the cache key, so packet- and push-backed runs
    of the same grid point never collide in the content-addressed cache.
    """
    return CellSpec(
        spec.figure, spec.fn, spec.scale,
        coords(**{**dict(spec.coords), "engine": backend}),
        seeds=spec.seeds,
    )


def _engine_invariant(spec: CellSpec) -> bool:
    """True when *spec*'s payload provably does not depend on whether the
    persona runs on the packet/iterator machinery or the push backend.

    * fig1a always runs the dbms-x persona: the push backend replays the
      iterator engine's exact virtual-cost schedule, so every payload --
      timings included -- is identical.
    * Any ``system == "dbmsx"`` slot, for the same reason.
    * fig8's ``system == "baseline"`` slots: with sharing off the payload
      (total disk blocks read) is decided by the buffer pool alone, which
      both backends drive with the same page-access sequence.  QPipe
      w/OSP slots are *not* invariant -- OSP lives in the packet engine.
    """
    if spec.fn not in _ENGINE_AWARE_FNS:
        return False
    c = spec.coord
    if spec.fn.endswith(":fig1a_cell"):
        return True
    if c.get("system") == "dbmsx":
        return True
    return spec.fn.endswith(":fig8_cell") and c.get("system") == "baseline"


def substitute_engine(
    specs: Sequence[CellSpec], backend: str
) -> List[CellSpec]:
    """Rewrite the engine-invariant slots of *specs* to run on *backend*.

    Used by ``python -m repro.harness --engine pushed``: the figure's
    rendered bytes must not change, so only slots whose payload is
    provably backend-independent (see :func:`_engine_invariant`) are
    rewritten; the rest keep the historical packet machinery.
    """
    if backend == "packets":
        return list(specs)
    return [
        _with_engine(s, backend) if _engine_invariant(s) else s
        for s in specs
    ]


def force_engine(specs: Sequence[CellSpec], backend: str) -> List[CellSpec]:
    """Rewrite *every* engine-aware slot of *specs* to run on *backend*.

    For wall-clock benchmarking (``repro.bench``'s ``*_pushed`` macros),
    where the point is to time the backend on the full grid and figure
    fidelity is out of scope.  Slots whose cell function ignores the
    engine coordinate are left alone rather than silently mislabelled.
    """
    if backend == "packets":
        return list(specs)
    return [
        _with_engine(s, backend) if s.fn in _ENGINE_AWARE_FNS else s
        for s in specs
    ]


# ---------------------------------------------------------------------------
# Generalized sharing: fold similar (not identical) concurrent queries
# ---------------------------------------------------------------------------
#: Arrival stagger (seconds) between the fold workload's queries.  Late
#: arrivals are where folding wins: an OSP circular scan admits them
#: mid-file and makes them wait for the wrap-around pass, while a fold
#: group replays the missed prefix from its survivor ring for free.
FOLD_STAGGER = 5.0

_FOLD_AGGS = (
    AggSpec("sum", Col("unique2"), "s"),
    AggSpec("count", Col("unique1"), "c"),
)


def _fold_workload(count: int, similarity: float, rng: random.Random):
    """*count* queries over ``big1``; ``round(count * similarity)`` are
    fold-eligible.

    The similar cohort is a predicate-subsumption chain -- ``Between``
    ranges shrinking with arrival order, so the first (widest) query
    hosts and every later one is subsumed -- mixing whole-query
    ``Aggregate`` folds with ``GroupBy``-rooted queries whose *scan*
    folds as a member.  The dissimilar remainder runs order-sensitive
    scans of the same ranges: ineligible for folding (and for circular
    sharing), identical in both arms.
    """
    n_similar = int(round(count * similarity))
    plans = []
    for i in range(count):
        hi = 1400 - 100 * i
        pred = Between(Col("unique1"), 0, hi)
        aggs = [AggSpec(rng.choice(("sum", "min", "max")),
                        Col("unique2"), "a"), _FOLD_AGGS[1]]
        if i >= n_similar:
            plans.append(
                Aggregate(TableScan("big1", pred, ordered=True), aggs)
            )
        elif i % 3 == 2:
            plans.append(
                GroupBy(TableScan("big1", pred), ["tenpercent"], aggs)
            )
        else:
            plans.append(Aggregate(TableScan("big1", pred), aggs))
    return plans


@cell
def fold_cell(spec: CellSpec) -> Dict[str, Any]:
    """Makespan + sharing counters + result digest for one fold config.

    The digest covers every query's full result rows; equal digests for
    the folded and unfolded arms of a config prove byte-identical
    per-query results (the fold-invariance acceptance check).
    """
    c = spec.coord
    host, sm, engine = build_wisconsin_system(spec.scale, "qpipe")
    engine.config.fold_enabled = c["folded"]
    rng = random.Random(FOLD_QUERY_SEED)
    plans = _fold_workload(c["count"], c["similarity"], rng)
    delays = [i * c["stagger"] for i in range(c["count"])]
    results = _run_staggered(host, engine, plans, delays)
    digest = hashlib.sha256(
        repr([r.rows for r in results]).encode()
    ).hexdigest()
    fold = engine.fold_stats
    osp = engine.osp_stats
    return {
        "makespan": round(_makespan(results), 1),
        "digest": digest,
        "fold_groups": fold.groups,
        "fold_members": fold.folded,
        "fold_rate": round(fold.fold_rate(), 2),
        "pages_saved": fold.pages_saved,
        "residual_rows": fold.residual_rows,
        "banks": fold.banks,
        "unfolds": fold.unfolds,
        "osp_attaches": osp.total_attaches,
        "shared_pages": osp.shared_page_deliveries,
    }


def fold_cells(
    scale: Scale = SMOKE,
    counts: Sequence[int] = (4, 6),
    similarities: Sequence[float] = (0.0, 0.5, 1.0),
    stagger: float = FOLD_STAGGER,
) -> List[CellSpec]:
    return [
        CellSpec(
            "fold",
            fn_key(fold_cell), scale,
            coords(count=count, similarity=sim, stagger=stagger,
                   folded=folded),
            seeds=(("FOLD_QUERY_SEED", FOLD_QUERY_SEED),),
        )
        for count in counts
        for sim in similarities
        for folded in (False, True)
    ]


def fold_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Tuple[Series, Series, List[str]]:
    """(throughput series, sharing-metrics table, invariance lines)."""
    series = Series(
        title="Generalized sharing: makespan, folded vs unfolded",
        x_label="workload",
        y_label="makespan (s)",
    )
    sharing = Series(
        title="Sharing metrics, folded runs (OSP + fold, one table)",
        x_label="workload",
        y_label="count",
    )
    arms: Dict[Tuple, Dict[bool, Any]] = {}
    for spec in specs:
        c = spec.coord
        arms.setdefault(
            (c["count"], c["similarity"]), {}
        )[c["folded"]] = payloads[spec]
    lines = []
    for (count, sim), pair in arms.items():
        label = f"{count}q sim={sim:.1f}"
        folded, unfolded = pair.get(True), pair.get(False)
        if unfolded is not None:
            series.add_point("unfolded (s)", label, unfolded["makespan"])
        if folded is not None:
            series.add_point("folded (s)", label, folded["makespan"])
            for metric in (
                "fold_groups", "fold_members", "fold_rate", "pages_saved",
                "residual_rows", "banks", "unfolds", "osp_attaches",
                "shared_pages",
            ):
                sharing.add_point(
                    metric.replace("_", " "), label, folded[metric]
                )
        if folded is None or unfolded is None:
            continue
        gain = 100.0 * (
            unfolded["makespan"] - folded["makespan"]
        ) / unfolded["makespan"] if unfolded["makespan"] else 0.0
        series.add_point("gain (%)", label, round(gain, 1))
        same = folded["digest"] == unfolded["digest"]
        lines.append(
            f"  {label}: results identical: {'yes' if same else 'NO'}"
        )
    return series, sharing, lines


def _render_fold(specs, payloads) -> str:
    series, sharing, lines = fold_merge(specs, payloads)
    return "\n\n".join(
        [
            series.render(),
            sharing.render(),
            "Fold invariance (per-query rows, folded vs unfolded):\n"
            + "\n".join(lines),
        ]
    )


def fold_sharing(
    scale: Scale = SMOKE,
    counts: Sequence[int] = (4, 6),
    similarities: Sequence[float] = (0.0, 0.5, 1.0),
    results: Optional[Payloads] = None,
) -> Tuple[Series, Series, List[str]]:
    """The fold experiment, serial in-process (tests and repro.bench)."""
    specs = fold_cells(scale, counts, similarities)
    return fold_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# Scale-out: sharded multi-host speedup (DESIGN.md section 16)
# ---------------------------------------------------------------------------
#: Host counts the scale-out figure sweeps.
SCALEOUT_HOSTS = (1, 2, 4, 8)

#: The 4-host speedup the scan workload must clear (CI-gated verdict).
SCALEOUT_TARGET_4H = 2.5

#: Arrival stagger between the scale-out workload's queries, kept small
#: relative to a ~40 s scan so the serial ramp does not cap speedup.
SCALEOUT_STAGGER = 1.0


def _scaleout_plans(workload: str) -> List:
    """The frozen query set per workload (fixed parameters: the figure
    compares host counts, so every count must run identical queries).

    ``scan``: four selective scan-aggregates over BIG1/BIG2 -- each
    reads a whole table but ships only ~2%% of its rows, so the sweep
    measures partitioned-scan bandwidth (plus per-shard OSP sharing of
    the two BIG1 scans).  ``join``: one replicated-build hash join
    (gather), one grouped aggregate (shuffle), one partitioned-x-
    partitioned join (broadcast) -- exchange-heavy by construction.
    """
    from repro.relational.plans import Limit, Project, Sort

    if workload == "scan":
        aggs = [AggSpec("sum", Col("unique2")), AggSpec("count", None)]
        return [
            Aggregate(
                TableScan(
                    table, predicate=Between(Col("onepercent"), lo, lo + 1)
                ),
                aggs,
            )
            for table, lo in (
                ("big1", 0), ("big1", 40), ("big2", 20), ("big2", 60),
            )
        ]
    if workload == "join":
        return [
            Sort(
                HashJoin(
                    TableScan("small", project=["unique1", "unique2"]),
                    TableScan(
                        "big1",
                        predicate=Between(Col("unique1"), 0, 400),
                        project=["unique1", "ten"],
                        alias="b",
                    ),
                    "unique1",
                    "b.unique1",
                ),
                ["unique2"],
            ),
            GroupBy(
                TableScan("big2"),
                ["ten"],
                [AggSpec("sum", Col("unique1")), AggSpec("count", None)],
            ),
            Limit(
                HashJoin(
                    TableScan(
                        "big2",
                        predicate=Between(Col("unique1"), 0, 100),
                        project=["unique1", "four"],
                    ),
                    # The probe scan's order flows through the join to the
                    # LIMIT, so it must be an *ordered* scan: OSP's
                    # circular sharing may otherwise rotate the delivery
                    # order under concurrency (on ANY host count).
                    TableScan(
                        "big1", project=["unique1", "twenty"], alias="b",
                        ordered=True,
                    ),
                    "unique1",
                    "b.unique1",
                ),
                2000,
            ),
        ]
    raise ValueError(f"unknown scale-out workload {workload!r}")


@cell
def scaleout_cell(spec: CellSpec) -> Dict:
    """Run one (hosts, workload) point; returns makespan, per-query
    result digests (the byte-identity evidence), and traffic/utilization
    telemetry."""
    from repro.harness.config import build_sharded_wisconsin_system

    c = spec.coord
    cluster, system, executor = build_sharded_wisconsin_system(
        spec.scale,
        c["hosts"],
        system=c.get("system", "qpipe"),
        backend=c.get("engine", "packets"),
    )
    plans = _scaleout_plans(c["workload"])
    procs = []

    def client(plan, delay):
        yield cluster.sim.timeout(delay)
        result = yield from executor.execute(plan)
        return result

    for i, plan in enumerate(plans):
        procs.append(
            cluster.sim.spawn(
                client(plan, i * SCALEOUT_STAGGER), name=f"client{i}"
            )
        )
    cluster.sim.run_until_done(procs)
    results = [p.value for p in procs]
    net = system.network.stats
    return {
        "makespan": round(_makespan(results), 3),
        "digests": [
            hashlib.sha256(repr(r.rows).encode("utf-8")).hexdigest()
            for r in results
        ],
        "rows": [len(r.rows) for r in results],
        "net_bytes": net.bytes_on_wire,
        "net_msgs": net.messages,
        "disk_util": [round(s.host.disk.utilization(), 3) for s in system],
        "strategies": dict(sorted(executor.stats.strategies.items())),
    }


def scaleout_cells(
    scale: Scale = SMOKE,
    host_counts: Sequence[int] = SCALEOUT_HOSTS,
    workloads: Sequence[str] = ("scan", "join"),
) -> List[CellSpec]:
    return [
        CellSpec(
            "scaleout", fn_key(scaleout_cell), scale,
            coords(hosts=hosts, workload=workload, system="qpipe"),
        )
        for workload in workloads
        for hosts in host_counts
    ]


def scaleout_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Tuple[Dict[str, Series], List[str]]:
    """Per-workload speedup series plus the CI verdict lines.

    Speedup is against the same workload's 1-host cell; the byte-
    identity verdict compares every host count's per-query digests to
    the 1-host run's.  Verdict lines are stable strings the CI smoke
    leg greps, ordered by workload then host count.
    """
    series: Dict[str, Series] = {}
    base: Dict[str, Dict] = {}
    for spec in specs:
        c = spec.coord
        if c["hosts"] == 1:
            base[c["workload"]] = payloads[spec]
    verdicts: List[str] = []
    seen_identity: Dict[str, bool] = {}
    for spec in specs:
        c = spec.coord
        workload, hosts = c["workload"], c["hosts"]
        payload = payloads[spec]
        out = series.get(workload)
        if out is None:
            out = series[workload] = Series(
                title=(
                    f"Scale-out ({workload} workload): makespan and "
                    "speedup vs 1 host"
                ),
                x_label="hosts",
                y_label="makespan (s)",
            )
        out.add_point("makespan", hosts, payload["makespan"])
        ref = base.get(workload)
        if ref is not None:
            out.add_point(
                "speedup", hosts,
                round(ref["makespan"] / max(payload["makespan"], 1e-9), 2),
            )
            identical = payload["digests"] == ref["digests"]
            seen_identity[workload] = (
                seen_identity.get(workload, True) and identical
            )
        out.add_point("net MB", hosts, round(payload["net_bytes"] / 1e6, 3))
    for workload in series:
        ok = seen_identity.get(workload, False)
        verdicts.append(
            f"scaleout byte-identity ({workload}): "
            + ("PASS" if ok else "FAIL")
            + " -- per-query results "
            + ("identical across host counts" if ok else "DIVERGED")
        )
    for spec in specs:
        c = spec.coord
        if c["workload"] == "scan" and c["hosts"] == 4:
            ref = base.get("scan")
            if ref is None:
                continue
            speedup = ref["makespan"] / max(payloads[spec]["makespan"], 1e-9)
            ok = speedup >= SCALEOUT_TARGET_4H
            verdicts.append(
                f"scaleout 4-host speedup (scan): {speedup:.2f}x "
                f"(target >= {SCALEOUT_TARGET_4H}): "
                + ("PASS" if ok else "FAIL")
            )
    return series, verdicts


def _render_scaleout(specs, payloads) -> str:
    series, verdicts = scaleout_merge(specs, payloads)
    blocks = [series[w].render() for w in sorted(series)]
    blocks.append("\n".join(verdicts))
    return "\n\n".join(blocks)


def scaleout(
    scale: Scale = SMOKE,
    host_counts: Sequence[int] = SCALEOUT_HOSTS,
    workloads: Sequence[str] = ("scan", "join"),
    results: Optional[Payloads] = None,
) -> Tuple[Dict[str, Series], List[str]]:
    """The scale-out experiment, serial in-process (tests, repro.bench)."""
    specs = scaleout_cells(scale, host_counts, workloads)
    return scaleout_merge(specs, _payloads(specs, results))


# ---------------------------------------------------------------------------
# The figure catalogue the CLI runs (cells + render, per figure)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure:
    """One CLI figure: a declarative cell list plus a render step."""

    name: str
    cells: Callable[[Scale], List[CellSpec]]
    render: Callable[[Sequence[CellSpec], Payloads], str]


def _render_fig1a(specs, payloads) -> str:
    _rows, rendered = fig1a_merge(specs, payloads)
    return rendered


def _render_fig1b(specs, payloads) -> str:
    series = fig12_merge(specs, payloads)
    series.title = "Figure 1b: TPC-H throughput, QPipe vs DBMS X"
    return series.render()


def _render_fig8(specs, payloads) -> str:
    out = fig8_merge(specs, payloads)
    return "\n\n".join(out[n].render() for n in sorted(out))


def _render_overhead(specs, payloads) -> str:
    result = osp_overhead_merge(specs, payloads)
    return (
        "OSP coordinator overhead (no sharing opportunities):\n"
        f"  makespan OSP on : {result['makespan_osp_on']:.1f} s\n"
        f"  makespan OSP off: {result['makespan_osp_off']:.1f} s\n"
        f"  ratio           : {result['overhead_ratio']:.4f}"
    )


FIGURES: Dict[str, Figure] = {
    fig.name: fig
    for fig in (
        Figure("fig1a", fig1a_cells, _render_fig1a),
        Figure("fig1b", fig1b_cells, _render_fig1b),
        Figure("fig4", fig4_cells,
               lambda s, p: fig4_merge(s, p).render()),
        Figure("fig8", fig8_cells, _render_fig8),
        Figure("fig9", fig9_cells,
               lambda s, p: _two_query_merge(FIG9_TITLE, s, p).render()),
        Figure("fig10", fig10_cells,
               lambda s, p: _two_query_merge(FIG10_TITLE, s, p).render()),
        Figure("fig11", fig11_cells,
               lambda s, p: _two_query_merge(FIG11_TITLE, s, p).render()),
        Figure("fig12", fig12_cells,
               lambda s, p: fig12_merge(s, p).render()),
        Figure("fig13", fig13_cells,
               lambda s, p: fig13_merge(s, p).render()),
        Figure("overhead", osp_overhead_cells, _render_overhead),
        Figure("fold", fold_cells, _render_fold),
        Figure("ablation-policies", ablation_policies_cells,
               lambda s, p: ablation_policies_merge(s, p).render()),
        Figure("ablation-replay", ablation_replay_cells,
               lambda s, p: ablation_replay_merge(s, p).render()),
        Figure("ablation-wraparound", ablation_wraparound_cells,
               lambda s, p: ablation_wraparound_merge(s, p).render()),
        Figure("ablation-late-activation", ablation_late_activation_cells,
               lambda s, p: ablation_late_activation_merge(s, p).render()),
        Figure("scaleout", scaleout_cells, _render_scaleout),
    )
}


# ---------------------------------------------------------------------------
# Chaos harness: the Figure 12 mix under a seeded fault plan
# ---------------------------------------------------------------------------
def chaos(
    scale: Scale = SMOKE,
    fault_seed: int = 1,
    disk_faults: int = 8,
    process_faults: int = 4,
    stagger: float = 10.0,
    horizon: float = 250.0,
    engine_backend: str = "packets",
    recovery: bool = False,
) -> Dict:
    """Run the Figure 12 query mix under a seeded random fault plan.

    Every query must either complete with results identical to its
    fault-free solo run, or fail cleanly with a typed
    :class:`~repro.faults.errors.FaultError` -- in both cases with every
    buffer-pool pin and table lock reclaimed and no orphaned satellites
    (checked by replaying the recorded trace through the
    InvariantChecker plus direct end-state inspection).

    ``engine_backend`` selects the server under attack: ``packets`` (the
    QPipe micro-engine build) or ``pushed`` (the push-based fused
    backend).  With ``recovery=True`` every client executes through a
    :class:`~repro.lineage.RecoveryManager` -- crashes and disconnects
    resume from the durable lineage frontier instead of surfacing, the
    fault plan additionally draws two log-device faults (appended
    *after* the disk/process draws, so the schedule an existing seed
    produces is unchanged), and a completed query must still match its
    fault-free solo rows.

    Returns a dict with the fault plan, per-query outcomes, the recorded
    trace events (for the determinism test: same ``fault_seed`` + config
    must produce byte-identical JSONL), and the violation list (empty on
    a clean run).

    Chaos is deliberately *not* cellified: it is a single adversarial
    run whose value is the interleaving, not a grid of points.
    """
    from repro.faults import FaultInjector, random_plan
    from repro.faults.errors import FaultError
    from repro.lineage import RecoveryManager
    from repro.obs import Tracer
    from repro.obs.invariants import InvariantChecker
    from repro.sim import Interrupted

    names = list(MIX)

    def build_system():
        if engine_backend == "pushed":
            return build_tpch_system(scale, "dbmsx", backend="pushed")
        return build_tpch_system(scale, "qpipe")

    def rows_match(got, want) -> bool:
        # A consumer attaching to a circular scan mid-file receives the
        # same tuples as a solo run but in wrapped page order, so float
        # aggregates differ by addition-order rounding (~1e-12 relative).
        # Only that non-associativity slack is tolerated; any missing or
        # duplicated tuple still fails.
        if len(got) != len(want):
            return False
        for g, w in zip(got, want):
            if len(g) != len(w):
                return False
            for a, b in zip(g, w):
                if a == b:
                    continue
                if (
                    isinstance(a, float)
                    and isinstance(b, float)
                    and math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                ):
                    continue
                return False
        return True

    def build_plans():
        return [
            Q.QUERY_BUILDERS[name](random.Random(CHAOS_QUERY_SEED_BASE + i))
            for i, name in enumerate(names)
        ]

    # Reference: each query solo on a fresh fault-free system.
    reference: Dict[str, List[tuple]] = {}
    host, sm, engine = build_system()
    for name, plan in zip(names, build_plans()):
        reference[name] = sorted(engine.run_query(plan))

    # Faulted run: all queries staggered, under the seeded fault plan.
    host, sm, engine = build_system()
    tracer = Tracer(host.sim)
    fault_plan = random_plan(
        fault_seed,
        horizon=horizon,
        disk_faults=disk_faults,
        process_faults=process_faults,
        tables=["lineitem", "orders", "part"],
        log_faults=2 if recovery else 0,
    )
    injector = FaultInjector(fault_plan).attach(engine)
    manager = (
        RecoveryManager(engine, injector=injector) if recovery else None
    )
    outcomes: Dict[str, Tuple[str, object]] = {}

    def client(name, plan, delay):
        # The stagger sleep is inside the try: a disconnect landing
        # before the query starts is still a clean "disconnected"
        # outcome, not a lost client.
        try:
            yield host.sim.timeout(delay)
            if manager is not None:
                report = yield from manager.run(plan)
                rows = report.rows
            else:
                result = yield from engine.execute(plan)
                rows = result.rows
        except FaultError as exc:
            outcomes[name] = ("failed", type(exc).__name__)
            return None
        except Interrupted:
            outcomes[name] = ("disconnected", None)
            return None
        outcomes[name] = ("completed", sorted(rows))
        return None

    procs = []
    for i, (name, plan) in enumerate(zip(names, build_plans())):
        proc = host.sim.spawn(
            client(name, plan, i * stagger), name=f"chaos-{i:02d}-{name}"
        )
        injector.register_client(proc)
        procs.append(proc)
    host.sim.run_until_done(procs)

    # ---- verdicts -----------------------------------------------------
    violations: List[str] = []
    summary: Dict[str, str] = {}
    for name in names:
        outcome = outcomes.get(name)
        if outcome is None:
            violations.append(f"{name}: client died without an outcome")
            summary[name] = "LOST"
            continue
        status, payload = outcome
        if status == "completed":
            if not rows_match(payload, reference[name]):
                violations.append(
                    f"{name}: completed with wrong rows "
                    f"({len(payload)} vs {len(reference[name])} expected)"
                )
                summary[name] = "WRONG-ROWS"
            else:
                summary[name] = "OK"
        elif status == "failed":
            summary[name] = f"FAILED({payload})"
        else:
            summary[name] = "DISCONNECTED"
    violations.extend(InvariantChecker(tracer.events).check())
    residual_locks = [
        (owner, resource)
        for resource, grants in sm.locks._granted.items()
        for owner, _mode in grants
    ]
    for owner, resource in residual_locks:
        violations.append(f"residual lock on {resource!r} by {owner!r}")
    for key, count in sm.pool._pins.items():
        violations.append(f"leaked buffer pin on page {key} (count={count})")
    if engine.active_queries != 0:
        violations.append(
            f"{engine.active_queries} queries still active at end of run"
        )
    result = {
        "fault_seed": fault_seed,
        "engine": engine_backend,
        "recovery": recovery,
        "plan": fault_plan.describe(),
        "fired": injector.fired,
        "outcomes": summary,
        "aborted": engine.queries_aborted,
        "violations": violations,
        "events": tracer.events,
    }
    if manager is not None:
        result["recoveries"] = manager.recoveries
        result["clean_restarts"] = manager.clean_restarts
        result["pages_saved"] = manager.pages_saved
    return result


def render_chaos(result: Dict) -> str:
    label = result.get("engine", "packets")
    if result.get("recovery"):
        label += ", recovery on"
    lines = [f"Chaos run (fault seed {result['fault_seed']}, {label}):"]
    lines.append("  scheduled faults:")
    for line in result["plan"]:
        lines.append(f"    {line}")
    lines.append(f"  faults fired: {len(result['fired'])}")
    lines.append("  query outcomes:")
    for name, verdict in result["outcomes"].items():
        lines.append(f"    {name:<4} {verdict}")
    lines.append(f"  queries aborted: {result['aborted']}")
    if result.get("recovery"):
        lines.append(
            f"  recoveries: {result['recoveries']} resumed, "
            f"{result['clean_restarts']} clean restarts, "
            f"{result['pages_saved']} pages of rescanning saved"
        )
    if result["violations"]:
        lines.append(f"  VIOLATIONS ({len(result['violations'])}):")
        for violation in result["violations"]:
            lines.append(f"    {violation}")
    else:
        lines.append("  invariants: all clean (pins, locks, satellites)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Recovery harness: restart-work-saved under mid-query crashes
# ---------------------------------------------------------------------------
#: One controlled crash scenario per resume mechanism and engine.
RECOVERY_SCENARIOS = (
    "scan",          # qpipe, OSP on: solo scan, crash mid-pass
    "scan-noshare",  # OSP off (Baseline build): same crash, private scan
    "osp-pair",      # crash a consumer that attached mid-circular-scan
    "agg",           # Aggregate(scan): checkpoint resume
    "torn",          # torn lineage record: truncated frontier, still right
    "log-error",     # log device dies early: degraded frontier, still right
    "pushed",        # push-based fused engine, scan crash
    "iterator",      # iterator engine: client disconnect as the fault
)


def _recovery_scan_plan() -> TableScan:
    return TableScan("lineitem", project=["l_orderkey", "l_extendedprice"])


def _recovery_agg_plan() -> Aggregate:
    return Aggregate(
        TableScan("lineitem"),
        [
            AggSpec("sum", Col("l_extendedprice"), "revenue"),
            AggSpec("avg", Col("l_quantity"), "avg_qty"),
            AggSpec("count", None, "n"),
            AggSpec("max", Col("l_discount"), "max_disc"),
        ],
    )


def _recovery_build(scale: Scale, scenario: str):
    if scenario == "scan-noshare":
        return build_tpch_system(scale, "baseline")
    if scenario == "pushed":
        return build_tpch_system(scale, "dbmsx", backend="pushed")
    if scenario == "iterator":
        return build_tpch_system(scale, "dbmsx")
    return build_tpch_system(scale, "qpipe")


@cell
def recovery_cell(spec: CellSpec) -> Dict[str, Any]:
    """One crash scenario: fault-free reference vs crashed-plus-recovered.

    The crash lands at a seeded fraction of the measured fault-free
    duration, so every seed probes a different point of the scan.  The
    recovered rows must be *byte-identical* to the reference (these
    scenarios control attachment order, so no float-fold slack is
    needed) and the run must leave pins, locks and temp files balanced.
    """
    from repro.faults import FaultInjector, FaultPlan
    from repro.faults.errors import FaultError
    from repro.lineage import RecoveryManager
    from repro.obs import Tracer
    from repro.obs.invariants import InvariantChecker
    from repro.sim import Interrupted

    c = spec.coord
    scenario = c["scenario"]
    fault_seed = int(c["fault_seed"])
    rng = random.Random(fault_seed)
    crash_frac = rng.uniform(0.3, 0.8)
    plan_fn = _recovery_agg_plan if scenario == "agg" else _recovery_scan_plan
    pair = scenario == "osp-pair"
    attach_delay = 0.0

    # ---- fault-free reference (also measures the duration) ------------
    host, sm, engine = _recovery_build(spec.scale, scenario)
    reference: Dict[str, List[tuple]] = {}
    if pair:
        attach_delay = 0.4 * spec.scale.lineitem_scan_seconds

        def ref_c1():
            res = yield from engine.execute(TableScan("lineitem",
                                                      project=["l_orderkey"]))
            reference["peer"] = res.rows

        def ref_c2():
            yield host.sim.timeout(attach_delay)
            res = yield from engine.execute(plan_fn())
            reference["main"] = res.rows

        host.sim.spawn(ref_c1(), name="ref-peer")
        host.sim.spawn(ref_c2(), name="ref-main")
        host.sim.run()
        duration = host.sim.now - attach_delay
        crash_at = attach_delay + crash_frac * duration
    else:
        result = engine.run_query(plan_fn())
        reference["main"] = result
        duration = host.sim.now
        crash_at = crash_frac * duration

    # ---- crashed run with recovery ------------------------------------
    host, sm, engine = _recovery_build(spec.scale, scenario)
    tracer = Tracer(host.sim)
    fault_plan = FaultPlan()
    if scenario == "iterator":
        # The iterator engine has no server-side abort channel; the
        # fault is a client disconnect, and recovery doubles as the
        # reconnect path.
        fault_plan.disconnect(at=crash_at, target=0)
    elif pair:
        # Two active queries, sorted by id: target=1 crashes the later
        # one -- the consumer that attached mid-circular-scan.
        fault_plan.crash_query(at=crash_at, target=1)
    else:
        fault_plan.crash_query(at=crash_at, target=0)
    if scenario == "torn":
        fault_plan.torn_record(at=0.5 * crash_at, target=0)
    elif scenario == "log-error":
        fault_plan.log_error(at=0.25 * crash_at, target=0, transient=False)
    injector = FaultInjector(fault_plan).attach(engine)
    manager = RecoveryManager(engine, injector=injector)
    got: Dict[str, Any] = {}
    failure: List[str] = []

    def run_main():
        try:
            report = yield from manager.run(plan_fn())
        except (FaultError, Interrupted) as exc:
            failure.append(type(exc).__name__)
            return
        got["main"] = report.rows
        got["report"] = report

    procs = []
    if pair:
        def run_peer():
            res = yield from engine.execute(TableScan("lineitem",
                                                      project=["l_orderkey"]))
            got["peer"] = res.rows

        procs.append(host.sim.spawn(run_peer(), name="rec-peer"))

        def run_delayed():
            yield host.sim.timeout(attach_delay)
            yield from run_main()

        main_proc = host.sim.spawn(run_delayed(), name="rec-main")
    else:
        main_proc = host.sim.spawn(run_main(), name="rec-main")
    procs.append(main_proc)
    injector.register_client(main_proc)
    host.sim.run_until_done(procs)

    # ---- verdicts -----------------------------------------------------
    violations = list(InvariantChecker(tracer.events).check())
    for resource, grants in sm.locks._granted.items():
        for owner, _mode in grants:
            violations.append(f"residual lock on {resource!r} by {owner!r}")
    for key, count in sm.pool._pins.items():
        violations.append(f"leaked buffer pin on page {key} (count={count})")
    active = getattr(engine, "active_queries", 0)
    if active:
        violations.append(f"{active} queries still active at end of run")
    report = got.get("report")
    identical = all(
        got.get(k) == reference[k] for k in reference
    ) and set(got) >= set(reference)
    log = manager.logs.get(report.query_id) if report is not None else None
    digest = (
        hashlib.sha256(log.serialize().encode()).hexdigest()
        if log is not None else None
    )
    return {
        "scenario": scenario,
        "fault_seed": fault_seed,
        "outcome": "ok" if not failure else f"failed:{failure[0]}",
        "byte_identical": bool(identical),
        "attempts": report.attempts if report else 0,
        "recoveries": report.recoveries if report else 0,
        "clean_restarts": report.clean_restarts if report else 0,
        "pages_saved": report.pages_saved if report else 0,
        "pages_total": report.pages_total if report else 0,
        "faults_fired": [f["type"] for f in injector.fired],
        "lineage_records": len(log.records) if log else 0,
        "log_blocks": log.blocks_written if log else 0,
        "lineage_digest": digest,
        "violations": violations,
    }


def recovery_cells(
    scale: Scale = SMOKE, fault_seed: int = 1
) -> List[CellSpec]:
    return [
        CellSpec(
            "recovery", fn_key(recovery_cell), scale,
            coords(scenario=scenario, fault_seed=fault_seed),
        )
        for scenario in RECOVERY_SCENARIOS
    ]


def recovery_merge(
    specs: Sequence[CellSpec], payloads: Payloads
) -> Dict[str, Dict[str, Any]]:
    return {spec.coord["scenario"]: payloads[spec] for spec in specs}


def recovery(
    scale: Scale = SMOKE,
    fault_seed: int = 1,
    results: Optional[Payloads] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run every recovery scenario; returns ``{scenario: payload}``."""
    specs = recovery_cells(scale, fault_seed)
    return recovery_merge(specs, _payloads(specs, results))


def render_recovery(result: Dict[str, Dict[str, Any]]) -> str:
    lines = ["Mid-query recovery (restart work saved per crash scenario):"]
    header = (
        f"  {'scenario':<14} {'outcome':<10} {'rows':<6} "
        f"{'saved':>5}/{'total':<5} {'resumed':>7} {'restarts':>8}"
    )
    lines.append(header)
    total_saved = 0
    clean = True
    for scenario, p in result.items():
        rows = "exact" if p["byte_identical"] else "WRONG"
        saved = p["pages_saved"]
        total_saved += saved
        lines.append(
            f"  {scenario:<14} {p['outcome']:<10} {rows:<6} "
            f"{saved:>5}/{p['pages_total']:<5} {p['recoveries']:>7} "
            f"{p['clean_restarts']:>8}"
        )
        if p["violations"] or not p["byte_identical"] or p["outcome"] != "ok":
            clean = False
            for violation in p["violations"]:
                lines.append(f"    VIOLATION: {violation}")
    lines.append(
        f"  total rescanning saved: {total_saved} pages across "
        f"{len(result)} crash scenarios"
    )
    lines.append(
        "  all scenarios clean" if clean
        else "  SOME SCENARIOS FAILED (see above)"
    )
    return "\n".join(lines)
