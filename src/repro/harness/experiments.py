"""One experiment runner per figure in the paper's evaluation.

Every function builds fresh seeded systems per data point so results are
deterministic and points are independent.  Returned objects are
:class:`~repro.harness.report.Series` (or dicts of them) whose
``render()`` prints the figure as text.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.config import (
    CHAOS_QUERY_SEED_BASE,
    CLIENT_SEED_BASE,
    FIG_QUERY_SEED,
    SHARED_PARAM_SEED,
    SMOKE,
    Scale,
    build_tpch_system,
    build_wisconsin_system,
)
from repro.harness.report import Series, render_breakdown
from repro.relational.expressions import AggSpec, Col
from repro.relational.plans import Aggregate, GroupBy, HashJoin, TableScan
from repro.workloads.clients import ClosedLoopClient, mixed_tpch_factory, run_workload
from repro.workloads.tpch import queries as Q
from repro.workloads.wisconsin import three_way_join

#: Paper section 5.3 / Figure 12 query mix.
MIX = ("q1", "q4", "q6", "q8", "q12", "q13", "q14", "q19")

INTERARRIVALS = (0, 10, 20, 40, 60, 80, 100, 120, 140)


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------
def _run_staggered(host, engine, plans: Sequence, delays: Sequence[float]):
    """Submit one query per plan at the given delays; returns results."""
    procs = []

    def client(plan, delay):
        yield host.sim.timeout(delay)
        result = yield from engine.execute(plan)
        return result

    for plan, delay in zip(plans, delays):
        procs.append(host.sim.spawn(client(plan, delay), name="client"))
    host.sim.run_until_done(procs)
    return [p.value for p in procs]


def _makespan(results) -> float:
    return max(r.finished_at for r in results) - min(
        r.submitted_at for r in results
    )


# ---------------------------------------------------------------------------
# Figure 1a: time breakdown of five TPC-H queries by table read
# ---------------------------------------------------------------------------
def fig1a_breakdown(scale: Scale = SMOKE):
    """Fraction of disk-read time per table for Q8, Q12, Q13, Q14, Q19.

    Reproduces Figure 1a's observation: despite disjoint computation,
    the queries overlap heavily on LINEITEM/ORDERS/PART reads.
    """
    queries = {
        "Q8": Q.q8,
        "Q12": Q.q12,
        "Q13": Q.q13,
        "Q14": Q.q14,
        "Q19": Q.q19,
    }
    tracked = ("lineitem", "orders", "part")
    rows: Dict[str, Dict[str, float]] = {}
    for name, builder in queries.items():
        host, sm, engine = build_tpch_system(scale, "dbmsx")
        file_to_table = {
            sm.table_file_id(t): t for t in sm.catalog.tables()
        }
        before = host.disk.stats.snapshot()
        proc = host.sim.spawn(engine.execute(builder(random.Random(FIG_QUERY_SEED))))
        host.sim.run()
        delta = host.disk.stats.delta(before)
        total = sum(t for _b, t in delta.per_file.values()) or 1.0
        fractions = {"other": 0.0}
        for fid, (_blocks, time) in delta.per_file.items():
            table = file_to_table.get(fid)
            if table in tracked:
                fractions[table] = fractions.get(table, 0.0) + time / total
            else:
                fractions["other"] += time / total
        rows[name] = fractions
    rendered = render_breakdown(
        "Figure 1a: per-table share of disk read time",
        rows,
        list(tracked) + ["other"],
    )
    return rows, rendered


# ---------------------------------------------------------------------------
# Figure 4: measured window-of-opportunity curves
# ---------------------------------------------------------------------------
def fig4_wop(
    scale: Scale = SMOKE,
    progress_points: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.95),
) -> Series:
    """Measured Q2 I/O savings vs Q1 progress, one curve per overlap
    class (linear / step / full / spike), mirroring Figure 4a.

    Cost is measured in *eliminated disk blocks*: a gain of 1 means Q2
    caused no additional I/O at all.
    """

    # The two queries of each pair differ in their ROOT aggregate so that
    # sharing can only happen at the operator under test (a shared root
    # would trivially yield a full overlap for every class).
    _aggs = {
        "a": [AggSpec("count", None, "n")],
        "b": [AggSpec("sum", Col("l_quantity"), "s")],
    }

    def scan_plan(flavor, ordered):
        return Aggregate(
            TableScan("lineitem", ordered=ordered), _aggs[flavor]
        )

    def full_plan(flavor):
        # The single aggregate itself is the measured operator, so the
        # pair is identical here: full overlap across the whole lifetime.
        return Aggregate(
            TableScan("lineitem"), [AggSpec("sum", Col("l_quantity"), "s")]
        )

    def step_plan(flavor):
        # Hash join: full during ORDERS build, step once probing starts.
        return GroupBy(
            HashJoin(
                TableScan("orders"),
                TableScan("lineitem"),
                "o_orderkey",
                "l_orderkey",
            ),
            ["o_orderpriority"],
            _aggs[flavor],
        )

    classes = {
        "linear(scan)": lambda flavor: scan_plan(flavor, False),
        "full(aggregate)": full_plan,
        "step(hash-join)": step_plan,
        "spike(ordered scan)": lambda flavor: scan_plan(flavor, True),
    }
    series = Series(
        title="Figure 4 (measured): Q2 cost saving vs Q1 progress",
        x_label="Q1 progress",
        y_label="fraction of Q2's disk blocks eliminated",
    )
    scale = _limited_buffers(scale)
    for label, make_plan in classes.items():
        # Solo baselines.
        host, sm, engine = build_tpch_system(scale, "qpipe")
        before = host.disk.stats.blocks_read
        solo = _run_staggered(host, engine, [make_plan("b")], [0.0])[0]
        solo_blocks = host.disk.stats.blocks_read - before
        solo_duration = solo.response_time
        for progress in progress_points:
            host, sm, engine = build_tpch_system(scale, "qpipe")
            plans = [make_plan("a"), make_plan("b")]
            results = _run_staggered(
                host, engine, plans, [0.0, progress * solo_duration]
            )
            pair_blocks = host.disk.stats.blocks_read
            extra = max(0, pair_blocks - solo_blocks)
            gain = max(0.0, 1.0 - extra / max(1, solo_blocks))
            series.add_point(label, round(progress, 2), round(gain, 3))
    return series


# ---------------------------------------------------------------------------
# Figure 8: disk blocks read vs interarrival time (2/4/8 clients of Q6)
# ---------------------------------------------------------------------------
def fig8_scan_sharing(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = (2, 4, 8),
    interarrivals: Optional[Sequence[float]] = None,
) -> Dict[int, Series]:
    """Total disk blocks read by N staggered Q6 clients, Baseline vs
    QPipe w/OSP."""
    if interarrivals is None:
        interarrivals = (0, 10, 20, 40, 60, 80, 100)
    out: Dict[int, Series] = {}
    for count in client_counts:
        series = Series(
            title=f"Figure 8 ({count} clients): disk blocks read",
            x_label="interarrival (s)",
            y_label="total disk blocks read",
        )
        for system in ("baseline", "qpipe"):
            for gap in interarrivals:
                host, sm, engine = build_tpch_system(scale, system)
                plans = [
                    Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(count)
                ]
                delays = [i * gap for i in range(count)]
                _run_staggered(host, engine, plans, delays)
                series.add_point(
                    "QPipe w/OSP" if system == "qpipe" else "Baseline",
                    gap,
                    host.disk.stats.blocks_read,
                )
        out[count] = series
    return out


# ---------------------------------------------------------------------------
# Figures 9-11: two staggered queries, total response time
# ---------------------------------------------------------------------------
def _two_query_sweep(
    title: str,
    build_system,
    make_plans,
    interarrivals: Sequence[float],
) -> Series:
    series = Series(
        title=title,
        x_label="interarrival (s)",
        y_label="total response time (s)",
    )
    for system in ("baseline", "qpipe"):
        label = "QPipe w/OSP" if system == "qpipe" else "Baseline"
        for gap in interarrivals:
            host, sm, engine = build_system(system)
            plans = make_plans()
            results = _run_staggered(host, engine, plans, [0.0, gap])
            series.add_point(label, gap, round(_makespan(results), 1))
    return series


def _limited_buffers(scale: Scale) -> Scale:
    """Figures 9-11 run in the paper's limited-buffer regime: a small
    fan-out replay ring, so step windows actually close and the
    order-sensitive split / scan-only sharing regimes become visible."""
    from repro.harness.config import with_overrides

    return with_overrides(
        scale,
        replay_tuples=min(scale.replay_tuples, 16),
        buffer_tuples=min(scale.buffer_tuples, 1024),
    )


def fig9_ordered_scans(
    scale: Scale = SMOKE,
    interarrivals: Sequence[float] = INTERARRIVALS,
) -> Series:
    """Two TPC-H Q4 instances with merge-joins over clustered index
    scans: order-sensitive scan sharing via the 4.3.2 two-pass split."""
    scale = _limited_buffers(scale)
    return _two_query_sweep(
        "Figure 9: order-sensitive clustered index scans (Q4, merge-join)",
        lambda system: build_tpch_system(scale, system),
        lambda: [
            Q.q4_merge(random.Random(SHARED_PARAM_SEED), flavor="count"),
            Q.q4_merge(random.Random(SHARED_PARAM_SEED), flavor="sum"),
        ],
        interarrivals,
    )


def fig10_sort_merge(
    scale: Scale = SMOKE,
    interarrivals: Sequence[float] = INTERARRIVALS,
) -> Series:
    """Two Wisconsin 3-way sort-merge joins sharing the BIG1/BIG2 sort
    (full overlap) and merge (step overlap) subtrees."""
    scale = _limited_buffers(scale)
    big_range = max(100, scale.wisconsin_big_rows // 2)
    return _two_query_sweep(
        "Figure 10: Wisconsin 3-way sort-merge join sharing",
        lambda system: build_wisconsin_system(scale, system),
        lambda: [
            three_way_join(big_range, Col("onepercent") < 50),
            three_way_join(big_range, Col("onepercent") >= 50),
        ],
        interarrivals,
    )


def fig11_hash_join(
    scale: Scale = SMOKE,
    interarrivals: Sequence[float] = INTERARRIVALS,
) -> Series:
    """Two TPC-H Q4 instances with hybrid hash joins: build-phase
    sharing first, then scan-only sharing once probing starts."""
    scale = _limited_buffers(scale)
    return _two_query_sweep(
        "Figure 11: hash-join build sharing (Q4, hash-join)",
        lambda system: build_tpch_system(scale, system),
        lambda: [
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="count"),
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="sum"),
        ],
        interarrivals,
    )


# ---------------------------------------------------------------------------
# Figures 1b/12: throughput vs number of clients, three systems
# ---------------------------------------------------------------------------
def fig12_throughput(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = tuple(range(1, 13)),
    systems: Sequence[str] = ("qpipe", "baseline", "dbmsx"),
) -> Series:
    """TPC-H mix throughput (queries/hour), zero think time.

    Figure 1b is this figure restricted to QPipe and DBMS X.
    """
    labels = {
        "qpipe": "QPipe w/OSP",
        "baseline": "Baseline",
        "dbmsx": "DBMS X",
    }
    series = Series(
        title="Figure 12: TPC-H throughput vs concurrent clients",
        x_label="clients",
        y_label="throughput (queries/hour)",
    )
    builders = [Q.QUERY_BUILDERS[name] for name in MIX]
    for system in systems:
        for count in client_counts:
            host, sm, engine = build_tpch_system(scale, system)
            factory = mixed_tpch_factory(builders)
            clients = [
                ClosedLoopClient(
                    i,
                    factory,
                    queries=scale.queries_per_client,
                    think_time=0.0,
                    start_delay=i * scale.client_stagger,
                )
                for i in range(count)
            ]
            metrics = run_workload(engine, clients, seed=scale.seed + count)
            series.add_point(
                labels[system], count, round(metrics.throughput_qph, 1)
            )
    return series


def fig1b_throughput(
    scale: Scale = SMOKE,
    client_counts: Sequence[int] = tuple(range(1, 13)),
) -> Series:
    """Figure 1b: the introduction's QPipe-vs-DBMS X throughput curve."""
    series = fig12_throughput(scale, client_counts, ("qpipe", "dbmsx"))
    series.title = "Figure 1b: TPC-H throughput, QPipe vs DBMS X"
    return series


# ---------------------------------------------------------------------------
# Figure 13: average response time vs think time, 10 clients
# ---------------------------------------------------------------------------
def fig13_think_time(
    scale: Scale = SMOKE,
    think_times: Sequence[float] = (0, 20, 40, 60, 240),
    clients: int = 10,
) -> Series:
    """Average response time of the TPC-H mix under varying think time
    (low think time = high load), QPipe w/OSP vs Baseline."""
    series = Series(
        title="Figure 13: average response time vs think time (10 clients)",
        x_label="think time (s)",
        y_label="average response time (s)",
    )
    builders = [Q.QUERY_BUILDERS[name] for name in MIX]
    # Think time only matters between consecutive queries of one client.
    queries = max(3, scale.queries_per_client)
    for system in ("baseline", "qpipe"):
        label = "QPipe w/OSP" if system == "qpipe" else "Baseline"
        for think in think_times:
            host, sm, engine = build_tpch_system(scale, system)
            factory = mixed_tpch_factory(builders)
            cl = [
                ClosedLoopClient(
                    i,
                    factory,
                    queries=queries,
                    think_time=think,
                    start_delay=i * scale.client_stagger,
                )
                for i in range(clients)
            ]
            metrics = run_workload(engine, cl, seed=scale.seed)
            series.add_point(
                label, think, round(metrics.avg_response_time, 1)
            )
    return series


# ---------------------------------------------------------------------------
# Section 5 claim: negligible OSP coordinator overhead
# ---------------------------------------------------------------------------
def osp_overhead(scale: Scale = SMOKE, queries: int = 6) -> Dict[str, float]:
    """Back-to-back (zero-concurrency) mixed queries with OSP on vs off.

    With no sharing opportunities the two runs must take essentially the
    same time; the paper reports the overhead as negligible.
    """
    builders = [Q.QUERY_BUILDERS[name] for name in MIX]

    def run(system: str) -> float:
        host, sm, engine = build_tpch_system(scale, system)
        rng = random.Random(scale.seed)
        client = ClosedLoopClient(
            0, mixed_tpch_factory(builders), queries=queries
        )
        metrics = run_workload(engine, [client], seed=scale.seed)
        return metrics.makespan

    with_osp = run("qpipe")
    without = run("baseline")
    return {
        "makespan_osp_on": with_osp,
        "makespan_osp_off": without,
        "overhead_ratio": with_osp / without if without else 1.0,
    }


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 4)
# ---------------------------------------------------------------------------
def ablation_replacement_policies(
    scale: Scale = SMOKE,
    policies: Sequence[str] = ("lru", "mru", "clock", "lru-k", "2q", "arc"),
    clients: int = 4,
    interarrival: float = 20.0,
) -> Series:
    """Figure 8's Baseline point under every replacement policy: how much
    of QPipe's sharing can a smarter pool recover on its own?

    Scan pages go through the policy itself here (no scan ring), so the
    policies' scan handling is what is actually being compared.
    """
    from repro.harness.config import make_engine
    from repro.storage.manager import StorageManager
    from repro.workloads.tpch import TpchScale, load_tpch
    from repro.harness.config import _estimate_lineitem_pages, _host_for_pages

    series = Series(
        title="Ablation: buffer replacement policy vs blocks read "
        f"({clients} Q6 clients, {interarrival:.0f}s apart)",
        x_label="policy",
        y_label="total disk blocks read",
    )
    for policy in policies:
        host = _host_for_pages(scale, _estimate_lineitem_pages(scale))
        sm = StorageManager(
            host, buffer_pages=scale.buffer_pages, policy=policy,
            use_scan_ring=False,
        )
        load_tpch(sm, TpchScale(scale.tpch_factor), seed=scale.seed)
        engine = make_engine(sm, scale, "baseline")
        plans = [Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(clients)]
        delays = [i * interarrival for i in range(clients)]
        _run_staggered(host, engine, plans, delays)
        series.add_point("Baseline", policy, host.disk.stats.blocks_read)
    # Reference: QPipe w/OSP on LRU.
    host, sm, engine = build_tpch_system(scale, "qpipe")
    plans = [Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(clients)]
    delays = [i * interarrival for i in range(clients)]
    _run_staggered(host, engine, plans, delays)
    series.notes.append(
        f"QPipe w/OSP (lru) reads {host.disk.stats.blocks_read} blocks"
    )
    return series


def ablation_circular_wraparound(
    scale: Scale = SMOKE,
    clients: int = 4,
    interarrivals: Sequence[float] = (0, 20, 60, 100),
) -> Series:
    """What wrap-around adds over naive attach-at-start scan sharing.

    "When the scanner thread reaches the end-of-file for the first time,
    it will keep scanning the relation from the beginning, to serve the
    unread pages" (section 4.3.1).  Without the wrap, a late scan can
    share only if it happens to arrive while the scanner sits at page 0.
    """
    from repro.harness.config import with_overrides

    series = Series(
        title="Ablation: circular wrap-around vs naive scan sharing",
        x_label="interarrival (s)",
        y_label="total disk blocks read",
    )
    for label, wrap in (("circular", True), ("attach-at-start", False)):
        for gap in interarrivals:
            host, sm, engine = build_tpch_system(scale, "qpipe")
            engine.config.circular_wraparound = wrap
            plans = [Q.q6(random.Random(CLIENT_SEED_BASE + i)) for i in range(clients)]
            delays = [i * gap for i in range(clients)]
            _run_staggered(host, engine, plans, delays)
            series.add_point(label, gap, host.disk.stats.blocks_read)
    return series


def ablation_late_activation(
    scale: Scale = SMOKE,
    clients: int = 4,
) -> Series:
    """Section 4.3.1's late activation policy, on vs off.

    Without it, probe-side scans attach to the shared scanner before
    their joins are ready to consume; the filled buffers stall the
    scanner (until detach-on-stall cuts them loose), costing extra time
    and I/O for everyone.
    """
    from repro.harness.config import make_engine

    series = Series(
        title="Ablation: late activation of scan packets",
        x_label="policy",
        y_label="value",
    )
    for label, late in (("on", True), ("off", False)):
        host, sm, engine = build_tpch_system(scale, "qpipe")
        engine.config.late_activation = late
        plans = [
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), "count" if i % 2 else "sum")
            for i in range(clients)
        ]
        delays = [i * 5.0 for i in range(clients)]
        results = _run_staggered(host, engine, plans, delays)
        series.add_point(f"late-activation {label}", "makespan (s)",
                         round(_makespan(results), 1))
        series.add_point(f"late-activation {label}", "blocks read",
                         host.disk.stats.blocks_read)
        series.add_point(f"late-activation {label}", "scan detaches",
                         engine.osp_stats.scan_detaches)
    return series


# ---------------------------------------------------------------------------
# Chaos harness: the Figure 12 mix under a seeded fault plan
# ---------------------------------------------------------------------------
def chaos(
    scale: Scale = SMOKE,
    fault_seed: int = 1,
    disk_faults: int = 8,
    process_faults: int = 4,
    stagger: float = 10.0,
    horizon: float = 250.0,
) -> Dict:
    """Run the Figure 12 query mix under a seeded random fault plan.

    Every query must either complete with results identical to its
    fault-free solo run, or fail cleanly with a typed
    :class:`~repro.faults.errors.FaultError` -- in both cases with every
    buffer-pool pin and table lock reclaimed and no orphaned satellites
    (checked by replaying the recorded trace through the
    InvariantChecker plus direct end-state inspection).

    Returns a dict with the fault plan, per-query outcomes, the recorded
    trace events (for the determinism test: same ``fault_seed`` + config
    must produce byte-identical JSONL), and the violation list (empty on
    a clean run).
    """
    from repro.faults import FaultInjector, random_plan
    from repro.faults.errors import FaultError
    from repro.obs import Tracer
    from repro.obs.invariants import InvariantChecker
    from repro.sim import Interrupted

    names = list(MIX)

    def rows_match(got, want) -> bool:
        # A consumer attaching to a circular scan mid-file receives the
        # same tuples as a solo run but in wrapped page order, so float
        # aggregates differ by addition-order rounding (~1e-12 relative).
        # Only that non-associativity slack is tolerated; any missing or
        # duplicated tuple still fails.
        if len(got) != len(want):
            return False
        for g, w in zip(got, want):
            if len(g) != len(w):
                return False
            for a, b in zip(g, w):
                if a == b:
                    continue
                if (
                    isinstance(a, float)
                    and isinstance(b, float)
                    and math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                ):
                    continue
                return False
        return True

    def build_plans():
        return [
            Q.QUERY_BUILDERS[name](random.Random(CHAOS_QUERY_SEED_BASE + i))
            for i, name in enumerate(names)
        ]

    # Reference: each query solo on a fresh fault-free system.
    reference: Dict[str, List[tuple]] = {}
    host, sm, engine = build_tpch_system(scale, "qpipe")
    for name, plan in zip(names, build_plans()):
        reference[name] = sorted(engine.run_query(plan))

    # Faulted run: all queries staggered, under the seeded fault plan.
    host, sm, engine = build_tpch_system(scale, "qpipe")
    tracer = Tracer(host.sim)
    fault_plan = random_plan(
        fault_seed,
        horizon=horizon,
        disk_faults=disk_faults,
        process_faults=process_faults,
        tables=["lineitem", "orders", "part"],
    )
    injector = FaultInjector(fault_plan).attach(engine)
    outcomes: Dict[str, Tuple[str, object]] = {}

    def client(name, plan, delay):
        yield host.sim.timeout(delay)
        try:
            result = yield from engine.execute(plan)
        except FaultError as exc:
            outcomes[name] = ("failed", type(exc).__name__)
            return None
        except Interrupted:
            outcomes[name] = ("disconnected", None)
            return None
        outcomes[name] = ("completed", sorted(result.rows))
        return result

    procs = []
    for i, (name, plan) in enumerate(zip(names, build_plans())):
        proc = host.sim.spawn(
            client(name, plan, i * stagger), name=f"chaos-{i:02d}-{name}"
        )
        injector.register_client(proc)
        procs.append(proc)
    host.sim.run_until_done(procs)

    # ---- verdicts -----------------------------------------------------
    violations: List[str] = []
    summary: Dict[str, str] = {}
    for name in names:
        outcome = outcomes.get(name)
        if outcome is None:
            violations.append(f"{name}: client died without an outcome")
            summary[name] = "LOST"
            continue
        status, payload = outcome
        if status == "completed":
            if not rows_match(payload, reference[name]):
                violations.append(
                    f"{name}: completed with wrong rows "
                    f"({len(payload)} vs {len(reference[name])} expected)"
                )
                summary[name] = "WRONG-ROWS"
            else:
                summary[name] = "OK"
        elif status == "failed":
            summary[name] = f"FAILED({payload})"
        else:
            summary[name] = "DISCONNECTED"
    violations.extend(InvariantChecker(tracer.events).check())
    residual_locks = [
        (owner, resource)
        for resource, grants in sm.locks._granted.items()
        for owner, _mode in grants
    ]
    for owner, resource in residual_locks:
        violations.append(f"residual lock on {resource!r} by {owner!r}")
    for key, count in sm.pool._pins.items():
        violations.append(f"leaked buffer pin on page {key} (count={count})")
    if engine.active_queries != 0:
        violations.append(
            f"{engine.active_queries} queries still active at end of run"
        )
    return {
        "fault_seed": fault_seed,
        "plan": fault_plan.describe(),
        "fired": injector.fired,
        "outcomes": summary,
        "aborted": engine.queries_aborted,
        "violations": violations,
        "events": tracer.events,
    }


def render_chaos(result: Dict) -> str:
    lines = [f"Chaos run (fault seed {result['fault_seed']}):"]
    lines.append("  scheduled faults:")
    for line in result["plan"]:
        lines.append(f"    {line}")
    lines.append(f"  faults fired: {len(result['fired'])}")
    lines.append("  query outcomes:")
    for name, verdict in result["outcomes"].items():
        lines.append(f"    {name:<4} {verdict}")
    lines.append(f"  queries aborted: {result['aborted']}")
    if result["violations"]:
        lines.append(f"  VIOLATIONS ({len(result['violations'])}):")
        for violation in result["violations"]:
            lines.append(f"    {violation}")
    else:
        lines.append("  invariants: all clean (pins, locks, satellites)")
    return "\n".join(lines)


def ablation_replay_ring(
    scale: Scale = SMOKE,
    ring_sizes: Sequence[int] = (16, 256, 4096, 65536),
    interarrival: float = 40.0,
) -> Series:
    """The Figure 4b buffering enhancement: a larger fan-out replay ring
    widens the hash-join step window, so later arrivals still attach."""
    from repro.harness.config import with_overrides

    series = Series(
        title="Ablation: fan-out replay ring size vs join sharing",
        x_label="replay ring (tuples)",
        y_label="hash-join attaches",
    )
    for size in ring_sizes:
        sized = with_overrides(scale, replay_tuples=max(1, size))
        host, sm, engine = build_tpch_system(sized, "qpipe")
        plans = [
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="count"),
            Q.q4_hash(random.Random(SHARED_PARAM_SEED), flavor="sum"),
        ]
        _run_staggered(host, engine, plans, [0.0, interarrival])
        series.add_point(
            "attaches", size, engine.osp_stats.attaches["hashjoin"]
        )
    return series
