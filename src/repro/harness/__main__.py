"""Command-line figure runner: ``python -m repro.harness <figure> [...]``.

Examples::

    python -m repro.harness list
    python -m repro.harness fig8
    python -m repro.harness fig12 --scale default
    python -m repro.harness all --scale smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness import (
    DEFAULT,
    SMOKE,
    chaos,
    render_chaos,
    collected_tracers,
    disable_tracing,
    enable_tracing,
    ablation_circular_wraparound,
    ablation_late_activation,
    ablation_replacement_policies,
    ablation_replay_ring,
    fig1a_breakdown,
    fig1b_throughput,
    fig4_wop,
    fig8_scan_sharing,
    fig9_ordered_scans,
    fig10_sort_merge,
    fig11_hash_join,
    fig12_throughput,
    fig13_think_time,
    osp_overhead,
)


def _render_fig1a(scale):
    _rows, rendered = fig1a_breakdown(scale)
    return rendered


def _render_fig8(scale):
    out = fig8_scan_sharing(scale)
    return "\n\n".join(out[n].render() for n in sorted(out))


def _render_overhead(scale):
    result = osp_overhead(scale)
    return (
        "OSP coordinator overhead (no sharing opportunities):\n"
        f"  makespan OSP on : {result['makespan_osp_on']:.1f} s\n"
        f"  makespan OSP off: {result['makespan_osp_off']:.1f} s\n"
        f"  ratio           : {result['overhead_ratio']:.4f}"
    )


FIGURES = {
    "fig1a": _render_fig1a,
    "fig1b": lambda scale: fig1b_throughput(scale).render(),
    "fig4": lambda scale: fig4_wop(scale).render(),
    "fig8": _render_fig8,
    "fig9": lambda scale: fig9_ordered_scans(scale).render(),
    "fig10": lambda scale: fig10_sort_merge(scale).render(),
    "fig11": lambda scale: fig11_hash_join(scale).render(),
    "fig12": lambda scale: fig12_throughput(scale).render(),
    "fig13": lambda scale: fig13_think_time(scale).render(),
    "overhead": _render_overhead,
    "ablation-policies": lambda scale: (
        ablation_replacement_policies(scale).render()
    ),
    "ablation-replay": lambda scale: ablation_replay_ring(scale).render(),
    "ablation-wraparound": lambda scale: (
        ablation_circular_wraparound(scale).render()
    ),
    "ablation-late-activation": lambda scale: (
        ablation_late_activation(scale).render()
    ),
}

SCALES = {"smoke": SMOKE, "default": DEFAULT}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the QPipe paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="smoke",
        help="experiment scale preset (default: smoke)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "record packet-lifecycle traces; writes one JSONL and one "
            "Chrome trace_event file per simulated host into DIR"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=1,
        help="seed for the chaos experiment's random fault plan",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        print("available figures:")
        for name in FIGURES:
            print(f"  {name}")
        print("  chaos  (supports --fault-seed N)")
        return 0

    if args.figure == "chaos":
        scale = SCALES[args.scale]
        # Wall-clock here measures the *host*, never sim behaviour.
        start = time.time()  # simlint: disable=DET001
        result = chaos(scale, fault_seed=args.fault_seed)
        print(render_chaos(result))
        elapsed = time.time() - start  # simlint: disable=DET001
        print(f"[chaos @ {scale.name}: {elapsed:.1f}s wall]")
        if args.trace is not None:
            from repro.obs import write_jsonl

            os.makedirs(args.trace, exist_ok=True)
            path = os.path.join(
                args.trace, f"chaos-seed{args.fault_seed}.jsonl"
            )
            write_jsonl(result["events"], path)
            print(f"[trace: {path} ({len(result['events'])} events)]")
        return 1 if result["violations"] else 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(
            f"unknown figure {unknown[0]!r}; try 'list'"
        )
    scale = SCALES[args.scale]
    for name in names:
        if args.trace is not None:
            enable_tracing()
        # Wall-clock here measures the *host*, never sim behaviour.
        start = time.time()  # simlint: disable=DET001
        print(FIGURES[name](scale))
        elapsed = time.time() - start  # simlint: disable=DET001
        print(f"[{name} @ {scale.name}: {elapsed:.1f}s wall]\n")
        if args.trace is not None:
            _dump_traces(args.trace, name)
    if args.trace is not None:
        disable_tracing()
    return 0


def _dump_traces(directory: str, figure: str) -> None:
    """Export every tracer the figure's system builders registered."""
    from repro.obs import write_chrome, write_jsonl

    os.makedirs(directory, exist_ok=True)
    for i, tracer in enumerate(collected_tracers()):
        stem = os.path.join(directory, f"{figure}-{i:02d}")
        write_jsonl(tracer.events, f"{stem}.jsonl")
        write_chrome(tracer.events, f"{stem}.trace.json")
        print(
            f"[trace: {stem}.jsonl + .trace.json "
            f"({len(tracer.events)} events)]"
        )


if __name__ == "__main__":
    sys.exit(main())
