"""Command-line figure runner: ``python -m repro.harness <figure> [...]``.

Examples::

    python -m repro.harness list
    python -m repro.harness fig8
    python -m repro.harness fig12 --scale default
    python -m repro.harness all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import (
    DEFAULT,
    SMOKE,
    ablation_circular_wraparound,
    ablation_late_activation,
    ablation_replacement_policies,
    ablation_replay_ring,
    fig1a_breakdown,
    fig1b_throughput,
    fig4_wop,
    fig8_scan_sharing,
    fig9_ordered_scans,
    fig10_sort_merge,
    fig11_hash_join,
    fig12_throughput,
    fig13_think_time,
    osp_overhead,
)


def _render_fig1a(scale):
    _rows, rendered = fig1a_breakdown(scale)
    return rendered


def _render_fig8(scale):
    out = fig8_scan_sharing(scale)
    return "\n\n".join(out[n].render() for n in sorted(out))


def _render_overhead(scale):
    result = osp_overhead(scale)
    return (
        "OSP coordinator overhead (no sharing opportunities):\n"
        f"  makespan OSP on : {result['makespan_osp_on']:.1f} s\n"
        f"  makespan OSP off: {result['makespan_osp_off']:.1f} s\n"
        f"  ratio           : {result['overhead_ratio']:.4f}"
    )


FIGURES = {
    "fig1a": _render_fig1a,
    "fig1b": lambda scale: fig1b_throughput(scale).render(),
    "fig4": lambda scale: fig4_wop(scale).render(),
    "fig8": _render_fig8,
    "fig9": lambda scale: fig9_ordered_scans(scale).render(),
    "fig10": lambda scale: fig10_sort_merge(scale).render(),
    "fig11": lambda scale: fig11_hash_join(scale).render(),
    "fig12": lambda scale: fig12_throughput(scale).render(),
    "fig13": lambda scale: fig13_think_time(scale).render(),
    "overhead": _render_overhead,
    "ablation-policies": lambda scale: (
        ablation_replacement_policies(scale).render()
    ),
    "ablation-replay": lambda scale: ablation_replay_ring(scale).render(),
    "ablation-wraparound": lambda scale: (
        ablation_circular_wraparound(scale).render()
    ),
    "ablation-late-activation": lambda scale: (
        ablation_late_activation(scale).render()
    ),
}

SCALES = {"smoke": SMOKE, "default": DEFAULT}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the QPipe paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="smoke",
        help="experiment scale preset (default: smoke)",
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        print("available figures:")
        for name in FIGURES:
            print(f"  {name}")
        return 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(
            f"unknown figure {unknown[0]!r}; try 'list'"
        )
    scale = SCALES[args.scale]
    for name in names:
        start = time.time()
        print(FIGURES[name](scale))
        print(f"[{name} @ {scale.name}: {time.time() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
