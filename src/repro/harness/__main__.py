"""Command-line figure runner: ``python -m repro.harness <figure> [...]``.

Examples::

    python -m repro.harness list
    python -m repro.harness fig8
    python -m repro.harness fig12 --scale default
    python -m repro.harness all --scale smoke --jobs 4 --cache

Figures are declarative cell lists (:mod:`repro.harness.experiments`),
so ``--jobs N`` executes their cells on a process pool and ``--cache``
serves previously computed cells from the content-addressed cache --
both without changing a byte of the rendered output.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness import (
    DEFAULT,
    FIGURES,
    SMOKE,
    chaos,
    render_chaos,
    render_recovery,
)
from repro.harness.experiments import substitute_engine
from repro.parallel import CellCache, CellError, PoolRunner
from repro.parallel.cache import DEFAULT_DIR as CACHE_DIR

SCALES = {"smoke": SMOKE, "default": DEFAULT}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the QPipe paper's figures.",
    )
    parser.add_argument(
        "figure",
        help="figure id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="smoke",
        help="experiment scale preset (default: smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for cell execution (default: 1 = serial "
            "in-process; 0 = one per CPU); output is byte-identical "
            "for every N"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("packets", "pushed"),
        default=os.environ.get("REPRO_ENGINE", "packets"),
        help=(
            "execution backend for engine-invariant cells (default: "
            "packets, or $REPRO_ENGINE); 'pushed' runs them on the "
            "push-based fused backend -- rendered output is byte-"
            "identical either way"
        ),
    )
    parser.add_argument(
        "--hosts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap the scaleout figure's host sweep at N hosts (the "
            "1-host baseline always runs; other figures are unaffected)"
        ),
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        default=False,
        help="serve unchanged cells from the content-addressed cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        help="disable the cell cache (the default)",
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="delete the cell cache before running",
    )
    parser.add_argument(
        "--cache-dir",
        default=CACHE_DIR,
        metavar="DIR",
        help="cell cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "record packet-lifecycle traces; writes one JSONL and one "
            "Chrome trace_event file per cell-built host into DIR, plus "
            "a merged per-figure JSONL (bypasses cache reads)"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=1,
        help=(
            "seed for the chaos experiment's random fault plan and the "
            "recovery experiment's crash points"
        ),
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        default=False,
        help=(
            "chaos only: run clients under the lineage RecoveryManager "
            "so crashed queries resume instead of failing"
        ),
    )
    args = parser.parse_args(argv)

    if args.figure == "list":
        print("available figures:")
        for name in FIGURES:
            print(f"  {name}")
        print("  chaos     (supports --fault-seed N, --recovery)")
        print("  recovery  (supports --fault-seed N, --jobs N)")
        return 0

    if args.figure == "chaos":
        return _run_chaos(args)
    if args.figure == "recovery":
        return _run_recovery(args)

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure {unknown[0]!r}; try 'list'")

    cache = None
    if args.cache_clear:
        CellCache(args.cache_dir).clear()
    if args.cache:
        cache = CellCache(args.cache_dir)

    scale = SCALES[args.scale]
    tracing = args.trace is not None
    try:
        with PoolRunner(jobs=args.jobs, cache=cache, trace=tracing) as runner:
            for name in names:
                # Wall-clock here measures the *host*, never sim behaviour.
                start = time.time()  # simlint: disable=DET001
                specs = substitute_engine(
                    FIGURES[name].cells(scale), args.engine
                )
                if args.hosts is not None:
                    specs = [
                        s for s in specs
                        if s.coord.get("hosts", 1) <= args.hosts
                    ]
                results = runner.run(specs)
                payloads = {s: r.payload for s, r in results.items()}
                print(FIGURES[name].render(specs, payloads))
                elapsed = time.time() - start  # simlint: disable=DET001
                print(f"[{name} @ {scale.name}: {elapsed:.1f}s wall]\n")
                if tracing:
                    _dump_cell_traces(args.trace, name, specs, results)
            stats = runner.stats
    except KeyboardInterrupt:
        print("[interrupted: outstanding cells cancelled]", file=sys.stderr)
        return 130
    except CellError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"[cells: total={stats.total} executed={stats.executed} "
        f"cache-hits={stats.cache_hits} "
        f"hit-rate={stats.hit_rate * 100:.0f}%]"
    )
    return 0


def _run_chaos(args) -> int:
    """Chaos stays a single adversarial run -- never cellified, never
    cached: its value is the fault interleaving, not a grid of points."""
    scale = SCALES[args.scale]
    # Wall-clock here measures the *host*, never sim behaviour.
    start = time.time()  # simlint: disable=DET001
    result = chaos(
        scale,
        fault_seed=args.fault_seed,
        engine_backend=args.engine,
        recovery=args.recovery,
    )
    print(render_chaos(result))
    elapsed = time.time() - start  # simlint: disable=DET001
    print(f"[chaos @ {scale.name}: {elapsed:.1f}s wall]")
    if args.trace is not None:
        from repro.obs import write_jsonl

        os.makedirs(args.trace, exist_ok=True)
        path = os.path.join(args.trace, f"chaos-seed{args.fault_seed}.jsonl")
        write_jsonl(result["events"], path)
        print(f"[trace: {path} ({len(result['events'])} events)]")
    return 1 if result["violations"] else 0


def _run_recovery(args) -> int:
    """Recovery is cell-based (one cell per crash scenario), so it runs
    on the same pool/cache machinery as the figures and its output is
    byte-identical for every ``--jobs`` value."""
    from repro.harness.experiments import recovery_cells, recovery_merge

    scale = SCALES[args.scale]
    cache = None
    if args.cache_clear:
        CellCache(args.cache_dir).clear()
    if args.cache:
        cache = CellCache(args.cache_dir)
    # Wall-clock here measures the *host*, never sim behaviour.
    start = time.time()  # simlint: disable=DET001
    specs = recovery_cells(scale, fault_seed=args.fault_seed)
    with PoolRunner(jobs=args.jobs, cache=cache) as runner:
        results = runner.run(specs)
    payloads = {s: r.payload for s, r in results.items()}
    result = recovery_merge(specs, payloads)
    print(render_recovery(result))
    elapsed = time.time() - start  # simlint: disable=DET001
    print(f"[recovery @ {scale.name}: {elapsed:.1f}s wall]")
    clean = all(
        p["outcome"] == "ok" and p["byte_identical"] and not p["violations"]
        for p in result.values()
    )
    return 0 if clean else 1


def _dump_cell_traces(directory: str, figure: str, specs, results) -> None:
    """Write each cell's per-host traces, plus one merged figure JSONL.

    Files are named by cell slug (not completion order), and the merge
    concatenates in declarative spec order, so trace output is identical
    for every ``--jobs`` value.
    """
    from repro.obs import write_chrome, write_jsonl

    os.makedirs(directory, exist_ok=True)
    merged = []
    cells = 0
    for spec in specs:
        traces = results[spec].traces or []
        for j, events in enumerate(traces):
            stem = os.path.join(directory, f"{figure}-{spec.slug()}-h{j:02d}")
            write_jsonl(events, f"{stem}.jsonl")
            write_chrome(events, f"{stem}.trace.json")
            merged.extend(events)
        cells += 1
    merged_path = os.path.join(directory, f"{figure}.jsonl")
    write_jsonl(merged, merged_path)
    print(
        f"[trace: {merged_path} ({len(merged)} events across "
        f"{cells} cells)]"
    )


if __name__ == "__main__":
    sys.exit(main())
