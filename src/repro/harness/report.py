"""ASCII reporting for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Series:
    """One figure's data: x values and one y-list per labelled curve."""

    title: str
    x_label: str
    y_label: str
    xs: List = field(default_factory=list)
    curves: Dict[str, List] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_point(self, curve: str, x, y) -> None:
        if x not in self.xs:
            self.xs.append(x)
        self.curves.setdefault(curve, [])
        # Align: pad with None for any skipped x positions.
        idx = self.xs.index(x)
        values = self.curves[curve]
        while len(values) < idx:
            values.append(None)
        if len(values) == idx:
            values.append(y)
        else:
            values[idx] = y

    def curve(self, name: str) -> List:
        return self.curves[name]

    def render(self) -> str:
        """The figure as an aligned text table (one row per x)."""
        names = list(self.curves)
        header = [self.x_label] + names
        rows: List[List[str]] = [header]
        for i, x in enumerate(self.xs):
            row = [_fmt(x)]
            for name in names:
                values = self.curves[name]
                row.append(_fmt(values[i]) if i < len(values) else "-")
            rows.append(row)
        widths = [
            max(len(row[c]) for row in rows) for c in range(len(header))
        ]
        lines = [self.title, f"  ({self.y_label})"]
        for r, row in enumerate(rows):
            line = "  " + "  ".join(
                cell.rjust(widths[c]) for c, cell in enumerate(row)
            )
            lines.append(line)
            if r == 0:
                lines.append("  " + "-" * (sum(widths) + 2 * len(widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_breakdown(
    title: str, rows: Dict[str, Dict[str, float]], columns: Sequence[str]
) -> str:
    """A stacked-fraction table (Figure 1a): one row per query."""
    lines = [title]
    header = ["query"] + list(columns)
    table = [header]
    for query, fractions in rows.items():
        table.append(
            [query] + [f"{fractions.get(col, 0.0):.2f}" for col in columns]
        )
    widths = [max(len(row[c]) for row in table) for c in range(len(header))]
    for r, row in enumerate(table):
        lines.append(
            "  " + "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row))
        )
        if r == 0:
            lines.append("  " + "-" * (sum(widths) + 2 * len(widths)))
    return "\n".join(lines)
