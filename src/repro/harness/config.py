"""Experiment scale presets and system builders.

The harness calibrates the simulated disk so that one LINEITEM scan
takes roughly the same ~110 virtual seconds it takes in the paper's
testbed, independent of the data scale factor.  That keeps the paper's
literal axes (interarrival 0-100 s, think time 0-240 s) meaningful at
every scale.

Three systems (section 5's legend):

* ``qpipe``   -- QPipe w/OSP over an LRU pool.
* ``baseline`` -- the same engine with OSP disabled ("the BerkeleyDB-based
  QPipe implementation with OSP disabled").
* ``dbmsx``   -- the conventional iterator engine over an ARC pool (the
  commercial system whose "buffer pool manager achieves better sharing").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.baseline.engine import IteratorEngine
from repro.engine.qpipe import QPipeConfig, QPipeEngine
from repro.pushexec import PushEngine
from repro.hw.host import Host, HostConfig
from repro.storage.manager import StorageManager
from repro.workloads.tpch import TpchScale, load_tpch
from repro.workloads.wisconsin import WisconsinScale, load_wisconsin


@dataclass(frozen=True)
class Scale:
    """All experiment knobs in one place."""

    name: str = "default"
    #: TPC-H dbgen scale multiplier (1.0 -> ~60k lineitem rows).
    tpch_factor: float = 0.25
    #: Wisconsin BIG table rows.
    wisconsin_big_rows: int = 4_000
    #: Buffer pool frames.  Paper regime: 2 GB RAM vs a ~3 GB LINEITEM,
    #: with an effective scan window well under 20%% of the table (the
    #: Figure 8 Baseline loses all sharing past 20 s of a ~110 s scan).
    buffer_pages: int = 32
    #: Target seconds for one undisturbed LINEITEM scan (disk calibration).
    lineitem_scan_seconds: float = 110.0
    #: seek = seek_factor * transfer (concurrent-scan thrash severity).
    #: Kept modest: real engines amortise stream switches with multi-page
    #: prefetch, and the paper's 4-disk RAID-0 absorbs concurrent streams.
    seek_factor: float = 0.2
    cores: int = 2
    work_mem_tuples: int = 50_000
    replay_tuples: int = 2048
    buffer_tuples: int = 4096
    seed: int = 20050614
    #: Queries each client submits in throughput experiments.
    queries_per_client: int = 2
    #: Ramp-up delay between client starts in throughput experiments
    #: (clients connect over a few seconds, not in an atomic barrier).
    client_stagger: float = 7.0
    #: Sharded deployments: network link bandwidth (bytes/s) and one-way
    #: latency (s).  The defaults model GbE-class links -- orders of
    #: magnitude faster than the deliberately slow paper-era disks, so
    #: scan scale-out is disk-bound, but every exchanged byte is still
    #: queued and charged through the NIC model.
    net_bandwidth: float = 125_000_000.0
    net_latency: float = 0.0005


#: Tiny preset for unit tests and pytest-benchmark runs.
SMOKE = Scale(
    name="smoke",
    tpch_factor=0.08,
    wisconsin_big_rows=1_500,
    buffer_pages=32,  # ~half of LINEITEM: X's ARC window can work
    lineitem_scan_seconds=100.0,
    queries_per_client=1,
)

#: The scale EXPERIMENTS.md numbers are recorded at.
DEFAULT = Scale(name="default")


# ---------------------------------------------------------------------------
# Experiment RNG seeds.  Every random.Random() in the harness is seeded
# from one of these so the recorded figures replay bit-identically; the
# values themselves are arbitrary but load-bearing -- changing one
# changes every figure drawn from it.
# ---------------------------------------------------------------------------
#: Single-query experiments (figure 1a and friends): the one parameter
#: draw behind a standalone plan.
FIG_QUERY_SEED = 1

#: Shared-parameter experiments (q4 merge/hash pairs): both plans in a
#: pair must draw *identical* parameters or OSP has nothing to share.
SHARED_PARAM_SEED = 5

#: Per-client parameter streams in throughput experiments: client ``i``
#: uses ``CLIENT_SEED_BASE + i``.
CLIENT_SEED_BASE = 100

#: Per-query streams in the chaos/mixed workload: query ``i`` uses
#: ``CHAOS_QUERY_SEED_BASE + i``.
CHAOS_QUERY_SEED_BASE = 1000

#: The fold experiment's workload draw (aggregate flavours in the
#: similar-query cohort).
FOLD_QUERY_SEED = 11


def with_overrides(scale: Scale, **kwargs) -> Scale:
    return replace(scale, **kwargs)


# ---------------------------------------------------------------------------
# Tracing registry (the harness --trace flag)
# ---------------------------------------------------------------------------
#: When enabled, every host built by the system builders gets a
#: :class:`repro.obs.Tracer` attached to its simulator, registered here
#: so the caller can export the traces after the experiment.
_TRACING: Dict[str, object] = {"enabled": False, "tracers": []}


def enable_tracing() -> None:
    """Attach a Tracer to every subsequently built host (resets the
    collected list)."""
    _TRACING["enabled"] = True
    _TRACING["tracers"] = []


def disable_tracing() -> None:
    _TRACING["enabled"] = False
    _TRACING["tracers"] = []


def collected_tracers() -> List[object]:
    """Tracers attached since :func:`enable_tracing`, in creation order."""
    return list(_TRACING["tracers"])  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# System builders
# ---------------------------------------------------------------------------
def _host_for_pages(scale: Scale, calibration_pages: int) -> Host:
    """A host whose disk reads *calibration_pages* sequential blocks in
    ``scale.lineitem_scan_seconds`` virtual seconds."""
    transfer = scale.lineitem_scan_seconds / max(1, calibration_pages)
    config = HostConfig(
        cores=scale.cores,
        disk_transfer_time=transfer,
        disk_seek_time=transfer * scale.seek_factor,
        seed=scale.seed,
    )
    host = Host(config)
    if _TRACING["enabled"]:
        from repro.obs import Tracer

        _TRACING["tracers"].append(Tracer(host.sim))  # type: ignore[union-attr]
    return host


def _estimate_lineitem_pages(scale: Scale) -> int:
    from repro.storage.page import rows_per_page
    from repro.workloads.tpch.schema import LINEITEM

    rows = int(15_000 * scale.tpch_factor) * 4  # ~4 lineitems per order
    return max(1, rows // rows_per_page(LINEITEM.row_width))


def build_tpch_system(
    scale: Scale, system: str, seed_offset: int = 0,
    backend: str = "packets",
) -> Tuple[Host, StorageManager, object]:
    """A loaded TPC-H database plus the requested engine."""
    host = _host_for_pages(scale, _estimate_lineitem_pages(scale))
    policy = "arc" if system == "dbmsx" else "lru"
    sm = StorageManager(
        host,
        buffer_pages=scale.buffer_pages,
        policy=policy,
        # Both pools confine scans to a ring; X's ring is *visible* to
        # other scans (commercial shared-scan-window behaviour), which is
        # the timing-sensitive extra sharing the paper credits X with.
        scan_window_shared=(system == "dbmsx"),
        scan_ring_fraction=0.375 if system == "dbmsx" else 0.125,
    )
    load_tpch(sm, TpchScale(scale.tpch_factor), seed=scale.seed + seed_offset)
    engine = make_engine(sm, scale, system, backend=backend)
    return host, sm, engine


def build_wisconsin_system(
    scale: Scale, system: str, backend: str = "packets"
) -> Tuple[Host, StorageManager, object]:
    """A loaded Wisconsin database plus the requested engine.

    The disk is calibrated so a BIG table scan takes ~40 s, putting the
    Figure 10 query in the paper's ~140 s regime.
    """
    from repro.storage.page import rows_per_page
    from repro.workloads.wisconsin.gen import WISCONSIN_SCHEMA

    big_pages = max(
        1, scale.wisconsin_big_rows // rows_per_page(WISCONSIN_SCHEMA.row_width)
    )
    host = _host_for_pages(
        with_overrides(scale, lineitem_scan_seconds=40.0), big_pages
    )
    policy = "arc" if system == "dbmsx" else "lru"
    sm = StorageManager(
        host,
        buffer_pages=scale.buffer_pages,
        policy=policy,
        scan_window_shared=(system == "dbmsx"),
        scan_ring_fraction=0.375 if system == "dbmsx" else 0.125,
    )
    load_wisconsin(sm, WisconsinScale(big_rows=scale.wisconsin_big_rows),
                   seed=scale.seed)
    engine = make_engine(sm, scale, system, backend=backend)
    return host, sm, engine


def build_sharded_wisconsin_system(
    scale: Scale,
    hosts: int,
    system: str = "qpipe",
    backend: str = "packets",
    prefer_shuffle: bool = True,
):
    """An N-host sharded Wisconsin deployment plus its executor.

    BIG1 and BIG2 range-partition across the hosts (contiguous slices of
    the loaded row order -- the byte-identity-preserving scheme); SMALL
    replicates everywhere.  Every host gets the same disk calibration as
    the single-host Wisconsin builder (a *full* BIG scan takes ~40 s),
    so an N-way partitioned scan takes ~40/N s per shard and the figure
    measures genuine scale-out, not recalibrated disks.

    Returns ``(cluster, sharded_system, executor)``; with ``hosts=1``
    the partition metadata marks every table unpartitioned and the
    executor runs everything locally -- the single-host baseline.
    """
    from repro.hw.host import Cluster, ClusterConfig
    from repro.hw.net import NetConfig
    from repro.shard import ShardedExecutor, ShardedSystem
    from repro.storage.page import rows_per_page
    from repro.workloads.wisconsin.gen import (
        WISCONSIN_SCHEMA,
        WisconsinScale,
        generate_wisconsin,
    )

    big_pages = max(
        1, scale.wisconsin_big_rows // rows_per_page(WISCONSIN_SCHEMA.row_width)
    )
    transfer = 40.0 / big_pages
    cluster = Cluster(
        ClusterConfig(
            hosts=hosts,
            host=HostConfig(
                cores=scale.cores,
                disk_transfer_time=transfer,
                disk_seek_time=transfer * scale.seek_factor,
                seed=scale.seed,
            ),
            net=NetConfig(
                latency=scale.net_latency, bandwidth=scale.net_bandwidth
            ),
        )
    )
    if _TRACING["enabled"]:
        from repro.obs import Tracer

        _TRACING["tracers"].append(Tracer(cluster.sim))  # type: ignore[union-attr]

    def make_sm(host: Host) -> StorageManager:
        return StorageManager(
            host,
            buffer_pages=scale.buffer_pages,
            policy="arc" if system == "dbmsx" else "lru",
            scan_window_shared=(system == "dbmsx"),
            scan_ring_fraction=0.375 if system == "dbmsx" else 0.125,
        )

    sharded = ShardedSystem(
        cluster,
        make_sm,
        lambda sm: make_engine(sm, scale, system, backend=backend),
    )
    tables = generate_wisconsin(
        WisconsinScale(big_rows=scale.wisconsin_big_rows), seed=scale.seed
    )
    sharded.create_table("big1", WISCONSIN_SCHEMA, tables["big1"])
    sharded.create_table("big2", WISCONSIN_SCHEMA, tables["big2"])
    sharded.create_replicated_table("small", WISCONSIN_SCHEMA, tables["small"])
    return cluster, sharded, ShardedExecutor(
        sharded, prefer_shuffle=prefer_shuffle
    )


def make_engine(
    sm: StorageManager, scale: Scale, system: str,
    backend: str = "packets",
):
    """The engine object for a system name (see module docstring).

    ``backend`` selects the execution machinery: ``"packets"`` is the
    historical mapping (QPipe micro-engines for qpipe/baseline, the
    iterator engine for dbms-x); ``"pushed"`` runs the persona on the
    push-based fused backend instead, keeping the persona's name so
    reports and lock owners read the same.  The harness only substitutes
    the push backend where the figure's payload is engine-invariant
    (see ``repro.harness.experiments.substitute_engine``).
    """
    if backend == "pushed":
        return PushEngine(
            sm,
            work_mem_tuples=scale.work_mem_tuples,
            name="dbms-x" if system == "dbmsx" else system,
        )
    if backend != "packets":
        raise ValueError(f"unknown backend {backend!r}; want packets|pushed")
    if system == "dbmsx":
        return IteratorEngine(
            sm, work_mem_tuples=scale.work_mem_tuples, name="dbms-x"
        )
    if system in ("qpipe", "baseline"):
        return QPipeEngine(
            sm,
            QPipeConfig(
                osp_enabled=(system == "qpipe"),
                work_mem_tuples=scale.work_mem_tuples,
                replay_tuples=scale.replay_tuples,
                buffer_tuples=scale.buffer_tuples,
                name=system,
            ),
        )
    raise ValueError(f"unknown system {system!r}; want qpipe|baseline|dbmsx")
