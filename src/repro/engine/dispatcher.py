"""The packet dispatcher.

"Query plans pass through the packet dispatcher which creates as many
packets as the nodes in the query tree and dispatches them to the
corresponding micro-engines" (section 4.2).

Besides creating and wiring packets, the dispatcher computes two
properties the OSP coordinator relies on:

* each node's canonical subtree signature (overlap detection), and
* whether each node's *parent* is order-insensitive, which gates the
  order-sensitive scan strategies of section 4.3.2.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.buffers import FanOut, TupleBuffer
from repro.engine.packets import Packet, PacketState, QueryContext
from repro.relational.plans import (
    Aggregate,
    GroupBy,
    HashJoin,
    IndexScan,
    MergeJoin,
    NLJoin,
    PlanNode,
    Project,
    Sort,
)

#: plan-node op_name -> micro-engine name
ENGINE_FOR_OP = {
    "scan": "fscan",
    "filter": "filter",
    "iscan": "iscan",
    "project": "project",
    "sort": "sort",
    "agg": "agg",
    "groupby": "groupby",
    "hashjoin": "hashjoin",
    "mergejoin": "mergejoin",
    "nljoin": "nljoin",
    "semijoin": "semijoin",
    "antijoin": "antijoin",
    "outerjoin": "outerjoin",
    "limit": "limit",
    "distinct": "distinct",
    "update": "update",
}

#: Parents that accept their input in any order.
from repro.relational.plans import AntiJoin, Distinct, LeftOuterJoin, SemiJoin

_ORDER_INSENSITIVE_PARENTS = (
    Aggregate, AntiJoin, Distinct, GroupBy, HashJoin, LeftOuterJoin,
    NLJoin, SemiJoin, Sort,
)


class PacketDispatcher:
    """Builds, wires, and routes packets for one engine."""

    def __init__(self, engine):
        self.engine = engine

    # ------------------------------------------------------------------
    def dispatch(self, query: QueryContext) -> TupleBuffer:
        """Create and enqueue all packets for *query*; returns the buffer
        the client reads final results from."""
        root = self.build_subtree(query, query.plan, parent=None,
                                  parent_order_insensitive=True)
        if self.engine.config.fold_enabled and self.engine.folds.try_fold(
            query, root
        ):
            # The whole tree folded into another query's wide scan
            # (merged aggregation); nothing of it runs itself.
            return root.primary_output
        self.enqueue_tree(root)
        return root.primary_output

    def dispatch_subtree(self, query: QueryContext, plan: PlanNode) -> TupleBuffer:
        """Dispatch a fresh packet tree for *plan* (merge-join restarts).

        The new subtree may itself share in-progress work through OSP --
        re-reading the non-shared relation can piggyback on anything
        currently running.
        """
        root = self.build_subtree(query, plan, parent=None,
                                  parent_order_insensitive=False)
        self.enqueue_tree(root)
        return root.primary_output

    # ------------------------------------------------------------------
    def build_subtree(
        self,
        query: QueryContext,
        plan: PlanNode,
        parent: Optional[Packet],
        parent_order_insensitive: bool,
    ) -> Packet:
        engine_name = ENGINE_FOR_OP[plan.op_name]
        catalog = query.sm.catalog
        config = self.engine.config
        primary = TupleBuffer(
            self.engine.sim,
            capacity_tuples=config.buffer_tuples,
            name=f"q{query.query_id}:{plan.op_name}",
        )
        packet = Packet(
            query=query,
            plan=plan,
            signature=plan.signature(catalog),
            engine_name=engine_name,
            parent=parent,
            order_insensitive_parent=parent_order_insensitive,
        )
        primary.producer = packet
        primary.consumer = parent
        packet.output = FanOut(
            self.engine.sim,
            primary,
            replay_tuples=config.replay_tuples,
            name=f"q{query.query_id}:{plan.op_name}:out",
        )
        self.engine.register_buffer(primary)
        packet.packet_id = f"q{query.query_id}p{len(query.packets)}"
        query.packets.append(packet)
        self.engine.sim.tracer.packet_create(packet)

        for child in plan.children:
            child_packet = self.build_subtree(
                query,
                child,
                parent=packet,
                parent_order_insensitive=self._accepts_any_order(plan),
            )
            packet.children.append(child_packet)
            packet.inputs.append(child_packet.primary_output)

        # Section 4.3.2 eligibility: an ordered index scan feeding a
        # merge-join whose own parent is order-insensitive may be split
        # into two join passes when it cannot attach to an in-progress
        # scan directly.
        if isinstance(plan, MergeJoin) and packet.order_insensitive_parent:
            for child_packet in packet.children:
                if isinstance(child_packet.plan, IndexScan) and (
                    child_packet.plan.ordered
                ):
                    sibling = (
                        packet.children[1]
                        if child_packet is packet.children[0]
                        else packet.children[0]
                    )
                    child_packet.artifacts["mj_split"] = {
                        "mergejoin": packet,
                        "other_pages": self._estimate_pages(
                            query, sibling.plan
                        ),
                    }
        return packet

    @staticmethod
    def _accepts_any_order(plan: PlanNode) -> bool:
        return isinstance(plan, _ORDER_INSENSITIVE_PARENTS)

    @staticmethod
    def _estimate_pages(query: QueryContext, plan: PlanNode) -> int:
        """Worst-case page count of re-reading a subtree's base tables."""
        from repro.relational.plans import TableScan, walk_plan

        pages = 0
        for node in walk_plan(plan):
            if isinstance(node, (TableScan, IndexScan)):
                pages += query.sm.num_pages(node.table)
        return pages

    # ------------------------------------------------------------------
    def redispatch(self, packet: Packet) -> None:
        """Detach a satellite whose host died and re-execute it privately.

        The satellite's subtree was cancelled when it attached (Figure
        6b), so a fresh one is rebuilt from its plan.  The tuples its
        consumer already received -- exactly ``tuples_in`` on its primary
        buffer -- are skipped by the rebuilt producer.  Skip-by-count is
        only sound when the re-execution emits tuples in the same
        canonical order, so a non-zero skip forbids sharing (no generic
        attach, no mid-file circular scans) for the rebuilt subtree.
        """
        if packet.state is not PacketState.SATELLITE:
            return
        sim = self.engine.sim
        query = packet.query
        buffer = packet.primary_output
        host = packet.host
        if host is not None and host.output is not None:
            # Out of the dying host's fan-out before its close sweeps us.
            host.output.detach(buffer)
        if host is not None and packet in host.satellites:
            host.satellites.remove(packet)
        proc = packet.attach_proc
        if proc is not None and proc.alive:
            proc.interrupt("host died; satellite redispatched")
        packet.attach_proc = None
        packet.host = None
        if query.aborted or buffer.closed:
            # Nobody is waiting for these tuples any more.
            packet.state = PacketState.CANCELLED
            sim.tracer.packet_cancel(packet, "host died; consumer gone")
            if packet.output is not None:
                packet.output.close()
            return
        skip = buffer.tuples_in
        sim.tracer.packet_detach(packet, f"host died; re-executing skip={skip}")
        buffer.skip_tuples = skip
        packet.output.reset_replay()
        packet.state = PacketState.CREATED
        packet.phase = "pending"
        packet.worker = None
        packet.no_share = skip > 0
        if packet.no_share:
            packet.artifacts.pop("mj_split", None)
        packet.children = []
        packet.inputs = []
        for child in packet.plan.children:
            child_packet = self.build_subtree(
                query,
                child,
                parent=packet,
                parent_order_insensitive=self._accepts_any_order(packet.plan),
            )
            packet.children.append(child_packet)
            packet.inputs.append(child_packet.primary_output)
        if packet.no_share:
            for descendant in packet.descendants():
                descendant.no_share = True
                descendant.artifacts.pop("mj_split", None)
        self.enqueue_tree(packet)

    # ------------------------------------------------------------------
    def enqueue_tree(self, root: Packet) -> None:
        """Enqueue packets top-down so OSP attaches prune whole subtrees
        before any child starts running."""
        stack = [root]
        while stack:
            packet = stack.pop(0)
            if packet.state is PacketState.CREATED:
                self.engine.engines[packet.engine_name].enqueue(packet)
            stack.extend(packet.children)
