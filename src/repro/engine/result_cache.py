"""A query result cache with run-time duplicate detection.

Section 2.3: "Caching query results can significantly improve response
times in a workload that contains repeating instances of the same query
... QPipe improves a query result cache by allowing the run-time
detection of exact instances of the same query, thus avoiding extra work
when identical queries execute concurrently, with no previous entries in
the result cache."

The cache stores completed queries' rows keyed by the plan's canonical
signature (the same encoding OSP compares).  Concurrent duplicates need
no cache entry -- they attach to each other through OSP; this cache
covers the *sequential* repeats that arrive after the original finished.

Entries are invalidated when an update touches any table the plan read,
and evicted LRU by total cached rows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.relational.plans import (
    IndexScan,
    PlanNode,
    TableScan,
    walk_plan,
)


def _tables_read(plan: PlanNode) -> Set[str]:
    return {
        node.table
        for node in walk_plan(plan)
        if isinstance(node, (TableScan, IndexScan))
    }


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0


class ResultCache:
    """LRU result cache keyed by plan signature, bounded by total rows."""

    def __init__(self, capacity_rows: int):
        if capacity_rows < 0:
            raise ValueError("capacity_rows must be >= 0")
        self.capacity_rows = capacity_rows
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self._rows_cached = 0
        self.stats = CacheStats()

    @property
    def enabled(self) -> bool:
        return self.capacity_rows > 0

    # ------------------------------------------------------------------
    def lookup(self, signature: str) -> Optional[List[tuple]]:
        """Cached rows for *signature*, or None."""
        if not self.enabled:
            return None
        entry = self._entries.get(signature)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(signature)
        self.stats.hits += 1
        return list(entry[0])

    def store(self, signature: str, plan: PlanNode, rows: List[tuple]) -> None:
        """Cache *rows*; oversized results are simply not cached."""
        if not self.enabled or len(rows) > self.capacity_rows:
            return
        if signature in self._entries:
            return
        self._entries[signature] = (list(rows), _tables_read(plan))
        self._rows_cached += len(rows)
        while self._rows_cached > self.capacity_rows and len(self._entries) > 1:
            _sig, (old_rows, _tables) = self._entries.popitem(last=False)
            self._rows_cached -= len(old_rows)
            self.stats.evictions += 1

    def invalidate_table(self, table: str) -> int:
        """Drop every entry whose plan read *table*; returns the count."""
        victims = [
            sig
            for sig, (_rows, tables) in self._entries.items()
            if table in tables
        ]
        for sig in victims:
            rows, _tables = self._entries.pop(sig)
            self._rows_cached -= len(rows)
            self.stats.invalidations += 1
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()
        self._rows_cached = 0

    def __len__(self):
        return len(self._entries)
