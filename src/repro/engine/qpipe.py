"""The QPipe engine facade.

Construction instantiates every micro-engine with its worker pool, the
packet dispatcher, the OSP statistics block, and the deadlock detector.
Clients call :meth:`QPipeEngine.execute` (a coroutine) per query; the
engine splits the plan into packets and the client reads final results
from the root buffer -- exactly the lifecycle of section 4.4.

``osp_enabled=False`` turns every sharing mechanism off, yielding the
paper's **Baseline** system ("the BerkeleyDB-based QPipe implementation
with OSP disabled").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.engine.buffers import SEGMENT_BOUNDARY, TupleBuffer
from repro.engine.dispatcher import PacketDispatcher
from repro.engine.engines import build_engines
from repro.engine.packets import PacketState, QueryContext
from repro.engine.result_cache import ResultCache
from repro.faults.errors import FaultError, QueryAborted
from repro.folding import FoldCoordinator
from repro.sim.errors import Interrupted
from repro.osp.deadlock import DeadlockDetector
from repro.osp.stats import OspStats
from repro.relational.plans import PlanNode
from repro.relational.plans import walk_plan as _walk
from repro.results import QueryResult
from repro.storage.manager import StorageManager


@dataclass
class QPipeConfig:
    """Engine-wide knobs."""

    #: Capacity of each intermediate buffer, in tuples.
    buffer_tuples: int = 4096
    #: Fan-out replay ring size (the Figure 4b buffering enhancement).
    replay_tuples: int = 2048
    #: Worker threads per micro-engine (the scan engine gets 4x).
    workers: int = 8
    #: Master OSP switch; False gives the paper's Baseline system.
    osp_enabled: bool = True
    #: Seconds between deadlock-detector sweeps while queries are active.
    deadlock_period: float = 1.0
    #: Per-query work memory (sort heaps / hash tables), in tuples.
    work_mem_tuples: int = 50_000
    #: Seconds a shared scanner waits on one stalled consumer before
    #: detaching it (None: 5 page-service-times, computed at run time).
    scan_detach_patience: float = None
    #: Section 4.2's two-level scheduling: map micro-engine name -> number
    #: of dedicated CPU cores (e.g. {"sort": 1, "hashjoin": 2}).  Unlisted
    #: engines charge the host's shared CPU pool.  None partitions nothing.
    cpu_partitions: dict = None
    #: Section 4.3.1's late activation: a scan packet only attaches to
    #: the shared scanner once its consumer is ready to receive tuples.
    #: Disabling it lets eager scans fill their buffers and stall the
    #: shared scanner ("prevents queries from delaying each other").
    late_activation: bool = True
    #: When False, a scan may share an in-progress circular scan only if
    #: the scanner happens to be at page 0 (naive attach-at-start
    #: sharing); the ablation benchmarks quantify what wrap-around adds.
    circular_wraparound: bool = True
    #: Query result cache size in total cached rows (0 disables it).
    #: Sequential repeats of an identical query return cached rows;
    #: concurrent repeats share through OSP instead (section 2.3).
    result_cache_rows: int = 0
    #: Generalized sharing (repro.folding): fold *similar* concurrent
    #: queries -- predicate-subsumed scans ride one widened scan with
    #: per-query residual filters, and Aggregate(TableScan) queries merge
    #: into one aggregation pass.  Off by default: folding changes which
    #: packets run (group hosts scan standalone instead of circular), so
    #: the paper-reproduction figures keep the original OSP-only paths.
    fold_enabled: bool = False
    name: str = "qpipe"


class QPipeEngine:
    """One QPipe instance over one storage manager."""

    def __init__(self, sm: StorageManager, config: Optional[QPipeConfig] = None):
        self.sm = sm
        self.sim = sm.sim
        self.host = sm.host
        self.config = config or QPipeConfig()
        self.osp_enabled = self.config.osp_enabled
        self.osp_stats = OspStats()
        from repro.hw.cpu import CPU

        self.cpu_partitions = {
            name: CPU(self.sim, cores=cores, name=f"cpu-{name}")
            for name, cores in (self.config.cpu_partitions or {}).items()
        }
        self.engines = build_engines(self, self.config.workers)
        self.dispatcher = PacketDispatcher(self)
        self.folds = FoldCoordinator(self)
        self.deadlock_detector = DeadlockDetector(
            self, period=self.config.deadlock_period
        )
        self._buffers: List[TupleBuffer] = []
        self._next_query_id = 0
        self.active_queries = 0
        self.queries_completed = 0
        self.queries_aborted = 0
        #: Currently executing queries by id (fault injection targets).
        self._active: Dict[int, QueryContext] = {}
        self.result_cache = ResultCache(self.config.result_cache_rows)

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def fold_stats(self):
        return self.folds.stats

    # ------------------------------------------------------------------
    # Buffer registry (deadlock detection)
    # ------------------------------------------------------------------
    def register_buffer(self, buffer: TupleBuffer) -> None:
        self._buffers.append(buffer)

    def live_buffers(self) -> List[TupleBuffer]:
        self._buffers = [b for b in self._buffers if not b.closed]
        return self._buffers

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PlanNode,
        query_id: Optional[int] = None,
        deadline: Optional[float] = None,
        lineage=None,
    ) -> Generator:
        """Coroutine: run *plan* to completion; returns a QueryResult.

        *deadline* is a virtual-time budget in seconds from submission;
        past it the engine aborts the query (:exc:`QueryAborted`).  Any
        abort -- deadline, injected fault, client interrupt -- tears the
        packet tree down, closes its buffers, and reclaims every pin and
        table lock before the error surfaces here.
        """
        if query_id is None:
            self._next_query_id += 1
            query_id = self._next_query_id
        signature = plan.signature(self.sm.catalog)
        cached = self.result_cache.lookup(signature)
        if cached is not None:
            # Section 2.3 / Figure 2: a result-cache hit "returns the
            # stored results and avoids execution altogether".
            self.queries_completed += 1
            if lineage is not None:
                yield from lineage.on_root_batch(cached)
            return QueryResult(
                query_id=query_id,
                rows=cached,
                submitted_at=self.sim.now,
                started_at=self.sim.now,
                finished_at=self.sim.now,
            )
        query = QueryContext(
            query_id=query_id,
            plan=plan,
            sm=self.sm,
            host_machine=self.host,
            work_mem_tuples=self.config.work_mem_tuples,
            submitted_at=self.sim.now,
            engine=self,
            deadline=deadline,
            lineage=lineage,
        )
        self.active_queries += 1
        self._active[query_id] = query
        self.deadlock_detector.ensure_running()
        if deadline is not None:
            self.sim.spawn(
                self._deadline_watch(query), name=f"deadline-q{query_id}"
            )
        try:
            root = self.dispatcher.dispatch(query)
            rows: List[tuple] = []
            while True:
                batch = yield from root.get()
                if batch is None:
                    break
                if batch is SEGMENT_BOUNDARY:
                    continue
                rows.extend(batch)
                if lineage is not None:
                    yield from lineage.on_root_batch(batch)
        except BaseException as exc:
            if not query.aborted:
                if isinstance(exc, Interrupted):
                    # The client process died (disconnect): clean up the
                    # server side before letting the interrupt unwind.
                    self.abort_query(query, "client disconnected")
                else:
                    self.abort_query(
                        query,
                        type(exc).__name__,
                        exc if isinstance(exc, FaultError) else None,
                    )
            raise
        finally:
            query.finished = True
            self._active.pop(query_id, None)
            self.active_queries -= 1
            self.queries_completed += 1
        if query.aborted:
            raise query.failure or QueryAborted(
                query_id, query.abort_reason or "aborted"
            )
        if not any(
            node.op_name == "update" for node in _walk(plan)
        ):
            self.result_cache.store(signature, plan, rows)
        return QueryResult(
            query_id=query_id,
            rows=rows,
            submitted_at=query.submitted_at,
            started_at=query.submitted_at,
            finished_at=self.sim.now,
        )

    # ------------------------------------------------------------------
    # Abort / cancellation
    # ------------------------------------------------------------------
    def cancel(self, query_id: int, reason: str = "cancelled") -> bool:
        """Explicitly cancel a running query; returns False if unknown."""
        query = self._active.get(query_id)
        if query is None or query.aborted:
            return False
        self.abort_query(query, reason)
        return True

    def abort_query(self, query, reason: str, failure=None) -> None:
        """Tear one query down: exactly-once, isolation-preserving.

        Ordering matters: (1) other queries' satellites riding this
        query's packets are detached into private re-executions *before*
        any buffer closes under them; (2) this query's own satellite
        packets are cancelled and removed from their hosts; (3) the
        packet tree is cancelled root-down, interrupting workers and
        closing buffers so every consumer sees EOF; (4) a delay-0 sweep
        reclaims all the query's table locks after the interrupts have
        run their cleanup.
        """
        if query.aborted:
            return
        query.aborted = True
        query.abort_reason = reason
        if failure is not None:
            query.failure = failure
        self.queries_aborted += 1
        self.sim.tracer.query_abort(query, reason)

        for packet in query.packets:
            for sat in list(packet.satellites):
                if (
                    sat.query is not query
                    and sat.state is PacketState.SATELLITE
                    and not sat.self_serving
                ):
                    self.dispatcher.redispatch(sat)

        for packet in query.packets:
            if packet.state is PacketState.SATELLITE:
                packet.state = PacketState.CANCELLED
                self.sim.tracer.packet_cancel(packet, f"query aborted: {reason}")
                host = packet.host
                if host is not None and packet in host.satellites:
                    host.satellites.remove(packet)
                if packet.output is not None:
                    packet.output.close()

        root = query.packets[0] if query.packets else None
        if root is not None:
            root.cancel_subtree()
            if root.state not in (PacketState.DONE, PacketState.CANCELLED):
                root.state = PacketState.CANCELLED
                self.sim.tracer.packet_cancel(root, f"query aborted: {reason}")
                if root.worker is not None and root.worker.alive:
                    root.worker.interrupt(f"query aborted: {reason}")
                    root.worker = None
                if root.output is not None:
                    root.output.close()

        # Interrupted workers release their own locks via finally blocks
        # (tolerantly); this sweep catches whatever they could not.  It
        # runs at delay 0 so the URGENT interrupt deliveries go first.
        self.sim.schedule(0.0, self._reclaim_locks, query)

    def _reclaim_locks(self, query) -> None:
        qid = query.query_id
        self.sm.locks.release_where(
            lambda owner: isinstance(owner, tuple)
            and len(owner) >= 2
            and owner[0] in ("q", "scan")
            and owner[1] == qid
        )

    def _deadline_watch(self, query) -> Generator:
        delay = max(0.0, query.deadline - self.sim.now)
        yield self.sim.timeout(delay)
        if not query.finished and not query.aborted:
            self.abort_query(
                query, f"deadline of {query.deadline:.3f}s exceeded"
            )

    def run_query(self, plan: PlanNode) -> List[tuple]:
        """Convenience: spawn, run the clock, return the rows (tests)."""
        proc = self.sim.spawn(self.execute(plan), name="qpipe-query")
        self.sim.run()
        return proc.value.rows
