"""The QPipe engine: operator-centric, "one-operator, many-queries".

This package implements the paper's core architecture (Figure 5b):

* every relational operator is a :class:`~repro.engine.micro_engine.MicroEngine`
  serving :class:`~repro.engine.packets.Packet` requests from a queue,
* queries are split into packets by the
  :class:`~repro.engine.dispatcher.PacketDispatcher`,
* micro-engines communicate through bounded
  :class:`~repro.engine.buffers.TupleBuffer` channels whose back-pressure
  regulates dataflow, and
* the OSP layer (:mod:`repro.osp`) attaches overlapping packets to
  in-progress ones and pipelines output to all of them simultaneously.
"""

from repro.engine.buffers import FanOut, TupleBuffer
from repro.engine.packets import Packet, PacketState, QueryContext
from repro.engine.qpipe import QPipeEngine, QPipeConfig

__all__ = [
    "FanOut",
    "Packet",
    "PacketState",
    "QPipeConfig",
    "QPipeEngine",
    "QueryContext",
    "TupleBuffer",
]
