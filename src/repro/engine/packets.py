"""Query packets and per-query context.

"In QPipe, a query packet represents work a query needs to perform at a
given micro-engine" (section 4.3).  The packet dispatcher creates one
packet per plan node; each packet knows its input buffers (fed by child
packets), its fan-out output, and its canonical signature -- the encoded
argument list that overlap detection compares.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.engine.buffers import FanOut, TupleBuffer
from repro.relational.plans import PlanNode


class PacketState(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    #: Attached to a host packet; its own operator never runs.
    SATELLITE = "satellite"
    #: Terminated because an ancestor became a satellite.
    CANCELLED = "cancelled"


@dataclass(eq=False)
class QueryContext:
    """Execution context shared by all packets of one query."""

    query_id: int
    plan: PlanNode
    sm: Any  # StorageManager
    host_machine: Any  # Host
    work_mem_tuples: int = 50_000
    submitted_at: float = 0.0
    packets: List["Packet"] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    def cpu(self, tuples: int, factor: float = 1.0) -> Generator:
        """Coroutine: charge CPU for processing *tuples* tuples."""
        cost = tuples * self.host_machine.config.cpu_per_tuple * factor
        yield from self.host_machine.cpu.burst(cost)

    def bump(self, key: str, amount: float = 1.0) -> None:
        self.stats[key] = self.stats.get(key, 0.0) + amount


@dataclass(eq=False)
class Packet:
    """Work for one query at one micro-engine."""

    query: QueryContext
    plan: PlanNode
    signature: str
    engine_name: str
    #: Deterministic id ("q<query>p<n>") assigned by the dispatcher;
    #: this is what trace events refer to (never Python object ids, so
    #: identical runs yield byte-identical traces).
    packet_id: str = ""
    inputs: List[TupleBuffer] = field(default_factory=list)
    output: Optional[FanOut] = None
    children: List["Packet"] = field(default_factory=list)
    parent: Optional["Packet"] = None
    state: PacketState = PacketState.CREATED
    #: The host this packet attached to (when it became a satellite).
    host: Optional["Packet"] = None
    satellites: List["Packet"] = field(default_factory=list)
    #: The worker process currently serving this packet.
    worker: Any = None
    #: Operator phase label maintained by the serving micro-engine
    #: ("build"/"probe", "sort"/"emit", ...), consulted by WoP checks.
    phase: str = "pending"
    #: True when the packet's parent does not require this node's output
    #: in any particular order (enables the section 4.3.2 strategies).
    order_insensitive_parent: bool = False
    #: Artifacts a host retains for late satellites (e.g. the sorted
    #: result a Sort keeps so phase-2 arrivals can re-emit it).
    artifacts: Dict[str, Any] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.state in (PacketState.QUEUED, PacketState.RUNNING)

    @property
    def primary_output(self) -> TupleBuffer:
        return self.output.primary

    def descendants(self) -> List["Packet"]:
        out: List[Packet] = []
        stack = list(self.children)
        while stack:
            packet = stack.pop()
            out.append(packet)
            stack.extend(packet.children)
        return out

    def cancel_subtree(self) -> None:
        """Terminate every descendant packet (Figure 6b, step 2).

        Running workers are interrupted; queued packets are flagged so
        their micro-engine skips them; the buffers between them are closed
        so nothing blocks forever.
        """
        tracer = self.query.sm.sim.tracer
        for packet in self.descendants():
            if packet.state in (PacketState.DONE, PacketState.CANCELLED):
                continue
            packet.state = PacketState.CANCELLED
            tracer.packet_cancel(packet, "subtree cancelled")
            if packet.worker is not None and packet.worker.alive:
                packet.worker.interrupt("subtree cancelled by OSP attach")
                packet.worker = None
            if packet.output is not None:
                packet.output.close()

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<Packet q{self.query.query_id}:{self.engine_name} "
            f"{self.state.value} {self.phase}>"
        )
