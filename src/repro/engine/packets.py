"""Query packets and per-query context.

"In QPipe, a query packet represents work a query needs to perform at a
given micro-engine" (section 4.3).  The packet dispatcher creates one
packet per plan node; each packet knows its input buffers (fed by child
packets), its fan-out output, and its canonical signature -- the encoded
argument list that overlap detection compares.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.engine.buffers import FanOut, TupleBuffer
from repro.relational.plans import PlanNode
from repro.storage.streams import next_stream


class PacketState(enum.Enum):
    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    #: Attached to a host packet; its own operator never runs.
    SATELLITE = "satellite"
    #: Terminated because an ancestor became a satellite.
    CANCELLED = "cancelled"


@dataclass(eq=False)
class QueryContext:
    """Execution context shared by all packets of one query."""

    query_id: int
    plan: PlanNode
    sm: Any  # StorageManager
    host_machine: Any  # Host
    work_mem_tuples: int = 50_000
    submitted_at: float = 0.0
    packets: List["Packet"] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    #: The owning QPipeEngine (None in unit tests that fake the context);
    #: abort paths use it to rescue satellites and sweep locks.
    engine: Any = None
    #: Abort state: set exactly once by QPipeEngine.abort_query.
    aborted: bool = False
    abort_reason: Optional[str] = None
    #: The originating failure (a FaultError), re-raised to the client.
    failure: Optional[BaseException] = None
    #: Virtual-time deadline; the engine aborts the query past it.
    deadline: Optional[float] = None
    #: Set when execute() returns/raises; stops the deadline watchdog.
    finished: bool = False
    #: Optional :class:`~repro.lineage.tracker.LineageTracker`; scan
    #: operators report delivered pages through it (None: no recording).
    lineage: Any = None

    def cpu(self, tuples: int, factor: float = 1.0) -> Generator:
        """Coroutine: charge CPU for processing *tuples* tuples."""
        cost = tuples * self.host_machine.config.cpu_per_tuple * factor
        yield from self.host_machine.cpu.burst(cost)

    def bump(self, key: str, amount: float = 1.0) -> None:
        self.stats[key] = self.stats.get(key, 0.0) + amount


@dataclass(eq=False)
class Packet:
    """Work for one query at one micro-engine."""

    query: QueryContext
    plan: PlanNode
    signature: str
    engine_name: str
    #: Deterministic id ("q<query>p<n>") assigned by the dispatcher;
    #: this is what trace events refer to (never Python object ids, so
    #: identical runs yield byte-identical traces).
    packet_id: str = ""
    inputs: List[TupleBuffer] = field(default_factory=list)
    output: Optional[FanOut] = None
    children: List["Packet"] = field(default_factory=list)
    parent: Optional["Packet"] = None
    state: PacketState = PacketState.CREATED
    #: The host this packet attached to (when it became a satellite).
    host: Optional["Packet"] = None
    satellites: List["Packet"] = field(default_factory=list)
    #: The worker process currently serving this packet.
    worker: Any = None
    #: Operator phase label maintained by the serving micro-engine
    #: ("build"/"probe", "sort"/"emit", ...), consulted by WoP checks.
    phase: str = "pending"
    #: True when the packet's parent does not require this node's output
    #: in any particular order (enables the section 4.3.2 strategies).
    order_insensitive_parent: bool = False
    #: Artifacts a host retains for late satellites (e.g. the sorted
    #: result a Sort keeps so phase-2 arrivals can re-emit it).
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: Forbid sharing for this packet (no try_share, no circular attach).
    #: Set on subtrees rebuilt after a host crash when a delivered-tuple
    #: prefix must be skipped: skip-by-count is only sound when the
    #: re-execution produces tuples in the same canonical order, which a
    #: mid-file circular attach would not.
    no_share: bool = False
    #: Satellite is served by its own process (sort-reemit, mj-split)
    #: rather than by the host's delivery loop; host-side completion and
    #: rescue sweeps must leave it alone.
    self_serving: bool = False
    #: The generic-attach delivery process feeding this satellite's
    #: buffer from the host fan-out; redispatch interrupts it so a
    #: half-finished replay cannot race the private re-execution.
    attach_proc: Any = None
    #: Buffer-pool scan-stream identity, one per packet for its whole
    #: life (the OSP attach paths reuse it across passes).  Drawn from
    #: the process-wide counter rather than id(packet) so a recycled
    #: object address can never match a dead scan's ring entries
    #: (see repro.storage.streams).
    stream: Any = field(default_factory=next_stream)

    @property
    def active(self) -> bool:
        return self.state in (PacketState.QUEUED, PacketState.RUNNING)

    @property
    def primary_output(self) -> TupleBuffer:
        return self.output.primary

    def descendants(self) -> List["Packet"]:
        out: List[Packet] = []
        stack = list(self.children)
        while stack:
            packet = stack.pop()
            out.append(packet)
            stack.extend(packet.children)
        return out

    def cancel_subtree(self) -> None:
        """Terminate every descendant packet (Figure 6b, step 2).

        Running workers are interrupted; queued packets are flagged so
        their micro-engine skips them; the buffers between them are closed
        so nothing blocks forever.
        """
        tracer = self.query.sm.sim.tracer
        engine = self.query.engine
        for packet in self.descendants():
            if packet.state in (PacketState.DONE, PacketState.CANCELLED):
                continue
            # Other queries' satellites riding this packet must not die
            # with it: detach them into private re-executions first.
            if engine is not None:
                for sat in list(packet.satellites):
                    if sat.state is PacketState.SATELLITE and not sat.self_serving:
                        engine.dispatcher.redispatch(sat)
            packet.state = PacketState.CANCELLED
            tracer.packet_cancel(packet, "subtree cancelled")
            if packet.worker is not None and packet.worker.alive:
                packet.worker.interrupt("subtree cancelled by OSP attach")
                packet.worker = None
            if packet.output is not None:
                packet.output.close()

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<Packet q{self.query.query_id}:{self.engine_name} "
            f"{self.state.value} {self.phase}>"
        )
