"""The micro-engine base class.

A micro-engine (Figure 6a) owns:

* an incoming packet queue,
* a pool of worker processes serving packets from the queue, and
* its OSP hooks -- the overlap test and attach procedure the coordinator
  invokes whenever a new packet queues up.

The *generic* sharing rule implemented here covers the full and step
overlap classes of Figure 4a, including the buffering enhancement of
Figure 4b:

* a satellite may attach while the host has produced **no output yet**
  (this is the whole lifetime for full-overlap operators such as a single
  aggregate or a hash-join build, and the pre-first-tuple window of step
  operators), or
* after output started, while everything produced so far is still in the
  host fan-out's bounded replay ring (buffering widens the window).

Operators with richer windows (sort materialisation, circular scans,
order-sensitive splits) override the hooks.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.engine.buffers import FanOut, TupleBuffer
from repro.engine.packets import Packet, PacketState
from repro.faults.errors import FaultError
from repro.sim import Channel, ChannelClosed, Interrupted


class MicroEngine:
    """Base micro-engine: queue, workers, generic OSP hooks."""

    #: Overlap classification from Figure 4a ("linear", "step", "full",
    #: "spike") -- informational; the WoP model tests use it.
    overlap_class = "step"

    def __init__(self, name: str, engine, workers: int = 16):
        self.name = name
        self.engine = engine  # QPipeEngine
        self.sim = engine.sim
        self.workers = workers
        #: Private CPU partition (section 4.2's "fixed number of CPUs per
        #: micro-engine"); None charges the host's shared CPU pool.
        self.cpu = engine.cpu_partitions.get(name)
        self.queue = Channel(self.sim, capacity=float("inf"), name=f"{name}-q")
        #: Packets queued or running here, inspected for overlaps.
        self.active: List[Packet] = []
        self.packets_served = 0
        self.packets_shared = 0
        self._worker_procs = [
            self.sim.spawn(self._worker_loop(i), name=f"{name}-w{i}")
            for i in range(workers)
        ]

    # ------------------------------------------------------------------
    # Packet intake
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Queue *packet*, first giving OSP a chance to attach it."""
        if packet.state is PacketState.CANCELLED or packet.query.aborted:
            return
        if (
            self.engine.osp_enabled
            and not packet.no_share
            and self.try_share(packet)
        ):
            self.packets_shared += 1
            self.engine.osp_stats.record_attach(self.name, packet)
            return
        packet.state = PacketState.QUEUED
        self.active.append(packet)
        self.sim.tracer.packet_enqueue(packet)
        assert self.queue.try_put(packet)

    def _worker_loop(self, index: int) -> Generator:
        while True:
            packet = yield self.queue.get()
            if packet.state is not PacketState.QUEUED or packet.query.aborted:
                continue  # cancelled, attached, or aborted while waiting
            packet.state = PacketState.RUNNING
            # Expose this worker's process so cancel_subtree can interrupt.
            packet.worker = self._worker_procs[index]
            self.packets_served += 1
            self.sim.tracer.packet_dispatch(packet)
            try:
                yield from self._serve_wrapper(packet)
            except Interrupted:
                # Cancellation by the OSP coordinator: clean up quietly.
                if packet.output is not None:
                    packet.output.close()
            except FaultError as exc:
                # An operator-level fault fails this *query*, not the
                # simulation: tear the query down and keep serving.
                if packet.output is not None:
                    packet.output.close()
                # Detach ourselves first so the teardown's interrupt
                # sweep does not kill this pool worker.
                packet.worker = None
                self.engine.abort_query(packet.query, str(exc), exc)
            finally:
                packet.worker = None
                if packet in self.active:
                    self.active.remove(packet)
                if packet.state is PacketState.RUNNING:
                    packet.state = PacketState.DONE
                    self.sim.tracer.packet_complete(packet)
                    self._complete_satellites(packet)

    def _serve_wrapper(self, packet: Packet) -> Generator:
        try:
            yield from self.serve(packet)
        except (FaultError, Interrupted):
            # The host is dying with incomplete output.  Its satellites
            # must be detached into private re-executions *before* the
            # finally below closes the fan-out, or they would see a
            # premature EOF and silently return truncated results.
            self._rescue_satellites(packet)
            raise
        finally:
            if packet.output is not None and not packet.output.closed:
                packet.output.close()
            self._release_inputs(packet)

    def _rescue_satellites(self, packet: Packet) -> None:
        """Redispatch every generic satellite of a dying host."""
        for sat in list(packet.satellites):
            if sat.state is PacketState.SATELLITE and not sat.self_serving:
                self.engine.dispatcher.redispatch(sat)

    def _complete_satellites(self, packet: Packet) -> None:
        """Mark a completed host's remaining generic satellites done.

        Self-serving satellites (sort re-emit, mj-split) complete from
        their own processes; the exactly-once guarantee is the SATELLITE
        state check here and there.
        """
        for sat in list(packet.satellites):
            if sat.state is PacketState.SATELLITE and not sat.self_serving:
                sat.state = PacketState.DONE
                self.sim.tracer.packet_complete(sat)

    @staticmethod
    def _release_inputs(packet: Packet) -> None:
        """Close unread inputs so abandoned producers never block forever.

        An operator may finish without draining every input (e.g. a merge
        join whose one side ran out).  Closing the input buffer makes the
        producer's next put detach it; a child whose output nobody reads
        any more (no open buffers, no satellites) is cancelled outright.
        """
        for buffer in packet.inputs:
            if not buffer.closed:
                buffer.close()
        for child in packet.children:
            if child.state in (PacketState.DONE, PacketState.CANCELLED):
                continue
            if child.satellites:
                continue
            output = child.output
            if output is not None and all(b.closed for b in output.buffers):
                child.cancel_subtree()
                child.state = PacketState.CANCELLED
                if child.worker is not None and child.worker.alive:
                    child.worker.interrupt("parent finished early")
                    child.worker = None

    # ------------------------------------------------------------------
    # The operator itself
    # ------------------------------------------------------------------
    def serve(self, packet: Packet) -> Generator:
        """Coroutine: run the relational operator for *packet*.

        Subclasses read ``packet.inputs`` and write ``packet.output``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # OSP hooks (the per-micro-engine sharing mechanism of section 4.3)
    # ------------------------------------------------------------------
    def try_share(self, packet: Packet) -> bool:
        """Attach *packet* to an in-progress overlapping packet if legal.

        Returns True when the packet became a satellite and must not be
        queued.
        """
        host = self.find_host(packet)
        if host is None:
            return False
        self.attach_satellite(host, packet)
        return True

    def find_host(self, packet: Packet) -> Optional[Packet]:
        for host in self.active:
            if host is packet or host.query is packet.query:
                continue
            if host.query.aborted:
                continue
            if host.signature != packet.signature:
                continue
            if not self.can_attach(host, packet):
                continue
            return host
        return None

    def can_attach(self, host: Packet, packet: Packet) -> bool:
        """The generic window-of-opportunity test (see module docstring)."""
        if not host.active:
            return False
        if host.output is None or host.output.closed:
            return False
        if host.output.total_tuples == 0:
            return True
        return host.output.can_replay()

    def attach_satellite(self, host: Packet, packet: Packet) -> None:
        """Figure 6b: attach, kill the satellite's subtree, replay, fan out."""
        packet.state = PacketState.SATELLITE
        packet.host = host
        host.satellites.append(packet)
        # Record the WoP evidence this attach decision rested on; the
        # InvariantChecker re-validates it when replaying the trace.
        self.sim.tracer.packet_attach(
            packet,
            host,
            "generic",
            host_tuples=host.output.total_tuples,
            can_replay=host.output.can_replay(),
        )
        packet.cancel_subtree()
        packet.attach_proc = self.sim.spawn(
            self._attach_proc(host, packet),
            name=f"{self.name}-attach",
        )

    def _attach_proc(self, host: Packet, packet: Packet) -> Generator:
        try:
            yield from host.output.attach(packet.primary_output, replay=True)
        except ChannelClosed:
            packet.primary_output.close()
        if host.output.closed and packet.state is PacketState.SATELLITE:
            # Still a satellite (not redispatched after a host crash, not
            # cancelled by its own query's abort): the host's completed
            # output is this packet's completed output.
            packet.state = PacketState.DONE
            self.sim.tracer.packet_complete(packet)

    # ------------------------------------------------------------------
    # Helpers for operator implementations
    # ------------------------------------------------------------------
    def charge(self, packet: Packet, tuples: int, factor: float = 1.0) -> Generator:
        """Coroutine: charge CPU for *tuples* on this micro-engine's
        partition (or the shared pool when none is configured)."""
        if self.cpu is None:
            yield from packet.query.cpu(tuples, factor)
            return
        cost = (
            tuples
            * self.engine.host.config.cpu_per_tuple
            * factor
        )
        yield from self.cpu.burst(cost)

    @staticmethod
    def get_batch(buffer: TupleBuffer) -> Generator:
        batch = yield from buffer.get()
        return batch

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<µEngine {self.name} active={len(self.active)}>"
