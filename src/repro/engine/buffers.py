"""Intermediate tuple buffers between micro-engines.

A :class:`TupleBuffer` carries *batches* (lists of rows) with a capacity
counted in tuples; full buffers block the producer, empty ones block the
consumer -- the paper's "intermediate buffers regulate the data flow".

A :class:`FanOut` wraps one producer's output for simultaneous pipelining:
it copies every batch to all attached buffers (the host query's and every
satellite's), so "if any of the consumers is slower than the producer, all
queries will eventually adjust ... to the speed of the slowest consumer"
(section 4.3).  It also keeps a bounded *replay ring* of recent output --
the buffering enhancement function of Figure 4b -- so a step-overlap
operator can admit a satellite after its first tuples were produced, as
long as nothing has been dropped from the ring.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim import (
    AnyOf,
    Channel,
    ChannelClosed,
    Gate,
    Interrupted,
    Lock,
    Simulator,
)

#: Marker batch separating two ordered segments in one stream, used by
#: the section 4.3.2 order-sensitive scan strategy: the merge-join sees
#: the marker, restarts its other input, and joins the next segment.
SEGMENT_BOUNDARY = ("__segment_boundary__",)


class TupleBuffer:
    """A bounded batch queue from one producer packet to one consumer.

    ``get`` returns ``None`` at end-of-stream (after ``close``).  The
    buffer also carries a late-activation gate: producers may wait on
    :meth:`wait_activated`, and the gate opens automatically on the
    consumer's first ``get`` (section 4.3.1's late activation policy --
    "no scan packet is initiated until its output buffer is flagged as
    ready to receive tuples").
    """

    __slots__ = (
        "sim", "name", "producer", "consumer", "_channel", "_gate",
        "tuples_in", "tuples_out", "skip_tuples",
    )

    def __init__(
        self,
        sim: Simulator,
        capacity_tuples: int = 2048,
        name: str = "buf",
        producer: Any = None,
        consumer: Any = None,
    ):
        self.sim = sim
        self.name = name
        self.producer = producer
        self.consumer = consumer
        self._channel = Channel(sim, capacity=capacity_tuples, name=name)
        self._gate = Gate(sim)
        self.tuples_in = 0
        self.tuples_out = 0
        #: Tuples to silently drop from the front of the stream.  After a
        #: host crash a rescued satellite's subtree re-executes from
        #: scratch; the prefix its consumer already received (exactly
        #: ``tuples_in`` at detach time) is consumed here instead of
        #: being delivered twice.  ``tuples_in`` keeps counting in
        #: *logical stream* positions, so a second crash recomputes a
        #: correct skip.
        self.skip_tuples = 0

    # -- producer side ----------------------------------------------------
    def wait_activated(self) -> Generator:
        """Coroutine: block until the consumer signals readiness."""
        yield self._gate.wait()

    def activate(self) -> None:
        """Flag the buffer ready (normally implicit in the first get)."""
        self._gate.open()

    def put(self, batch: List[tuple]) -> Generator:
        """Coroutine: enqueue one batch (blocks while full).

        Batches larger than the buffer's capacity are split into
        capacity-sized chunks so operators can emit at their preferred
        granularity regardless of the configured buffer size.
        """
        if not batch:
            return
        batch = self._consume_skip(batch)
        if not batch:
            return
        capacity = self._channel.capacity
        if capacity != float("inf") and len(batch) > capacity:
            step = max(1, int(capacity))
            for start in range(0, len(batch), step):
                yield from self.put(batch[start:start + step])
            return
        accept = self._channel.put(batch, size=len(batch), owner=self.producer)
        try:
            yield accept
        except Interrupted:
            # Exact accounting: if the batch slipped in before the
            # interrupt landed it will reach the consumer and must
            # count; a still-pending one is withdrawn and must not.
            if not self._channel.cancel_put(accept) and accept.triggered and accept.ok:
                self.tuples_in += len(batch)
            raise
        self.tuples_in += len(batch)

    def _consume_skip(self, batch: List[tuple]) -> List[tuple]:
        if self.skip_tuples <= 0 or batch is SEGMENT_BOUNDARY:
            return batch
        if len(batch) <= self.skip_tuples:
            self.skip_tuples -= len(batch)
            return []
        batch = batch[self.skip_tuples:]
        self.skip_tuples = 0
        return batch

    def try_put(self, batch: List[tuple]) -> bool:
        if not batch:
            return True
        batch = self._consume_skip(batch)
        if not batch:
            return True
        ok = self._channel.try_put(batch, size=len(batch))
        if ok:
            self.tuples_in += len(batch)
        return ok

    def put_marker(self) -> Generator:
        """Coroutine: enqueue a SEGMENT_BOUNDARY marker (section 4.3.2)."""
        yield self._channel.put(SEGMENT_BOUNDARY, size=1, owner=self.producer)

    def put_with_patience(self, batch: List[tuple], patience: float) -> Generator:
        """Coroutine: like put, but give up after *patience* seconds.

        Returns True when the batch was accepted, False on timeout -- and
        False guarantees *nothing* was delivered: the batch was withdrawn
        whole, so the caller may safely re-deliver it later.  The
        circular-scan manager uses this to detach consumers that stall
        the shared scanner (section 3.3: a scan that blocks "will need to
        detach from the rest of the scans").

        A batch larger than the buffer's capacity cannot be withdrawn
        whole, so patience applies to its first capacity-sized chunk
        only: if that chunk times out, nothing was delivered and False is
        returned; once it is accepted the remainder goes through a plain
        blocking :meth:`put`, keeping delivery exactly-once even when the
        patience deadline and the channel accept land on the same
        timestamp.
        """
        if not batch:
            return True
        batch = self._consume_skip(batch)
        if not batch:
            return True
        capacity = self._channel.capacity
        if capacity != float("inf") and len(batch) > capacity:
            step = max(1, int(capacity))
            delivered = yield from self._put_chunk_with_patience(
                batch[:step], patience
            )
            if not delivered:
                return False
            yield from self.put(batch[step:])
            return True
        delivered = yield from self._put_chunk_with_patience(batch, patience)
        return delivered

    def _put_chunk_with_patience(
        self, batch: List[tuple], patience: float
    ) -> Generator:
        """Coroutine: offer one capacity-sized chunk, withdrawing on timeout.

        Exactly-once under the deadline/accept race: ``accept.triggered``
        is set synchronously when the channel takes the chunk, so if both
        the patience deadline and the accept land on the same timestamp
        the chunk is either counted (accepted first) or withdrawn before
        it can be accepted -- never both.
        """
        accept = self._channel.put(batch, size=len(batch), owner=self.producer)
        if not accept.triggered:
            deadline = self.sim.timeout(patience)
            try:
                yield AnyOf(self.sim, [accept, deadline])
            except Interrupted:
                # A crashed scanner must not leave its page pending in
                # the channel: withdraw it (or count it if it slipped in)
                # so restart-time delivery stays exactly-once.
                if (
                    not self._channel.cancel_put(accept)
                    and accept.triggered
                    and accept.ok
                ):
                    self.tuples_in += len(batch)
                raise
            if not accept.triggered:
                self._channel.cancel_put(accept)
                return False
        if not accept.ok:
            raise accept.value
        self.tuples_in += len(batch)
        return True

    def close(self) -> None:
        self._channel.close()

    # -- consumer side ----------------------------------------------------
    def get(self) -> Generator:
        """Coroutine: the next batch, a SEGMENT_BOUNDARY, or None at EOS."""
        self._gate.open()
        try:
            batch = yield self._channel.get(owner=self.consumer)
        except ChannelClosed:
            return None
        if batch is not SEGMENT_BOUNDARY:
            self.tuples_out += len(batch)
        return batch

    def drain(self) -> Generator:
        """Coroutine: all remaining rows as one list."""
        rows: List[tuple] = []
        while True:
            batch = yield from self.get()
            if batch is None:
                return rows
            if batch is SEGMENT_BOUNDARY:
                continue
            rows.extend(batch)

    # -- introspection (deadlock detector) ---------------------------------
    @property
    def closed(self) -> bool:
        return self._channel.closed

    @property
    def full(self) -> bool:
        return self._channel.full

    @property
    def empty(self) -> bool:
        return self._channel.empty

    @property
    def level(self) -> float:
        return self._channel.level

    @property
    def capacity(self) -> float:
        return self._channel.capacity

    def blocked_producers(self) -> list:
        return self._channel.blocked_producers()

    def blocked_consumers(self) -> list:
        return self._channel.blocked_consumers()

    def materialize(self) -> None:
        """Remove back-pressure (deadlock resolution, section 4.3.3)."""
        self._channel.force_capacity(float("inf"))

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<TupleBuffer {self.name} {self._channel.level}/{self.capacity}>"


class FanOut:
    """One producer, N consumer buffers, with a bounded replay ring.

    The producer writes through :meth:`put`; the OSP coordinator attaches
    satellite buffers with :meth:`attach` (replaying ring contents first)
    and the operator closes everything with :meth:`close`.
    """

    __slots__ = (
        "sim", "name", "buffers", "replay_tuples", "_ring", "_ring_size",
        "total_tuples", "dropped_from_ring", "closed", "_lock",
    )

    def __init__(
        self,
        sim: Simulator,
        primary: TupleBuffer,
        replay_tuples: int = 1024,
        name: str = "fanout",
    ):
        self.sim = sim
        self.name = name
        self.buffers: List[TupleBuffer] = [primary]
        self.replay_tuples = replay_tuples
        self._ring: List[List[tuple]] = []
        self._ring_size = 0
        self.total_tuples = 0
        self.dropped_from_ring = False
        self.closed = False
        # Serialises put against attach so a satellite's replay never
        # races with (and misses) a concurrent live batch.
        self._lock = Lock(sim)

    @property
    def primary(self) -> TupleBuffer:
        return self.buffers[0]

    def can_replay(self) -> bool:
        """Whether every tuple ever produced is still in the replay ring."""
        return not self.dropped_from_ring

    def put(self, batch: List[tuple]) -> Generator:
        """Coroutine: copy *batch* to every attached buffer (in order).

        Blocks until the slowest consumer accepts it.  Buffers whose
        consumer went away (closed underneath us) are detached silently.
        """
        if not batch:
            return
        yield self._lock.acquire()
        try:
            self.total_tuples += len(batch)
            self._remember(batch)
            for buffer in list(self.buffers):
                if buffer.closed:
                    self.detach(buffer)
                    continue
                try:
                    yield from buffer.put(batch)
                except ChannelClosed:
                    self.detach(buffer)
        finally:
            self._lock.release()

    def _remember(self, batch: List[tuple]) -> None:
        self._ring.append(batch)
        self._ring_size += len(batch)
        while self._ring_size > self.replay_tuples and len(self._ring) > 1:
            dropped = self._ring.pop(0)
            self._ring_size -= len(dropped)
            self.dropped_from_ring = True
        if self._ring_size > self.replay_tuples:
            self.dropped_from_ring = True

    def attach(
        self,
        buffer: TupleBuffer,
        replay: bool = True,
        on_attached=None,
    ) -> Generator:
        """Coroutine: add a satellite buffer, replaying ring contents.

        The caller must have verified :meth:`can_replay` when the
        satellite needs the complete output so far (step overlap).
        ``on_attached`` runs while the fan-out lock is still held, so the
        caller can capture the producer's exact progress at the moment of
        attachment (the 4.3.2 split uses this to bound its prefix pass
        without duplicating or losing a page).
        """
        yield self._lock.acquire()
        try:
            if replay:
                for batch in list(self._ring):
                    # Intentional blocking-while-holding: replay must be
                    # atomic w.r.t. new puts or the satellite would see a
                    # gap; the satellite's consumer is live, bounding the
                    # wait by its drain rate.
                    yield from buffer.put(list(batch))  # simlint: disable=IPR102
            if not self.closed:
                self.buffers.append(buffer)
            if on_attached is not None:
                on_attached()
            if self.closed:
                buffer.close()
        finally:
            self._lock.release()

    def detach(self, buffer: TupleBuffer) -> None:
        if buffer in self.buffers:
            self.buffers.remove(buffer)

    def reset_replay(self) -> None:
        """Forget all replay/progress state.

        Called when a rescued satellite is promoted to drive this
        fan-out with a fresh producer: the new producer restarts the
        stream from tuple zero, so the old ring and counters would
        corrupt later attach (window-of-opportunity) decisions.
        """
        self._ring = []
        self._ring_size = 0
        self.total_tuples = 0
        self.dropped_from_ring = False

    def close(self) -> None:
        self.closed = True
        for buffer in self.buffers:
            buffer.close()

    # -- introspection ------------------------------------------------------
    def any_full(self) -> Optional[TupleBuffer]:
        for buffer in self.buffers:
            if buffer.full and not buffer.closed:
                return buffer
        return None

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<FanOut {self.name} x{len(self.buffers)}>"
