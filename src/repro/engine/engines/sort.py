"""The sort micro-engine.

Phases (section 3.2): the *sort* phase is a full overlap -- identical
packets attach via the generic rule and receive the complete output --
and the *emit* phase is linear thanks to the materialisation enhancement:
the host retains its sorted result while it remains active, so a late
satellite gets a private re-emission from the start instead of missing
the window entirely.
"""

from __future__ import annotations

from math import log2
from typing import Generator, List

from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet, PacketState
from repro.faults.errors import FaultError

EMIT_BATCH = 1024


class SortEngine(MicroEngine):
    overlap_class = "full"  # sort phase; emit phase is linear

    # ------------------------------------------------------------------
    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        sm = self.engine.sm
        child_schema = plan.child.output_schema(sm.catalog)
        key = child_schema.projector(plan.keys)
        reverse = plan.descending

        packet.phase = "sort"
        budget = query.work_mem_tuples
        runs = []
        buffer: List[tuple] = []
        source = packet.inputs[0]
        try:
            while True:
                batch = yield from source.get()
                if batch is None:
                    break
                buffer.extend(batch)
                if len(buffer) >= budget:
                    yield from self._spill(
                        packet, buffer, key, reverse, runs
                    )
                    buffer = []
            if runs:
                if buffer:
                    yield from self._spill(
                        packet, buffer, key, reverse, runs
                    )
                result = yield from self._merge_runs(
                    packet, runs, key, reverse
                )
        finally:
            # Sweeps the spilled runs on faults too; on the normal path
            # this fires right after _merge_runs returns, the same point
            # the drop loop used to live.
            for run in runs:
                sm.drop_temp_file(run)
        if not runs:
            yield from self._sort_cpu(packet, len(buffer))
            buffer.sort(key=key, reverse=reverse)
            result = buffer

        # Materialisation function: retain the sorted result for late
        # satellites while this packet is active.
        packet.artifacts["sorted_result"] = result
        packet.phase = "emit"
        for start in range(0, len(result), EMIT_BATCH):
            yield from packet.output.put(result[start:start + EMIT_BATCH])

    def _sort_cpu(self, packet: Packet, n: int) -> Generator:
        if n <= 0:
            return
        comparisons = int(n * max(1.0, log2(max(2, n))))
        yield from self.charge(packet, 
            comparisons, factor=self.engine.host.config.sort_cpu_factor
        )

    def _spill(self, packet, rows, key, reverse, runs) -> Generator:
        yield from self._sort_cpu(packet, len(rows))
        rows.sort(key=key, reverse=reverse)
        schema = packet.plan.output_schema(self.engine.sm.catalog)
        run = self.engine.sm.create_temp_file(schema.row_width, "sortrun")
        # Registered before the (interruptible) write so the caller's
        # fault sweep sees a half-written run.
        runs.append(run)
        yield from self.engine.sm.write_run(run, rows)

    def _merge_runs(self, packet, runs, key, reverse) -> Generator:
        """Coroutine: k-way merge of spilled runs, charging page reads."""
        sm = self.engine.sm
        cursors = []
        for run in runs:
            cursors.append({"run": run, "block": 0, "rows": [], "idx": 0})

        def exhausted(cursor):
            return (
                cursor["idx"] >= len(cursor["rows"])
                and cursor["block"] >= cursor["run"].num_pages
            )

        result: List[tuple] = []
        for cursor in cursors:
            if cursor["run"].num_pages:
                page = yield from sm.read_temp_page(cursor["run"], 0)
                cursor["rows"] = page.rows()
                cursor["block"] = 1
        while True:
            best = None
            for cursor in cursors:
                if cursor["idx"] >= len(cursor["rows"]):
                    if cursor["block"] < cursor["run"].num_pages:
                        page = yield from sm.read_temp_page(
                            cursor["run"], cursor["block"]
                        )
                        cursor["rows"] = page.rows()
                        cursor["idx"] = 0
                        cursor["block"] += 1
                    else:
                        continue
                row = cursor["rows"][cursor["idx"]]
                rank = key(row)
                better = (
                    best is None
                    or (rank > best[0] if reverse else rank < best[0])
                )
                if better:
                    best = (rank, cursor)
            if best is None:
                break
            cursor = best[1]
            result.append(cursor["rows"][cursor["idx"]])
            cursor["idx"] += 1
        yield from self.charge(packet, len(result))
        return result

    # ------------------------------------------------------------------
    # OSP: generic full/step sharing plus materialised re-emission
    # ------------------------------------------------------------------
    def try_share(self, packet: Packet) -> bool:
        if super().try_share(packet):
            return True
        for host in self.active:
            if host.query is packet.query:
                continue
            if host.signature != packet.signature:
                continue
            result = host.artifacts.get("sorted_result")
            if result is None or not host.active:
                continue
            # Emit phase: re-emit the materialised result from the start.
            packet.state = PacketState.SATELLITE
            # Completed by its own re-emit process, not the host's sweeps.
            packet.self_serving = True
            packet.host = host
            host.satellites.append(packet)
            self.sim.tracer.packet_attach(
                packet, host, "sort-reemit", materialized=True
            )
            packet.cancel_subtree()
            self.engine.osp_stats.sort_reemissions += 1
            self.engine.osp_stats.record_attach(self.name, packet)
            self.sim.spawn(
                self._reemit(packet, result), name="sort-reemit"
            )
            return True
        return False

    def _reemit(self, packet: Packet, result: List[tuple]) -> Generator:
        out = packet.primary_output
        try:
            yield from self.charge(packet, len(result))
            for start in range(0, len(result), EMIT_BATCH):
                yield from out.put(result[start:start + EMIT_BATCH])
        except FaultError as exc:
            if not packet.query.aborted:
                self.engine.abort_query(packet.query, str(exc), exc)
        finally:
            out.close()
            if packet.state is PacketState.SATELLITE:
                packet.state = PacketState.DONE
                self.sim.tracer.packet_complete(packet)
