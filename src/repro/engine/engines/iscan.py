"""The index-scan micro-engine, including the section 4.3.2 strategies.

Two access paths:

* **Clustered** -- the heap file is stored in key order, so the scan
  descends the B+tree once to find the starting page and then reads the
  heap sequentially, emitting rows in key order ("clustered index scans
  are similar to file scans", section 3.2).
* **Unclustered** -- the paper's two phases: probe the index and build
  the full matching RID list (*full* overlap), sort it by page number
  (unless key order is required), then fetch the data pages.

When an *ordered* index scan arrives too late to attach generically (the
host has shipped output beyond its replay window) but its merge-join's
parent is order-insensitive, the OSP coordinator applies the two-pass
strategy of section 4.3.2: the newcomer piggybacks on the in-progress
fetch from its current position to the end (segment A), then fetches the
pages it missed (segment B), separated by a SEGMENT_BOUNDARY marker that
tells the merge-join to restart its other input.  A worst-case cost
check -- the non-shared relation is read twice -- gates the manoeuvre.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.engine.buffers import TupleBuffer
from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet, PacketState
from repro.faults.errors import FaultError
from repro.sim import ChannelClosed


def _count_pages(pairs: List[Tuple]) -> int:
    return len({rid.block_no for _key, rid in pairs})


class IScanEngine(MicroEngine):
    overlap_class = "full"  # phase 1; phase 2 is linear/spike

    # ------------------------------------------------------------------
    def serve(self, packet: Packet) -> Generator:
        info = self.engine.sm.catalog.index(packet.plan.table,
                                            packet.plan.index)
        if info.clustered:
            yield from self._serve_clustered(packet, info)
        else:
            yield from self._serve_unclustered(packet)

    # -- helpers ----------------------------------------------------------
    def _row_fns(self, packet: Packet):
        sm = self.engine.sm
        plan = packet.plan
        base = sm.catalog.table_schema(plan.table)
        pred = plan.predicate.bind(base) if plan.predicate else None
        proj = (
            base.projector(plan.project) if plan.project is not None else None
        )
        return pred, proj

    @staticmethod
    def _apply(rows, pred, proj):
        if pred is not None:
            rows = [row for row in rows if pred(row)]
        if proj is not None:
            rows = [proj(row) for row in rows]
        return rows

    # ------------------------------------------------------------------
    # Clustered path
    # ------------------------------------------------------------------
    def _serve_clustered(self, packet: Packet, info) -> Generator:
        sm = self.engine.sm
        plan = packet.plan
        pred, proj = self._row_fns(packet)
        base = sm.catalog.table_schema(plan.table)
        key_fn = sm._key_fn(base, info.key_columns)

        packet.phase = "rid_list"
        start_page = yield from self._locate_start_page(packet, info)
        packet.artifacts["kind"] = "clustered"
        packet.artifacts["start_page"] = start_page
        packet.artifacts["cursor"] = start_page
        packet.artifacts["key_fn"] = key_fn
        packet.phase = "fetch"
        yield from self._fetch_clustered(
            packet, start_page, None, pred, proj, key_fn,
            output=packet.output, track_cursor=True,
        )

    def _locate_start_page(self, packet: Packet, info) -> Generator:
        """Coroutine: descend the tree for ``lo``; returns the heap page
        where the range begins (0 for an unbounded scan)."""
        plan = packet.plan
        start = yield from self.engine.sm.clustered_start_page(
            plan.table, plan.index, plan.lo
        )
        return start

    def _fetch_clustered(
        self,
        packet: Packet,
        start_page: int,
        stop_page,
        pred,
        proj,
        key_fn,
        output,
        track_cursor: bool,
    ) -> Generator:
        """Coroutine: sequential key-ordered heap read of
        ``[start_page, stop_page)`` honouring the plan's key range."""
        sm = self.engine.sm
        plan = packet.plan
        num_pages = sm.num_pages(plan.table)
        end = num_pages if stop_page is None else stop_page
        page_no = start_page
        while page_no < end:
            page = yield from sm.read_table_page(
                plan.table, page_no, scan=True, stream=packet.stream
            )
            rows = page.rows()
            yield from self.charge(packet, len(rows))
            if plan.hi is not None and rows and key_fn(rows[0]) > plan.hi:
                break
            if plan.lo is not None or plan.hi is not None:
                rows = [
                    row
                    for row in rows
                    if (plan.lo is None or key_fn(row) >= plan.lo)
                    and (plan.hi is None or key_fn(row) <= plan.hi)
                ]
            rows = self._apply(rows, pred, proj)
            if rows:
                yield from output.put(rows)
            page_no += 1
            if track_cursor:
                packet.artifacts["cursor"] = page_no

    # ------------------------------------------------------------------
    # Unclustered path (the paper's two-phase scan)
    # ------------------------------------------------------------------
    def _serve_unclustered(self, packet: Packet) -> Generator:
        sm = self.engine.sm
        plan = packet.plan
        pred, proj = self._row_fns(packet)
        packet.phase = "rid_list"
        pairs = yield from sm.index_range(
            plan.table, plan.index, plan.lo, plan.hi
        )
        if not plan.ordered:
            pairs = sorted(pairs, key=lambda kv: kv[1])  # by page number
        packet.artifacts["kind"] = "rids"
        packet.artifacts["pairs"] = pairs
        packet.artifacts["cursor"] = 0
        packet.phase = "fetch"
        yield from self._fetch_rids(
            packet, pairs, 0, len(pairs), pred, proj,
            output=packet.output, track_cursor=True,
        )

    def _fetch_rids(
        self,
        packet: Packet,
        pairs: List[Tuple],
        start: int,
        stop: int,
        pred,
        proj,
        output,
        track_cursor: bool = False,
    ) -> Generator:
        """Coroutine: fetch rows for ``pairs[start:stop]``, grouping
        consecutive same-page RIDs into one page visit.

        With ``track_cursor`` the cursor advances *after* each delivered
        group -- the invariant the 4.3.2 attach relies on to bound its
        prefix pass exactly.
        """
        sm = self.engine.sm
        table = packet.plan.table
        i = start
        while i < stop:
            block = pairs[i][1].block_no
            page = yield from sm.read_table_page(
                table, block, scan=True, stream=packet.stream
            )
            group: List[tuple] = []
            j = i
            while j < stop and pairs[j][1].block_no == block:
                row = page.get(pairs[j][1].slot)
                if row is not None:
                    group.append(row)
                j += 1
            yield from self.charge(packet, len(group))
            group = self._apply(group, pred, proj)
            if group:
                yield from output.put(group)
            i = j
            if track_cursor:
                packet.artifacts["cursor"] = i

    # ------------------------------------------------------------------
    # OSP: generic sharing plus the order-sensitive split
    # ------------------------------------------------------------------
    def try_share(self, packet: Packet) -> bool:
        if super().try_share(packet):
            return True
        return self._try_split_share(packet)

    def _remaining_pages(self, host: Packet) -> int:
        kind = host.artifacts.get("kind")
        cursor = host.artifacts.get("cursor", 0)
        if kind == "clustered":
            total = self.engine.sm.num_pages(host.plan.table)
            return max(0, total - cursor)
        if kind == "rids":
            return _count_pages(host.artifacts["pairs"][cursor:])
        return 0

    def _try_split_share(self, packet: Packet) -> bool:
        split = packet.artifacts.get("mj_split")
        if split is None:
            return False
        host = None
        for candidate in self.active:
            if candidate.query is packet.query:
                continue
            if candidate.signature != packet.signature:
                continue
            if candidate.phase != "fetch" or not candidate.active:
                continue
            host = candidate
            break
        if host is None:
            return False
        # Worst-case cost check (section 4.3.2): sharing saves the pages
        # of the not-yet-fetched suffix but forces a second read of the
        # non-shared relation.
        saved = self._remaining_pages(host)
        extra = split.get("other_pages", 0)
        if saved <= extra:
            self.engine.osp_stats.mj_splits_rejected += 1
            self.sim.tracer.osp(
                "mj_split_rejected",
                packet=packet.packet_id,
                host=host.packet_id,
                saved=saved,
                extra=extra,
            )
            return False

        packet.state = PacketState.SATELLITE
        # Completed by its own split-relay process, not the host's sweeps.
        packet.self_serving = True
        packet.host = host
        host.satellites.append(packet)
        self.sim.tracer.packet_attach(
            packet, host, "mj-split", saved=saved, extra=extra
        )
        packet.cancel_subtree()
        # Only one input of a merge-join may be segmented: with both
        # sides split the two-pass union would no longer cover the full
        # cross product of matches.  Disable the sibling's eligibility.
        mergejoin = split["mergejoin"]
        for sibling in mergejoin.children:
            if sibling is not packet:
                sibling.artifacts.pop("mj_split", None)
        self.engine.osp_stats.mj_splits += 1
        self.engine.osp_stats.record_attach(self.name, packet)
        self.sim.spawn(
            self._split_relay(host, packet), name="iscan-split-relay"
        )
        return True

    def _split_relay(self, host: Packet, packet: Packet) -> Generator:
        """Segment A from the host, a boundary marker, then segment B."""
        pred, proj = self._row_fns(packet)
        seg_a = TupleBuffer(
            self.sim,
            capacity_tuples=self.engine.config.buffer_tuples,
            name=f"q{packet.query.query_id}:iscan-segA",
            producer=host,
            consumer=packet,
        )
        self.engine.register_buffer(seg_a)
        boundary = {}

        def capture():
            boundary["kind"] = host.artifacts.get("kind")
            boundary["cursor"] = host.artifacts.get("cursor", 0)
            boundary["pairs"] = host.artifacts.get("pairs")
            boundary["start_page"] = host.artifacts.get("start_page", 0)
            boundary["key_fn"] = host.artifacts.get("key_fn")

        yield from host.output.attach(seg_a, replay=False, on_attached=capture)
        out = packet.primary_output
        try:
            while True:
                batch = yield from seg_a.get()
                if batch is None:
                    break
                yield from out.put(batch)
            yield from out.put_marker()
            # Segment B: the pages the satellite missed before attaching.
            if boundary["kind"] == "clustered":
                yield from self._fetch_clustered(
                    packet,
                    boundary["start_page"],
                    boundary["cursor"],
                    pred,
                    proj,
                    boundary["key_fn"],
                    output=out,
                    track_cursor=False,
                )
            else:
                yield from self._fetch_rids(
                    packet,
                    boundary["pairs"],
                    0,
                    boundary["cursor"],
                    pred,
                    proj,
                    output=out,
                )
        except ChannelClosed:
            pass
        except FaultError as exc:
            if not packet.query.aborted:
                self.engine.abort_query(packet.query, str(exc), exc)
        finally:
            out.close()
            if packet.state is PacketState.SATELLITE:
                packet.state = PacketState.DONE
                self.sim.tracer.packet_complete(packet)
