"""The file-scan micro-engine.

With OSP enabled, unordered scans are served by the circular-scan manager
(section 4.3.1): one dedicated scanner thread per relation, all concurrent
scan packets attached as consumers with their own termination points.

Ordered scans have a *spike* window of opportunity: they run standalone
(the 4.3.2 strategies for exploiting in-progress scans under merge joins
live in the index-scan micro-engine, where the paper's Figure 9 workload
puts them).

With OSP disabled (the Baseline configuration), every scan packet reads
its pages independently -- sharing happens only in the buffer pool.
"""

from __future__ import annotations

from typing import Generator

from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet
from repro.storage.locks import LockMode


class FScanEngine(MicroEngine):
    overlap_class = "linear"

    def __init__(self, name: str, engine, workers: int = 64):
        super().__init__(name, engine, workers=workers)
        # Created lazily so the engine facade can finish constructing.
        self._circular = None

    @property
    def circular(self):
        if self._circular is None:
            from repro.osp.circular import CircularScanManager

            self._circular = CircularScanManager(self.engine)
        return self._circular

    # ------------------------------------------------------------------
    def try_share(self, packet: Packet) -> bool:
        # Circular scans subsume queue-time sharing for unordered scans:
        # the packet always goes through serve(), which attaches it to the
        # shared scanner.  Exact-signature sharing would also be legal but
        # the circular path is strictly more general (different predicates
        # still share), so scans never attach at the queue.
        return False

    def serve(self, packet: Packet) -> Generator:
        packet.phase = "scan"
        group = packet.artifacts.get("fold_group")
        if group is not None:
            # A fold-group host: run the group's widened scan in canonical
            # page order (never circular -- skip-by-count redispatch of
            # fold members relies on it).
            yield from group.serve(packet)
            return
        if (
            self.engine.osp_enabled
            and not packet.plan.ordered
            and not packet.no_share
            and packet.plan.resume is None
        ):
            attached = yield from self.circular.serve(packet)
            if attached:
                return
        yield from self._standalone_scan(packet)

    def _rescue_satellites(self, packet: Packet) -> None:
        group = packet.artifacts.get("fold_group")
        if group is not None:
            # Record the unfolds and close the group before the generic
            # sweep redispatches the members into private re-executions.
            group.on_host_failure()
        super()._rescue_satellites(packet)

    # ------------------------------------------------------------------
    def _standalone_scan(self, packet: Packet) -> Generator:
        sm = self.engine.sm
        plan = packet.plan
        base = sm.catalog.table_schema(plan.table)
        pred = plan.predicate.bind(base) if plan.predicate else None
        proj = (
            base.projector(plan.project) if plan.project is not None else None
        )
        # Section 4.3.4: a scan waits while the table is locked for writing.
        owner = ("scan", packet.query.query_id, packet.packet_id)
        num_pages = sm.num_pages(plan.table)
        if plan.resume is None:
            pages = range(num_pages)
        else:
            # Recovery: replay exactly the unconsumed suffix, continuing
            # the wrapped page order the crashed consumer was seeing.
            start, count = plan.resume
            pages = ((start + i) % num_pages for i in range(count))
        lineage = packet.query.lineage
        yield sm.locks.acquire(owner, plan.table, LockMode.SHARED)
        try:
            for block in pages:
                page = yield from sm.read_table_page(
                    plan.table, block, scan=True, stream=packet.stream
                )
                rows = page.rows()
                yield from self.charge(packet, len(rows))
                if pred is not None:
                    rows = [row for row in rows if pred(row)]
                if proj is not None:
                    rows = [proj(row) for row in rows]
                if lineage is not None:
                    # Before put(): the page entry must exist by the time
                    # the root sees the batch and computes its frontier.
                    lineage.scan_page(
                        packet.stream, plan.table, block, len(rows),
                        num_pages,
                    )
                if rows:
                    # Intentional blocking-while-holding: the table scan
                    # lock is held for the whole scan by design (QPipe's
                    # one-scan-at-a-time policy); backpressure here is the
                    # scan pacing itself, not a deadlock hazard -- the
                    # consumer never takes table locks.
                    yield from packet.output.put(rows)  # simlint: disable=IPR102
        finally:
            # Tolerant: the abort path's lock sweep may get here first.
            sm.locks.release_if_held(owner, plan.table)
