"""The aggregation micro-engines.

* Single aggregates are a *full* overlap: no output exists until the very
  end, so the generic sharing rule admits satellites for the operator's
  whole lifetime (Figure 4a).
* Group-by is *step* (it produces multiple results); hash grouping is
  blocking here, so output starts only after input is consumed, and the
  fan-out replay ring (buffering enhancement) keeps the window open a
  while into emission.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.engine.buffers import SEGMENT_BOUNDARY
from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet
from repro.relational.expressions import bind_aggregates

OUT_BATCH = 1024

#: How many consumed input batches between lineage checkpoints of the
#: accumulator state (one batch per delivered scan page upstream).
CHECKPOINT_EVERY = 8


class AggEngine(MicroEngine):
    overlap_class = "full"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        child_schema = plan.child.output_schema(self.engine.sm.catalog)
        specs, fns = bind_aggregates(plan.aggs, child_schema)
        states = [spec.make_state() for spec in specs]
        source = packet.inputs[0]
        lineage = query.lineage
        consumed = 0
        batches = 0

        packet.phase = "aggregate"
        while True:
            batch = yield from source.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch) * len(states))
            for row in batch:
                for state, fn in zip(states, fns):
                    state.add(fn(row))
            consumed += len(batch)
            batches += 1
            if lineage is not None and batches % CHECKPOINT_EVERY == 0:
                # Write-ahead checkpoint: accumulator snapshot at an
                # input frontier; recovery replays only the unconsumed
                # page suffix into the restored states.
                yield from lineage.checkpoint(
                    consumed,
                    [(s.count, s.total, s.best) for s in states],
                )
        packet.phase = "emit"
        yield from packet.output.put(
            [tuple(state.result() for state in states)]
        )


class FoldBank:
    """Merged-aggregation accumulators for one folded scan signature.

    The fold group (repro.folding) feeds each wide-scan page's residual
    rows through :meth:`add_batch` exactly once; members enrolling the
    same aggregate (by :meth:`AggSpec.signature`) share one accumulator,
    which is the "one aggregation, per-query projections" half of query
    folding.  ``upto`` is the next canonical block this bank will consume
    live; accumulators created later (``fresh``) are caught up from the
    group's survivor ring over exactly ``ring[:upto]`` so a join landing
    mid-page stays exactly-once.
    """

    __slots__ = ("residual", "upto", "_pairs", "_order")

    def __init__(self, residual, frontier: int = 0):
        #: ``survivors -> member scan rows`` (the folded scan's own
        #: predicate + projection, shared by every member of this bank).
        self.residual = residual
        self.upto = frontier
        self._pairs: Dict[str, tuple] = {}
        self._order: List[str] = []

    def enroll(self, specs, fns):
        """Register one member's bound aggregates; dedupe by signature.

        Returns ``(sigs, fresh)``: the member's own signature list (its
        result row is ``result_for(sigs)``) and the newly created
        ``(state, fn)`` pairs the caller must replay history into.
        """
        sigs: List[str] = []
        fresh: List[tuple] = []
        for spec, fn in zip(specs, fns):
            sig = spec.signature()
            sigs.append(sig)
            if sig not in self._pairs:
                pair = (spec.make_state(), fn)
                self._pairs[sig] = pair
                self._order.append(sig)
                fresh.append(pair)
        return sigs, fresh

    def add_batch(self, rows) -> None:
        pairs = [self._pairs[sig] for sig in self._order]
        for row in rows:
            for state, fn in pairs:
                state.add(fn(row))

    def result_for(self, sigs) -> tuple:
        return tuple(self._pairs[sig][0].result() for sig in sigs)

    def __len__(self) -> int:
        return len(self._order)


class GroupByEngine(MicroEngine):
    overlap_class = "step"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        child_schema = plan.child.output_schema(self.engine.sm.catalog)
        specs, fns = bind_aggregates(plan.aggs, child_schema)
        group = child_schema.projector(plan.group_cols)
        source = packet.inputs[0]

        packet.phase = "group"
        groups: Dict[tuple, list] = {}
        while True:
            batch = yield from source.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch) * max(1, len(specs)))
            for row in batch:
                key = group(row)
                states = groups.get(key)
                if states is None:
                    states = [spec.make_state() for spec in specs]
                    groups[key] = states
                for state, fn in zip(states, fns):
                    state.add(fn(row))
        packet.phase = "emit"
        result: List[tuple] = [
            key + tuple(state.result() for state in states)
            for key, states in sorted(groups.items())
        ]
        for start in range(0, len(result), OUT_BATCH):
            yield from packet.output.put(result[start:start + OUT_BATCH])
