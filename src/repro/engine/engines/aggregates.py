"""The aggregation micro-engines.

* Single aggregates are a *full* overlap: no output exists until the very
  end, so the generic sharing rule admits satellites for the operator's
  whole lifetime (Figure 4a).
* Group-by is *step* (it produces multiple results); hash grouping is
  blocking here, so output starts only after input is consumed, and the
  fan-out replay ring (buffering enhancement) keeps the window open a
  while into emission.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.engine.buffers import SEGMENT_BOUNDARY
from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet
from repro.relational.expressions import bind_aggregates

OUT_BATCH = 1024

#: How many consumed input batches between lineage checkpoints of the
#: accumulator state (one batch per delivered scan page upstream).
CHECKPOINT_EVERY = 8


class AggEngine(MicroEngine):
    overlap_class = "full"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        child_schema = plan.child.output_schema(self.engine.sm.catalog)
        specs, fns = bind_aggregates(plan.aggs, child_schema)
        states = [spec.make_state() for spec in specs]
        source = packet.inputs[0]
        lineage = query.lineage
        consumed = 0
        batches = 0

        packet.phase = "aggregate"
        while True:
            batch = yield from source.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch) * len(states))
            for row in batch:
                for state, fn in zip(states, fns):
                    state.add(fn(row))
            consumed += len(batch)
            batches += 1
            if lineage is not None and batches % CHECKPOINT_EVERY == 0:
                # Write-ahead checkpoint: accumulator snapshot at an
                # input frontier; recovery replays only the unconsumed
                # page suffix into the restored states.
                yield from lineage.checkpoint(
                    consumed,
                    [(s.count, s.total, s.best) for s in states],
                )
        packet.phase = "emit"
        yield from packet.output.put(
            [tuple(state.result() for state in states)]
        )


class GroupByEngine(MicroEngine):
    overlap_class = "step"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        child_schema = plan.child.output_schema(self.engine.sm.catalog)
        specs, fns = bind_aggregates(plan.aggs, child_schema)
        group = child_schema.projector(plan.group_cols)
        source = packet.inputs[0]

        packet.phase = "group"
        groups: Dict[tuple, list] = {}
        while True:
            batch = yield from source.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch) * max(1, len(specs)))
            for row in batch:
                key = group(row)
                states = groups.get(key)
                if states is None:
                    states = [spec.make_state() for spec in specs]
                    groups[key] = states
                for state, fn in zip(states, fns):
                    state.add(fn(row))
        packet.phase = "emit"
        result: List[tuple] = [
            key + tuple(state.result() for state in states)
            for key, states in sorted(groups.items())
        ]
        for start in range(0, len(result), OUT_BATCH):
            yield from packet.output.put(result[start:start + OUT_BATCH])
