"""Projection and update micro-engines.

Updates are the one operation that must never be shared (section 3.2:
"update statements cannot be shared since that would violate the
transactional semantics").  The update micro-engine carries no OSP
functionality at all (section 4.3.4) and routes everything through the
storage manager's table locks.
"""

from __future__ import annotations

from typing import Generator

from repro.engine.buffers import SEGMENT_BOUNDARY
from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet
from repro.relational.plans import DeleteRows, InsertRows, UpdateRows
from repro.storage.locks import LockMode
from repro.storage.page import RID


class ProjectEngine(MicroEngine):
    overlap_class = "linear"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        child_schema = plan.child.output_schema(self.engine.sm.catalog)
        if plan.exprs is None:
            fn = child_schema.projector(plan.names)
        else:
            bound = [e.bind(child_schema) for e in plan.exprs]
            fn = lambda row: tuple(b(row) for b in bound)  # noqa: E731
        source = packet.inputs[0]
        while True:
            batch = yield from source.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                # Projection preserves segment structure for its parent.
                yield from packet.primary_output.put_marker()
                continue
            yield from self.charge(packet, len(batch))
            yield from packet.output.put([fn(row) for row in batch])


class FilterEngine(MicroEngine):
    overlap_class = "linear"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        pred = plan.predicate.bind(
            plan.child.output_schema(self.engine.sm.catalog)
        )
        source = packet.inputs[0]
        while True:
            batch = yield from source.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                yield from packet.primary_output.put_marker()
                continue
            yield from self.charge(packet, len(batch))
            kept = [row for row in batch if pred(row)]
            if kept:
                yield from packet.output.put(kept)


class LimitEngine(MicroEngine):
    overlap_class = "linear"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        source = packet.inputs[0]
        to_skip, remaining = plan.offset, plan.count
        while remaining > 0:
            batch = yield from source.get()
            if batch is None:
                return
            if batch is SEGMENT_BOUNDARY:
                continue
            if to_skip:
                drop = min(to_skip, len(batch))
                batch = batch[drop:]
                to_skip -= drop
            if not batch:
                continue
            batch = batch[:remaining]
            remaining -= len(batch)
            yield from self.charge(packet, len(batch))
            yield from packet.output.put(batch)
        # Early exit: the (closed) inputs are released by the base class.


class DistinctEngine(MicroEngine):
    overlap_class = "step"

    def serve(self, packet: Packet) -> Generator:
        source = packet.inputs[0]
        seen = set()
        while True:
            batch = yield from source.get()
            if batch is None:
                return
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            fresh = []
            for row in batch:
                if row not in seen:
                    seen.add(row)
                    fresh.append(row)
            if fresh:
                yield from packet.output.put(fresh)


class UpdateEngine(MicroEngine):
    """No OSP; exclusive table locks; see section 4.3.4."""

    overlap_class = "none"

    def try_share(self, packet: Packet) -> bool:
        return False  # updates are never shared

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        # Writes invalidate any cached results over this table.
        self.engine.result_cache.invalidate_table(plan.table)
        if isinstance(plan, InsertRows):
            yield from self._insert(packet, plan)
        elif isinstance(plan, UpdateRows):
            yield from self._update(packet, plan)
        elif isinstance(plan, DeleteRows):
            yield from self._delete(packet, plan)
        else:
            raise TypeError(f"update engine got {type(plan).__name__}")

    def _insert(self, packet: Packet, plan: InsertRows) -> Generator:
        sm = self.engine.sm
        owner = ("q", packet.query.query_id, packet.packet_id)
        packet.phase = "lock"
        yield sm.locks.acquire(owner, plan.table, LockMode.EXCLUSIVE)
        packet.phase = "write"
        try:
            for row in plan.rows:
                yield from sm.insert_row(plan.table, row)
        finally:
            # Tolerant: the abort path's lock sweep may get here first.
            sm.locks.release_if_held(owner, plan.table)
        yield from packet.output.put([(len(plan.rows),)])

    def _delete(self, packet: Packet, plan: DeleteRows) -> Generator:
        sm = self.engine.sm
        owner = ("q", packet.query.query_id, packet.packet_id)
        schema = sm.catalog.table_schema(plan.table)
        pred = plan.predicate.bind(schema) if plan.predicate else None
        packet.phase = "lock"
        yield sm.locks.acquire(owner, plan.table, LockMode.EXCLUSIVE)
        packet.phase = "write"
        removed = 0
        try:
            info = sm.catalog.table(plan.table)
            for block in range(info.num_pages):
                page = yield from sm.read_table_page(plan.table, block)
                for slot, row in list(page.items()):
                    if pred is None or pred(row):
                        yield from sm.delete_row(plan.table, RID(block, slot))
                        removed += 1
        finally:
            sm.locks.release_if_held(owner, plan.table)
        yield from packet.output.put([(removed,)])

    def _update(self, packet: Packet, plan: UpdateRows) -> Generator:
        sm = self.engine.sm
        owner = ("q", packet.query.query_id, packet.packet_id)
        schema = sm.catalog.table_schema(plan.table)
        pred = plan.predicate.bind(schema) if plan.predicate else None
        packet.phase = "lock"
        yield sm.locks.acquire(owner, plan.table, LockMode.EXCLUSIVE)
        packet.phase = "write"
        changed = 0
        try:
            info = sm.catalog.table(plan.table)
            for block in range(info.num_pages):
                page = yield from sm.read_table_page(plan.table, block)
                for slot, row in list(page.items()):
                    if pred is None or pred(row):
                        yield from sm.update_row(
                            plan.table, RID(block, slot), plan.apply(row)
                        )
                        changed += 1
        finally:
            sm.locks.release_if_held(owner, plan.table)
        yield from packet.output.put([(changed,)])
