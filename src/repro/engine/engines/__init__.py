"""The micro-engines: one per relational operator (Figure 5b)."""

from repro.engine.engines.aggregates import AggEngine, GroupByEngine
from repro.engine.engines.iscan import IScanEngine
from repro.engine.engines.joins import (
    HashJoinEngine,
    MergeJoinEngine,
    NLJoinEngine,
    OuterJoinEngine,
    SemiJoinEngine,
)
from repro.engine.engines.misc import (
    DistinctEngine,
    FilterEngine,
    LimitEngine,
    ProjectEngine,
    UpdateEngine,
)
from repro.engine.engines.scan import FScanEngine
from repro.engine.engines.sort import SortEngine

__all__ = [
    "AggEngine",
    "DistinctEngine",
    "FilterEngine",
    "FScanEngine",
    "GroupByEngine",
    "HashJoinEngine",
    "IScanEngine",
    "MergeJoinEngine",
    "LimitEngine",
    "NLJoinEngine",
    "OuterJoinEngine",
    "ProjectEngine",
    "SemiJoinEngine",
    "SortEngine",
    "UpdateEngine",
]


def build_engines(engine, workers: int):
    """Instantiate the full micro-engine set for a QPipeEngine."""
    return {
        "fscan": FScanEngine("fscan", engine, workers=workers * 4),
        "filter": FilterEngine("filter", engine, workers=workers),
        "iscan": IScanEngine("iscan", engine, workers=workers),
        "sort": SortEngine("sort", engine, workers=workers),
        "agg": AggEngine("agg", engine, workers=workers),
        "groupby": GroupByEngine("groupby", engine, workers=workers),
        "hashjoin": HashJoinEngine("hashjoin", engine, workers=workers),
        "mergejoin": MergeJoinEngine("mergejoin", engine, workers=workers),
        "nljoin": NLJoinEngine("nljoin", engine, workers=workers),
        "semijoin": SemiJoinEngine("semijoin", engine, workers=workers),
        "antijoin": SemiJoinEngine("antijoin", engine, workers=workers),
        "outerjoin": OuterJoinEngine("outerjoin", engine, workers=workers),
        "limit": LimitEngine("limit", engine, workers=workers),
        "distinct": DistinctEngine("distinct", engine, workers=workers),
        "project": ProjectEngine("project", engine, workers=workers),
        "update": UpdateEngine("update", engine, workers=workers),
    }
