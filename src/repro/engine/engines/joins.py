"""The join micro-engines: hash join, merge join, nested-loop join.

Overlap classes (section 3.2):

* hash join -- *full* during the build phase (no output yet, so the
  generic rule shares everything), *step* during probe (replay ring);
* merge join -- *step*, plus the section 4.3.2 segmented-input handling:
  a SEGMENT_BOUNDARY on one input makes the join restart its other input
  and merge the next segment (two joins whose union is the answer);
* nested-loop join -- *step*.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List

from repro.engine.buffers import SEGMENT_BOUNDARY, TupleBuffer
from repro.engine.micro_engine import MicroEngine
from repro.engine.packets import Packet

OUT_BATCH = 256


class HashJoinEngine(MicroEngine):
    overlap_class = "full"  # build; probe is step

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        catalog = self.engine.sm.catalog
        lkey = plan.left.output_schema(catalog).projector([plan.left_key])
        rkey = plan.right.output_schema(catalog).projector([plan.right_key])
        left_in, right_in = packet.inputs

        packet.phase = "build"
        table: Dict = {}
        count = 0
        while True:
            batch = yield from left_in.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            count += len(batch)
            for row in batch:
                table.setdefault(lkey(row), []).append(row)
        if count > query.work_mem_tuples:
            yield from self._grace_join(packet, table, lkey, rkey, right_in)
            return

        packet.phase = "probe"
        while True:
            batch = yield from right_in.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            pending: List[tuple] = []
            for rrow in batch:
                for lrow in table.get(rkey(rrow), ()):
                    pending.append(lrow + rrow)
            # Pipelined: matches ship as soon as they are produced, so
            # the probe phase's step window closes honestly.
            if pending:
                yield from packet.output.put(pending)

    def _grace_join(self, packet, table, lkey, rkey, right_in) -> Generator:
        """Partitioned fallback when the build side overflows memory."""
        query = packet.query
        sm = self.engine.sm
        packet.phase = "partition"
        lrows = [row for rows in table.values() for row in rows]
        rrows = yield from right_in.drain()
        nparts = max(2, -(-len(lrows) // max(1, query.work_mem_tuples // 2)))

        def spill(rows, key, label, parts):
            buckets: List[List[tuple]] = [[] for _ in range(nparts)]
            for row in rows:
                buckets[hash(key(row)) % nparts].append(row)
            for bucket in buckets:
                part = sm.create_temp_file(64, label=label)
                # Registered before the (interruptible) write so the
                # caller's fault sweep sees a half-written partition.
                parts.append(part)
                yield from sm.write_run(part, bucket)

        yield from self.charge(packet, len(lrows) + len(rrows))
        lparts: List = []
        rparts: List = []
        try:
            yield from spill(lrows, lkey, "hjL", lparts)
            yield from spill(rrows, rkey, "hjR", rparts)

            packet.phase = "probe"
            for p in range(nparts):
                lpart_rows: List[tuple] = []
                for block in range(lparts[p].num_pages):
                    page = yield from sm.read_temp_page(lparts[p], block)
                    lpart_rows.extend(page.rows())
                sub: Dict = {}
                for row in lpart_rows:
                    sub.setdefault(lkey(row), []).append(row)
                pending: List[tuple] = []
                for block in range(rparts[p].num_pages):
                    page = yield from sm.read_temp_page(rparts[p], block)
                    rows = page.rows()
                    yield from self.charge(packet, len(rows))
                    for rrow in rows:
                        for lrow in sub.get(rkey(rrow), ()):
                            pending.append(lrow + rrow)
                if pending:
                    yield from packet.output.put(pending)
        finally:
            for part in lparts + rparts:
                sm.drop_temp_file(part)


class _Cursor:
    """Batch-buffered reader over one merge-join input stream."""

    def __init__(self, buffer: TupleBuffer):
        self.buffer = buffer
        self.rows: deque = deque()
        self.eos = False
        self.segment_ended = False

    def begin_next_segment(self) -> None:
        self.segment_ended = False

    def refill(self) -> Generator:
        """Coroutine: ensure a row is available or a segment/stream end
        is flagged."""
        while not self.rows and not self.eos and not self.segment_ended:
            batch = yield from self.buffer.get()
            if batch is None:
                self.eos = True
            elif batch is SEGMENT_BOUNDARY:
                self.segment_ended = True
            else:
                self.rows.extend(batch)

    @property
    def exhausted(self) -> bool:
        return not self.rows and (self.eos or self.segment_ended)


class MergeJoinEngine(MicroEngine):
    overlap_class = "step"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        catalog = self.engine.sm.catalog
        lkey = plan.left.output_schema(catalog).projector([plan.left_key])
        rkey = plan.right.output_schema(catalog).projector([plan.right_key])
        left = _Cursor(packet.inputs[0])
        right = _Cursor(packet.inputs[1])

        packet.phase = "merge"
        while True:
            yield from self._merge_pass(packet, left, right, lkey, rkey)
            if left.segment_ended and not left.eos:
                # Section 4.3.2: the left input delivered an out-of-order
                # segment pair; restart the right subtree and join again.
                self._abandon(right)
                right = yield from self._restart(packet, plan.right)
                left.begin_next_segment()
            elif right.segment_ended and not right.eos:
                self._abandon(left)
                left = yield from self._restart(packet, plan.left)
                right.begin_next_segment()
            else:
                break

    @staticmethod
    def _abandon(cursor: _Cursor) -> None:
        """Stop reading a pass's leftover input; closing the buffer lets
        its producer detach and finish without blocking."""
        cursor.rows.clear()
        cursor.buffer.close()

    def _restart(self, packet: Packet, child_plan) -> Generator:
        buffer = self.engine.dispatcher.dispatch_subtree(
            packet.query, child_plan
        )
        packet.query.bump("mj_restarts")
        return _Cursor(buffer)
        yield  # pragma: no cover - coroutine signature consistency

    def _merge_pass(self, packet, left, right, lkey, rkey) -> Generator:
        query = packet.query
        pending: List[tuple] = []
        while True:
            yield from left.refill()
            yield from right.refill()
            if left.exhausted or right.exhausted:
                break
            lk, rk = lkey(left.rows[0]), rkey(right.rows[0])
            if lk < rk:
                left.rows.popleft()
            elif rk < lk:
                right.rows.popleft()
            else:
                lgroup = yield from self._take_group(left, lkey, lk)
                rgroup = yield from self._take_group(right, rkey, rk)
                yield from self.charge(packet, len(lgroup) * len(rgroup))
                for lrow in lgroup:
                    for rrow in rgroup:
                        pending.append(lrow + rrow)
                # Pipelined: each matched group ships immediately.
                if pending:
                    yield from packet.output.put(pending)
                    pending = []

    def _take_group(self, cursor: _Cursor, key, value) -> Generator:
        group: List[tuple] = []
        while True:
            while cursor.rows and key(cursor.rows[0]) == value:
                group.append(cursor.rows.popleft())
            if cursor.rows:
                return group
            yield from cursor.refill()
            if not cursor.rows:
                return group


class SemiJoinEngine(MicroEngine):
    """EXISTS / NOT EXISTS: *full* overlap while the right key set builds,
    *step* once left rows start flowing out."""

    overlap_class = "full"

    def serve(self, packet: Packet) -> Generator:
        from repro.relational.plans import AntiJoin

        plan = packet.plan
        query = packet.query
        catalog = self.engine.sm.catalog
        lkey = plan.left.output_schema(catalog).projector([plan.left_key])
        rkey = plan.right.output_schema(catalog).projector([plan.right_key])
        anti = isinstance(plan, AntiJoin)
        left_in, right_in = packet.inputs

        packet.phase = "build"
        keys = set()
        while True:
            batch = yield from right_in.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            for row in batch:
                keys.add(rkey(row))

        packet.phase = "probe"
        while True:
            batch = yield from left_in.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            if anti:
                kept = [r for r in batch if lkey(r) not in keys]
            else:
                kept = [r for r in batch if lkey(r) in keys]
            if kept:
                yield from packet.output.put(kept)


class OuterJoinEngine(MicroEngine):
    """Hash left-outer join: build right (*full*), probe left (*step*),
    padding unmatched left rows with NULLs."""

    overlap_class = "full"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        catalog = self.engine.sm.catalog
        lkey = plan.left.output_schema(catalog).projector([plan.left_key])
        rkey = plan.right.output_schema(catalog).projector([plan.right_key])
        pad = (None,) * len(plan.right.output_schema(catalog))
        left_in, right_in = packet.inputs

        packet.phase = "build"
        table: Dict = {}
        while True:
            batch = yield from right_in.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            for row in batch:
                table.setdefault(rkey(row), []).append(row)

        packet.phase = "probe"
        while True:
            batch = yield from left_in.get()
            if batch is None:
                break
            if batch is SEGMENT_BOUNDARY:
                continue
            yield from self.charge(packet, len(batch))
            pending: List[tuple] = []
            for lrow in batch:
                matches = table.get(lkey(lrow))
                if matches:
                    for rrow in matches:
                        pending.append(lrow + rrow)
                else:
                    pending.append(lrow + pad)
            if pending:
                yield from packet.output.put(pending)


class NLJoinEngine(MicroEngine):
    overlap_class = "step"

    def serve(self, packet: Packet) -> Generator:
        plan = packet.plan
        query = packet.query
        sm = self.engine.sm
        schema = plan.output_schema(sm.catalog)
        pred = plan.predicate.bind(schema)
        left_in, right_in = packet.inputs

        packet.phase = "materialize"
        rrows = yield from right_in.drain()
        right_schema = plan.right.output_schema(sm.catalog)
        mat = sm.create_temp_file(right_schema.row_width, label="nlj")
        try:
            yield from sm.write_run(mat, rrows)

            packet.phase = "join"
            while True:
                batch = yield from left_in.get()
                if batch is None:
                    break
                if batch is SEGMENT_BOUNDARY:
                    continue
                pending: List[tuple] = []
                for block in range(mat.num_pages):
                    page = yield from sm.read_temp_page(mat, block)
                    rows = page.rows()
                    yield from self.charge(packet, len(batch) * len(rows))
                    for lrow in batch:
                        for rrow in rows:
                            joined = lrow + rrow
                            if pred(joined):
                                pending.append(joined)
                if pending:
                    yield from packet.output.put(pending)
        finally:
            sm.drop_temp_file(mat)
