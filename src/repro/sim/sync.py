"""Synchronisation primitives in virtual time.

These are the building blocks for QPipe's producer/consumer plumbing:

* :class:`Channel` -- a bounded FIFO; the paper's "intermediate buffers"
  that regulate dataflow between micro-engines are built on it.
* :class:`Resource` -- a counted resource with a FIFO wait queue; the disk
  and the CPU cores are Resources.
* :class:`Gate` -- a broadcast open/close latch; used for the late-activation
  policy of scan packets (section 4.3.1).
* :class:`Semaphore`, :class:`Lock`, :class:`Condition` -- classic shapes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.errors import SimulationError
from repro.sim.kernel import Event, Simulator, fast_paths_enabled


def _abandoned(event: Event) -> bool:
    """True when nobody will ever resume from *event*.

    A process interrupted while suspended deregisters its callback but
    its wait-queue entry survives; granting such an entry would leak the
    resource (or deliver an item) to a dead process.
    """
    return event.triggered or event.abandoned


class ChannelClosed(SimulationError):
    """Raised by a drained ``get`` (or any ``put``) on a closed channel."""


class Channel:
    """A bounded FIFO queue of items, each with a size in abstract units.

    ``put`` returns an event that fires once the item has been accepted
    (possibly after blocking while the channel is full); ``get`` returns an
    event that fires with the next item.  Closing the channel lets pending
    and future ``get`` calls drain the remaining items, after which they
    fail with :exc:`ChannelClosed`.

    The channel exposes its instantaneous state (``empty`` / ``full`` and
    the identities of blocked producers and consumers) because the OSP
    deadlock detector (paper section 4.3.3) builds its waits-for graph
    from exactly this information.

    Fast paths (DESIGN.md section 10): when the peer side is not blocked
    -- a put with free space and no queued producers, a get with a ready
    item and no queued consumers -- the transfer completes immediately
    without entering the :meth:`_balance` matching loop.  The returned
    event is triggered with the same sequence number `_balance` would
    have assigned, so wakeup order is byte-identical either way.
    """

    __slots__ = (
        "sim", "capacity", "name", "_items", "_used", "_putters",
        "_getters", "_closed", "_fast", "total_put", "total_got",
    )

    def __init__(self, sim: Simulator, capacity: float, name: str = "chan"):
        if capacity <= 0:
            raise ValueError(f"channel capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()  # (item, size)
        self._used = 0.0
        self._putters: deque = deque()  # (event, item, size, owner)
        self._getters: deque = deque()  # (event, owner)
        self._closed = False
        self._fast = fast_paths_enabled()
        # Cumulative statistics for the harness.
        self.total_put = 0
        self.total_got = 0

    # -- state inspection (used by the deadlock detector) ---------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self._used >= self.capacity

    @property
    def level(self) -> float:
        return self._used

    def blocked_producers(self) -> list:
        return [owner for (_e, _i, _s, owner) in self._putters]

    def blocked_consumers(self) -> list:
        return [owner for (_e, owner) in self._getters]

    # -- operations ------------------------------------------------------
    def put(self, item: Any, size: float = 1.0, owner: Any = None) -> Event:
        """Enqueue *item*; the returned event fires once accepted."""
        event = Event(self.sim)
        event.describe = f"put on channel {self.name}"
        if self._closed:
            event.fail(ChannelClosed(f"put on closed channel {self.name}"))
            return event
        if size > self.capacity:
            event.fail(
                ValueError(
                    f"item size {size} exceeds capacity {self.capacity} "
                    f"of channel {self.name}"
                )
            )
            return event
        if (
            self._fast
            and not self._putters
            and self._used + size <= self.capacity
        ):
            # Fast path: space is free and nobody is queued ahead, so
            # `_balance` would accept this put first thing.  Succeed in the
            # same order it would have: accept the item, then serve any
            # blocked consumer the new item unblocks.
            self._items.append((item, size))
            self._used += size
            self.total_put += 1
            event.succeed()
            if self._getters:
                self._balance()
            return event
        self._putters.append((event, item, size, owner))
        self._balance()
        return event

    def get(self, owner: Any = None) -> Event:
        """Dequeue the next item; the returned event fires with it."""
        event = Event(self.sim)
        event.describe = f"get on channel {self.name}"
        if self._fast and self._items and not self._getters:
            # Fast path: an item is ready and no consumer is queued ahead,
            # so `_balance` would serve this get immediately.  Freed space
            # may in turn admit a blocked producer, in that order.
            item, size = self._items.popleft()
            self._used -= size
            self.total_got += 1
            event.succeed(item)
            if self._putters:
                self._balance()
            return event
        self._getters.append((event, owner))
        self._balance()
        return event

    def cancel_put(self, event: Event) -> bool:
        """Withdraw a still-pending put (impatient producers).

        Returns True when the put was withdrawn; False when it had
        already been accepted (too late to cancel).
        """
        if event.triggered:
            return False
        for entry in self._putters:
            if entry[0] is event:
                self._putters.remove(entry)
                return True
        return False

    def try_put(self, item: Any, size: float = 1.0) -> bool:
        """Non-blocking put; returns False instead of waiting."""
        if self._closed or self._used + size > self.capacity or self._putters:
            return False
        self._items.append((item, size))
        self._used += size
        self.total_put += 1
        if self._getters:
            self._balance()
        return True

    def close(self) -> None:
        """Close the channel; drains remaining items to future getters."""
        if self._closed:
            return
        self._closed = True
        # Producers still blocked lose: they can never deliver.
        while self._putters:
            event, _item, _size, _owner = self._putters.popleft()
            event.fail(ChannelClosed(f"channel {self.name} closed under put"))
        self._balance()

    def force_capacity(self, capacity: float) -> None:
        """Grow the capacity in place (deadlock-resolution materialisation).

        The deadlock detector resolves a pipeline deadlock by effectively
        materialising one buffer: here that means removing its back-pressure
        by granting it (near-)unbounded capacity.
        """
        if capacity < self.capacity:
            raise ValueError("capacity can only be grown, never shrunk")
        self.capacity = capacity
        self._balance()

    # -- internal ---------------------------------------------------------
    def _balance(self) -> None:
        """Match blocked producers/consumers against the buffer state."""
        progress = True
        while progress:
            progress = False
            # Move waiting puts into the buffer while space remains.
            while self._putters:
                event, item, size, _owner = self._putters[0]
                if _abandoned(event):
                    # Producer died while blocked: its item is withdrawn.
                    self._putters.popleft()
                    progress = True
                    continue
                if self._used + size > self.capacity:
                    break
                self._putters.popleft()
                self._items.append((item, size))
                self._used += size
                self.total_put += 1
                event.succeed()
                progress = True
            # Serve waiting gets from the buffer.
            while self._getters and self._items:
                event, _owner = self._getters.popleft()
                if _abandoned(event):
                    continue
                item, size = self._items.popleft()
                self._used -= size
                self.total_got += 1
                event.succeed(item)
                progress = True
        if self._closed and not self._items:
            while self._getters:
                event, _owner = self._getters.popleft()
                event.fail(ChannelClosed(f"channel {self.name} drained"))

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<Channel {self.name} {state} {self._used}/{self.capacity} "
            f"items={len(self._items)}>"
        )


class Resource:
    """A counted resource with a FIFO wait queue (e.g. disk, CPU cores).

    Usage inside a process::

        grant = yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(grant)
    """

    __slots__ = (
        "sim", "capacity", "name", "_in_use", "_waiters",
        "total_acquisitions", "busy_time", "_last_change",
    )

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque = deque()
        self.total_acquisitions = 0
        self.busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        now = self.sim.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def request(self) -> Event:
        """Acquire one unit; the returned event fires with a grant token."""
        event = Event(self.sim)
        event.describe = f"resource {self.name}"
        if self._in_use < self.capacity and not self._waiters:
            self._account()
            self._in_use += 1
            self.total_acquisitions += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self, _grant: Any = None) -> None:
        """Release one unit, waking the longest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name}")
        self._account()
        self._in_use -= 1
        while self._waiters:
            event = self._waiters.popleft()
            if _abandoned(event):  # waiter was interrupted and gave up
                continue
            self._in_use += 1
            self.total_acquisitions += 1
            event.succeed(self)
            break

    def utilization(self) -> float:
        """Time-averaged utilisation in [0, capacity]."""
        self._account()
        if self.sim.now == 0:
            return 0.0
        return self.busy_time / self.sim.now


class Gate:
    """A broadcast latch: processes wait until the gate is opened.

    Opening is sticky; a wait on an already-open gate completes
    immediately.  The scan micro-engine's *late activation* policy parks
    scan packets on a gate that opens when their output buffer is ready.
    """

    __slots__ = ("sim", "_open", "_waiters")

    def __init__(self, sim: Simulator, opened: bool = False):
        self.sim = sim
        self._open = opened
        self._waiters: list = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        event = Event(self.sim)
        event.describe = "gate"
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        if self._open:
            return
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    __slots__ = ("sim", "_value", "_waiters")

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise ValueError(f"semaphore value must be >= 0: {value}")
        self.sim = sim
        self._value = value
        self._waiters: deque = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        event = Event(self.sim)
        event.describe = f"{type(self).__name__.lower()}"
        if self._value > 0 and not self._waiters:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        while self._waiters:
            event = self._waiters.popleft()
            if _abandoned(event):
                continue
            event.succeed()
            return
        self._value += 1


class Lock(Semaphore):
    """A mutex (binary semaphore)."""

    __slots__ = ()

    def __init__(self, sim: Simulator):
        super().__init__(sim, value=1)


class Condition:
    """A broadcast condition variable (no associated lock; DES is serial).

    Because the simulation kernel executes one callback at a time there is
    no data race to guard; the condition is purely a wait/notify channel.
    """

    __slots__ = ("sim", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: list = []

    def wait(self) -> Event:
        event = Event(self.sim)
        event.describe = "condition"
        self._waiters.append(event)
        return event

    def notify_all(self, value: Any = None) -> int:
        """Wake every current waiter; returns the number woken."""
        waiters, self._waiters = self._waiters, []
        woken = 0
        for event in waiters:
            if not event.triggered:
                event.succeed(value)
                woken += 1
        return woken

    def notify(self, value: Any = None) -> bool:
        """Wake the longest-waiting process, if any."""
        while self._waiters:
            event = self._waiters.pop(0)
            if event.triggered:
                continue
            event.succeed(value)
            return True
        return False
