"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupted(SimulationError):
    """Raised inside a process when another process interrupts it.

    The OSP coordinator uses interrupts to terminate the children of a
    satellite packet once the packet attaches to a host (paper section 4.3,
    step 2 of Figure 6b).

    Attributes:
        cause: arbitrary object supplied by the interrupter, usually a
            short string explaining why the process was killed.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class StarvationError(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain blocked forever.

    If the event heap drains while processes are still suspended on events
    that can no longer fire, the simulation has deadlocked at the kernel
    level (distinct from the *pipeline* deadlocks of paper section 4.3.3,
    which the OSP deadlock detector resolves before they reach this point).
    """
