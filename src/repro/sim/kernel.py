"""The discrete-event simulation kernel: events, processes, and the clock.

The kernel follows the classic event-heap design.  A :class:`Simulator`
owns a priority queue of ``(time, priority, seq, callback)`` entries.
Processes are plain Python generators that ``yield`` awaitables
(:class:`Event` subclasses); the kernel resumes them with the event's value
via ``generator.send`` (or ``generator.throw`` on failure/interrupt).

Sub-coroutines compose with ``yield from``; the kernel never needs to know
about them because the outer generator transparently forwards their yields.

Wall-clock fast path (DESIGN.md section 10): the dominant scheduling
operation is the *zero-delay* entry -- every triggered event queues its
callback flush at the current time.  Those entries bypass the heap into a
FIFO *now-queue*: because the clock never moves backwards and sequence
numbers grow monotonically, the now-queue is already sorted by the
``(time, priority, seq)`` contract, so the run loop only has to compare
its front against the heap top to pop in exactly the order the pure heap
would have produced.  :func:`set_fast_paths` turns the optimisation off
globally; the differential tests assert byte-identical traces either way.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.tracer import NULL_TRACER
from repro.sim.errors import Interrupted, SimulationError, StarvationError

#: Events scheduled with URGENT run before NORMAL ones at the same timestamp.
#: Used for interrupts so a killed process never executes another step.
URGENT = 0
NORMAL = 1

PENDING = object()

#: Global switch for the wall-clock fast paths (the kernel's now-queue and
#: the channel's immediate-completion transfers).  Captured per instance at
#: construction time; the differential tests flip it to prove the fast and
#: slow paths produce byte-identical traces.
_FAST_PATHS = True


def set_fast_paths(enabled: bool) -> bool:
    """Enable/disable the wall-clock fast paths; returns the prior value.

    Only simulators and channels built *after* the call are affected, so
    flip it before constructing the system under test.
    """
    global _FAST_PATHS
    previous = _FAST_PATHS
    _FAST_PATHS = bool(enabled)
    return previous


def fast_paths_enabled() -> bool:
    """Whether newly built simulators/channels will use the fast paths."""
    return _FAST_PATHS


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once; all registered callbacks then run at the
    current simulation time.  Processes wait on an event simply by yielding
    it from their generator.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "abandoned", "describe")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok = True
        #: Set when the last waiter deregistered (it was interrupted):
        #: nothing will ever resume from this event, so wait queues must
        #: not grant it a resource or deliver it an item.
        self.abandoned = False
        #: Optional human-readable description of what waiting on this
        #: event means ("get on channel X"); starvation diagnostics use it.
        self.describe: Optional[str] = None

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (value available)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value read before the event fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters have it thrown in."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event fires.

        If the event has already been processed the callback is scheduled
        to run immediately (at the current simulation time) rather than
        being silently dropped.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            self.sim.schedule(0.0, callback, self)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)
            if not self.callbacks:
                self.abandoned = True

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay", "_payload", "_entry")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._payload = value if value is not None else delay
        # Bypass succeed(): schedule the callback flush directly at now+delay.
        self._entry = sim.schedule(delay, self._flush)

    def _flush(self) -> None:
        self._value = self._payload
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def remove_callback(self, callback) -> None:
        super().remove_callback(callback)
        if not self.callbacks:
            # Nobody is waiting any more (the waiter was interrupted):
            # drop the heap entry so the clock does not drain to the
            # orphaned deadline.
            self.sim.cancel(self._entry)


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping each *fired* event to its value (only the
    ones that have fired by the time the condition is processed).
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.triggered:
                self._on_fire(event)
                break
            event.add_callback(self._on_fire)

    def _on_fire(self, _event: Event) -> None:
        if self.triggered:
            return
        if not _event.ok:
            self.fail(_event.value)
            return
        self.succeed(
            {ev: ev.value for ev in self._events if ev.triggered and ev.ok}
        )


class AllOf(Event):
    """Fires when every one of several events has fired.

    The value is a dict mapping each event to its value.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed({})
            return
        for event in self._events:
            if event.triggered:
                self._on_fire(event)
            else:
                event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev.value for ev in self._events})


class Process(Event):
    """A running coroutine; itself an event that fires on termination.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event fires, the kernel resumes the generator with the event's value
    (or throws the exception when the event failed).  When the generator
    returns, the process event succeeds with the return value; when it
    raises, the process event fails with the exception (and the simulation
    aborts if nobody is waiting on it, so bugs do not pass silently).
    """

    __slots__ = ("name", "generator", "_target", "_interrupts")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator,
        name: str = "process",
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.name = name
        self.generator = generator
        self._target: Optional[Event] = None
        self._interrupts: list = []
        sim.schedule(0.0, self._resume, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :exc:`Interrupted` into the process as soon as possible.

        A process may be interrupted while suspended on any event; the
        event's callback is deregistered so the process does not later
        resume twice.  Interrupting a terminated process is a no-op, which
        lets the OSP coordinator kill operator subtrees without racing
        against their natural completion.
        """
        if self.triggered:
            return
        self.sim.tracer.proc("interrupt", self.name)
        self._interrupts.append(Interrupted(cause))
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
            self.sim.schedule(0.0, self._deliver_interrupt, priority=URGENT)

    def _deliver_interrupt(self) -> None:
        if self.triggered or not self._interrupts:
            return
        self._step(True, self._interrupts.pop(0))

    def _resume(self, event: Optional[Event]) -> None:
        if self.triggered:
            return
        self._target = None
        if self._interrupts:
            self._step(True, self._interrupts.pop(0))
        elif event is None:
            self._step(False, None)
        elif event._ok:
            self._step(False, event._value)
        else:
            self._step(True, event._value)

    def _step(self, throwing: bool, payload: Any) -> None:
        """Advance the generator one step (send or throw) and re-arm.

        Takes the resume mode and payload directly instead of a closure:
        this runs once per process step and is the kernel's single hottest
        call site, so it must not allocate.  ``sim.active_process`` names
        this process while its generator runs (attribute writes only), so
        code deep inside an ``execute()`` coroutine can learn which
        process is driving it without threading the handle through every
        call signature.
        """
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            if throwing:
                target = self.generator.throw(payload)
            else:
                target = self.generator.send(payload)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted:
            # An uncaught interrupt is a normal way for a process to die:
            # the process event succeeds with None rather than failing.
            self._ok = True
            self._value = None
            self.sim._schedule_event(self)
            return
        except BaseException as exc:
            self.fail(exc)
            self.sim._register_crash(self, exc)
            return
        finally:
            sim.active_process = prev
        if not isinstance(target, Event):
            self.fail(TypeError(f"{self.name} yielded non-event {target!r}"))
            self.sim._register_crash(self, self.value)
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("event belongs to a different simulator"))
            self.sim._register_crash(self, self.value)
            return
        self._target = target
        target.add_callback(self._resume)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The virtual clock and event loop.

    Typical use::

        sim = Simulator()

        def worker():
            yield sim.timeout(5.0)
            return "done"

        proc = sim.spawn(worker(), name="worker")
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    #: Compact the queues once at least this many cancelled entries are
    #: pending *and* they outnumber the live ones (see :meth:`cancel`).
    COMPACT_MIN_DEAD = 64

    def __init__(self):
        self._now = 0.0
        self._heap: list = []
        #: Zero-delay NORMAL entries in FIFO order.  Appended at the
        #: current time with monotonically growing sequence numbers, the
        #: queue is inherently sorted by ``(time, priority, seq)``; the
        #: run loop merges it against the heap top, so draining it first
        #: is exactly order-preserving (no heap round-trip per entry).
        self._now_queue: deque = deque()
        self._seq = 0
        self._dead = 0  # lazily-cancelled entries still queued
        self._use_now_queue = _FAST_PATHS
        self._crashes: list = []
        self.process_count = 0
        #: The process whose generator is currently being stepped (None
        #: between steps).  Lets coroutine-shaped engine entry points
        #: (e.g. PushEngine.execute) learn their own driving process so
        #: an abort can interrupt it.
        self.active_process = None
        #: Observability hook; replaced by :class:`repro.obs.Tracer` when
        #: tracing is on.  The null tracer's hooks are allocation-free.
        self.tracer = NULL_TRACER

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable,
        *args: Any,
        priority: int = NORMAL,
    ) -> list:
        """Run ``callback(*args)`` after *delay* virtual seconds.

        Returns an opaque entry token that :meth:`cancel` accepts.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        entry = [self._now + delay, priority, self._seq, callback, args, True]
        if delay == 0.0 and priority == NORMAL and self._use_now_queue:
            self._now_queue.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: list) -> None:
        """Cancel a scheduled callback (lazy deletion; no clock effect).

        Dead entries are counted and the queues compacted once they
        outnumber the live ones, so cancel-heavy workloads (chaos runs,
        impatient puts) cannot grow the heap without bound.
        """
        if entry[5]:
            entry[5] = False
            self._dead += 1
            if (
                self._dead >= self.COMPACT_MIN_DEAD
                and self._dead * 2 > len(self._heap) + len(self._now_queue)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop lazily-cancelled entries from both queues in place.

        Filtering preserves relative order, and re-heapifying a set of
        entries with unique ``(time, priority, seq)`` keys reproduces the
        exact pop order of the unfiltered heap, so compaction is
        invisible to virtual time.
        """
        self._heap = [e for e in self._heap if e[5]]
        heapq.heapify(self._heap)
        if self._now_queue:
            self._now_queue = deque(e for e in self._now_queue if e[5])
        self._dead = 0

    def _schedule_event(self, event: Event) -> None:
        """Queue an already-triggered event's callback flush."""
        self.schedule(0.0, self._flush_event, event)

    @staticmethod
    def _flush_event(event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

    def _register_crash(self, process: Process, exc: BaseException) -> None:
        self._crashes.append((process, exc))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "process") -> Process:
        """Start a new process running *generator*."""
        self.process_count += 1
        process = Process(self, generator, name=f"{name}#{self.process_count}")
        self.tracer.proc("spawn", process.name)
        return process

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* virtual seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Runs until the heap drains, or until virtual time reaches *until*
        (events at exactly ``until`` still execute).  If any process died
        with an unhandled exception the first such exception is re-raised
        so failures never pass silently.

        Returns the final virtual time.
        """
        heap = self._heap
        nowq = self._now_queue
        heappop = heapq.heappop
        while True:
            # Skip lazily-cancelled entries at both fronts.
            while heap and not heap[0][5]:
                heappop(heap)
                self._dead -= 1
            while nowq and not nowq[0][5]:
                nowq.popleft()
                self._dead -= 1
            # Pop whichever front is smaller by (time, priority, seq) --
            # the now-queue is FIFO-sorted by construction, so this
            # reproduces the pure heap's order exactly.
            if nowq and (not heap or nowq[0] < heap[0]):
                entry = nowq[0]
                from_nowq = True
            elif heap:
                entry = heap[0]
                from_nowq = False
            else:
                break
            if until is not None and entry[0] > until:
                self._now = until
                break
            if from_nowq:
                nowq.popleft()
            else:
                heappop(heap)
            # Mark executed so a late cancel() is a no-op for accounting.
            entry[5] = False
            self._now = entry[0]
            entry[3](*entry[4])
            if self._crashes:
                process, exc = self._crashes[0]
                raise SimulationError(
                    f"process {process.name} crashed at t={self._now:.3f}"
                ) from exc
            # _compact() may have replaced the deque/heap objects.
            heap = self._heap
            nowq = self._now_queue
        return self._now

    def run_until_done(self, watched: Iterable[Process]) -> float:
        """Run until every process in *watched* has terminated.

        Raises :exc:`StarvationError` when the event heap drains while a
        watched process is still alive (a kernel-level deadlock).
        """
        watched = list(watched)
        final = self.run()
        stuck = [p for p in watched if p.alive]
        if stuck:
            details = "; ".join(self._describe_blocked(p) for p in stuck)
            raise StarvationError(
                f"simulation drained at t={final:.3f} with "
                f"{len(stuck)} live process(es): {details}"
            )
        return final

    @staticmethod
    def _describe_blocked(process: Process) -> str:
        """Name a stuck process and what it is blocked on."""
        target = process._target
        if target is None:
            return f"{process.name} (not waiting on any event)"
        what = target.describe
        if what is None:
            if isinstance(target, Timeout):
                what = f"timeout({target.delay})"
            elif isinstance(target, Process):
                what = f"process {target.name}"
            else:
                what = type(target).__name__
        return f"{process.name} waiting on {what}"
