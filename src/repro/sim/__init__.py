"""Discrete-event simulation kernel.

This package is the substrate that replaces native OS threads from the
paper's C++ prototype.  Every QPipe worker thread, scanner thread, client,
and disk request becomes a cooperative :class:`~repro.sim.kernel.Process`
(a Python generator) scheduled on a virtual clock.  The simulation is fully
deterministic: given the same seed and workload, every run produces
identical virtual timings, which is what makes the paper's
interarrival-time sweeps reproducible bit-for-bit.

Public surface:

* :class:`Simulator` -- the event loop and virtual clock.
* :class:`Process` -- a running coroutine; also awaitable.
* :class:`Event`, :class:`Timeout` -- primitive awaitables.
* :exc:`Interrupted` -- raised inside a process that another process killed.
* Synchronisation: :class:`Channel`, :class:`Resource`, :class:`Gate`,
  :class:`Semaphore`, :class:`Lock`, :class:`Condition`.
"""

from repro.sim.errors import Interrupted, SimulationError, StarvationError
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
    fast_paths_enabled,
    set_fast_paths,
)
from repro.sim.sync import (
    Channel,
    ChannelClosed,
    Condition,
    Gate,
    Lock,
    Resource,
    Semaphore,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "Condition",
    "Event",
    "Gate",
    "Interrupted",
    "Lock",
    "Process",
    "Resource",
    "Semaphore",
    "SimulationError",
    "StarvationError",
    "Simulator",
    "Timeout",
    "fast_paths_enabled",
    "set_fast_paths",
]
