"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "BETWEEN", "IN", "LIKE", "JOIN", "LEFT", "INNER", "OUTER", "ON",
    "NULL", "IS", "COUNT", "SUM", "AVG", "MIN", "MAX", "DATE",
    "EXISTS", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*",
           "+", "-", "/", ".")


class SqlError(ValueError):
    """Lexing, parsing, or planning failure, with position context."""


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
    value: str
    pos: int

    def __repr__(self):
        return f"{self.kind}:{self.value!r}"


def tokenize(sql: str) -> List[Token]:
    """Split *sql* into tokens; raises SqlError on garbage."""
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql[i:i + 2] == "--":
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise SqlError(f"unterminated string at position {i}")
            tokens.append(Token("STRING", sql[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # Only a decimal point when followed by a digit
                    # (otherwise it is the qualification dot).
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word.lower(), i))
            i = j
            continue
        for symbol in SYMBOLS:
            if sql.startswith(symbol, i):
                tokens.append(Token("SYMBOL", symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
