"""Recursive-descent parser producing a small SQL AST."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sql.lexer import SqlError, Token, tokenize

AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass
class ColumnRef:
    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class Literal:
    value: object


@dataclass
class BinaryOp:
    op: str  # + - * / = <> < <= > >= AND OR
    left: object
    right: object


@dataclass
class UnaryOp:
    op: str  # NOT, -
    operand: object


@dataclass
class BetweenOp:
    expr: object
    lo: object
    hi: object
    negated: bool = False


@dataclass
class InOp:
    expr: object
    values: List[object]
    negated: bool = False


@dataclass
class LikeOp:
    expr: object
    pattern: str
    negated: bool = False


@dataclass
class IsNullOp:
    expr: object
    negated: bool = False


@dataclass
class ExistsOp:
    """EXISTS (SELECT ...) -- compiled to a semi/anti join."""

    subquery: "SelectStmt"


@dataclass
class FuncCall:
    func: str  # COUNT/SUM/AVG/MIN/MAX
    arg: object  # expression, or None for COUNT(*)


@dataclass
class SelectItem:
    expr: object  # expression / FuncCall / "*" sentinel
    alias: Optional[str] = None


@dataclass
class TableRef:
    table: str
    alias: str
    join_type: str = "inner"  # inner | left | cross
    condition: Optional[object] = None  # ON expression


@dataclass
class OrderItem:
    column: str
    descending: bool = False


@dataclass
class SelectStmt:
    items: List[SelectItem]
    tables: List[TableRef]
    where: Optional[object] = None
    group_by: List[ColumnRef] = field(default_factory=list)
    having: Optional[object] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False


STAR = "*"


@dataclass
class InsertStmt:
    table: str
    rows: List[Tuple]


@dataclass
class UpdateStmt:
    table: str
    assignments: List[Tuple[str, object]]  # (column, expression)
    where: Optional[object] = None


@dataclass
class DeleteStmt:
    table: str
    where: Optional[object] = None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            want = value or kind
            got = self.current
            raise SqlError(
                f"expected {want} at position {got.pos}, got {got.value!r}"
            )
        return self.advance()

    def keyword(self, word: str) -> bool:
        return self.accept("KEYWORD", word) is not None

    # -- DML grammar --------------------------------------------------------
    def parse_insert(self) -> "InsertStmt":
        self.expect("KEYWORD", "INSERT")
        self.expect("KEYWORD", "INTO")
        table = self.expect("IDENT").value
        self.expect("KEYWORD", "VALUES")
        rows: List[Tuple] = []
        while True:
            self.expect("SYMBOL", "(")
            values = [self._literal_value()]
            while self.accept("SYMBOL", ","):
                values.append(self._literal_value())
            self.expect("SYMBOL", ")")
            rows.append(tuple(values))
            if not self.accept("SYMBOL", ","):
                break
        self.expect("EOF")
        return InsertStmt(table, rows)

    def _literal_value(self):
        node = self._additive()
        if isinstance(node, Literal):
            return node.value
        if (
            isinstance(node, UnaryOp)
            and node.op == "-"
            and isinstance(node.operand, Literal)
        ):
            return -node.operand.value
        raise SqlError("VALUES entries must be literals")

    def parse_update(self) -> "UpdateStmt":
        self.expect("KEYWORD", "UPDATE")
        table = self.expect("IDENT").value
        self.expect("KEYWORD", "SET")
        assignments: List[Tuple[str, object]] = []
        while True:
            column = self.expect("IDENT").value
            self.expect("SYMBOL", "=")
            assignments.append((column, self._additive()))
            if not self.accept("SYMBOL", ","):
                break
        where = self._expression() if self.keyword("WHERE") else None
        self.expect("EOF")
        return UpdateStmt(table, assignments, where)

    def parse_delete(self) -> "DeleteStmt":
        self.expect("KEYWORD", "DELETE")
        self.expect("KEYWORD", "FROM")
        table = self.expect("IDENT").value
        where = self._expression() if self.keyword("WHERE") else None
        self.expect("EOF")
        return DeleteStmt(table, where)

    # -- grammar ------------------------------------------------------------
    def parse_select(self, nested: bool = False) -> SelectStmt:
        self.expect("KEYWORD", "SELECT")
        distinct = self.keyword("DISTINCT")
        items = self._select_items()
        self.expect("KEYWORD", "FROM")
        tables = self._table_refs()
        where = self._expression() if self.keyword("WHERE") else None
        group_by: List[ColumnRef] = []
        if self.keyword("GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = self._column_list()
        having = self._expression() if self.keyword("HAVING") else None
        order_by: List[OrderItem] = []
        if self.keyword("ORDER"):
            self.expect("KEYWORD", "BY")
            order_by = self._order_items()
        limit, offset = None, 0
        if self.keyword("LIMIT"):
            limit = int(self.expect("NUMBER").value)
            if self.keyword("OFFSET"):
                offset = int(self.expect("NUMBER").value)
        if not nested:
            self.expect("EOF")
        return SelectStmt(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _select_items(self) -> List[SelectItem]:
        items = []
        while True:
            if self.accept("SYMBOL", "*"):
                items.append(SelectItem(STAR))
            else:
                expr = self._expression()
                alias = None
                if self.keyword("AS"):
                    alias = self.expect("IDENT").value
                elif self.check("IDENT"):
                    alias = self.advance().value
                items.append(SelectItem(expr, alias))
            if not self.accept("SYMBOL", ","):
                return items

    def _table_refs(self) -> List[TableRef]:
        refs = [self._table_ref("inner", None)]
        while True:
            if self.accept("SYMBOL", ","):
                refs.append(self._table_ref("cross", None))
                continue
            join_type = None
            if self.keyword("LEFT"):
                self.keyword("OUTER")
                self.expect("KEYWORD", "JOIN")
                join_type = "left"
            elif self.keyword("INNER"):
                self.expect("KEYWORD", "JOIN")
                join_type = "inner"
            elif self.keyword("JOIN"):
                join_type = "inner"
            if join_type is None:
                return refs
            ref = self._table_ref(join_type, None)
            self.expect("KEYWORD", "ON")
            ref.condition = self._expression()
            refs.append(ref)

    def _table_ref(self, join_type: str, condition) -> TableRef:
        table = self.expect("IDENT").value
        alias = table
        if self.keyword("AS"):
            alias = self.expect("IDENT").value
        elif self.check("IDENT"):
            alias = self.advance().value
        return TableRef(table, alias, join_type, condition)

    def _column_list(self) -> List[ColumnRef]:
        cols = [self._column_ref()]
        while self.accept("SYMBOL", ","):
            cols.append(self._column_ref())
        return cols

    def _column_ref(self) -> ColumnRef:
        first = self.expect("IDENT").value
        if self.accept("SYMBOL", "."):
            return ColumnRef(self.expect("IDENT").value, qualifier=first)
        return ColumnRef(first)

    def _order_items(self) -> List[OrderItem]:
        items = []
        while True:
            name = self.expect("IDENT").value
            descending = False
            if self.keyword("DESC"):
                descending = True
            else:
                self.keyword("ASC")
            items.append(OrderItem(name, descending))
            if not self.accept("SYMBOL", ","):
                return items

    # -- expressions (precedence climbing) ----------------------------------
    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.keyword("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.keyword("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self):
        if self.keyword("EXISTS"):
            self.expect("SYMBOL", "(")
            subquery = self.parse_select(nested=True)
            self.expect("SYMBOL", ")")
            return ExistsOp(subquery)
        left = self._additive()
        negated = self.keyword("NOT")
        if self.keyword("BETWEEN"):
            lo = self._additive()
            self.expect("KEYWORD", "AND")
            hi = self._additive()
            return BetweenOp(left, lo, hi, negated)
        if self.keyword("IN"):
            self.expect("SYMBOL", "(")
            values = [self._additive()]
            while self.accept("SYMBOL", ","):
                values.append(self._additive())
            self.expect("SYMBOL", ")")
            return InOp(left, values, negated)
        if self.keyword("LIKE"):
            pattern = self.expect("STRING").value
            return LikeOp(left, pattern, negated)
        if self.keyword("IS"):
            negated = self.keyword("NOT")
            self.expect("KEYWORD", "NULL")
            return IsNullOp(left, negated)
        if negated:
            raise SqlError(
                f"dangling NOT at position {self.current.pos}"
            )
        for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self.accept("SYMBOL", op):
                canonical = {"<>": "!=", "=": "="}.get(op, op)
                return BinaryOp(canonical, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            if self.accept("SYMBOL", "+"):
                left = BinaryOp("+", left, self._multiplicative())
            elif self.accept("SYMBOL", "-"):
                left = BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            if self.accept("SYMBOL", "*"):
                left = BinaryOp("*", left, self._unary())
            elif self.accept("SYMBOL", "/"):
                left = BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self):
        if self.accept("SYMBOL", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "KEYWORD" and token.value == "NULL":
            self.advance()
            return Literal(None)
        if token.kind == "KEYWORD" and token.value == "DATE":
            # DATE 'YYYY-MM-DD' literal -> integer days since epoch.
            self.advance()
            text = self.expect("STRING").value
            try:
                import datetime

                year, month, day = (int(p) for p in text.split("-"))
                days = (
                    datetime.date(year, month, day) - datetime.date(1970, 1, 1)
                ).days
            except Exception as exc:
                raise SqlError(f"bad DATE literal {text!r}") from exc
            return Literal(days)
        if token.kind == "KEYWORD" and token.value in AGG_FUNCS:
            func = self.advance().value
            self.expect("SYMBOL", "(")
            if self.accept("SYMBOL", "*"):
                if func != "COUNT":
                    raise SqlError(f"{func}(*) is not valid")
                arg = None
            else:
                arg = self._expression()
            self.expect("SYMBOL", ")")
            return FuncCall(func, arg)
        if token.kind == "IDENT":
            return self._column_ref()
        if self.accept("SYMBOL", "("):
            inner = self._expression()
            self.expect("SYMBOL", ")")
            return inner
        raise SqlError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )


def parse(sql: str):
    """Parse one statement: SELECT, INSERT, UPDATE, or DELETE."""
    parser = _Parser(tokenize(sql))
    token = parser.current
    if token.kind == "KEYWORD" and token.value == "INSERT":
        return parser.parse_insert()
    if token.kind == "KEYWORD" and token.value == "UPDATE":
        return parser.parse_update()
    if token.kind == "KEYWORD" and token.value == "DELETE":
        return parser.parse_delete()
    return parser.parse_select()
