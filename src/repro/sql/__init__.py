"""A SQL front end for the query engines.

The paper's prototype consumes "precompiled query plans ... derived from
a commercial system's optimizer"; downstream users of this library get a
small SQL-92 subset instead of writing plan trees by hand:

    SELECT [DISTINCT] exprs | aggregates [AS name], ...
    FROM table [alias] [, table | [LEFT] JOIN table ON a = b]...
    [WHERE predicate]           -- AND/OR/NOT, comparisons, BETWEEN,
                                --   IN (...), LIKE, IS [NOT] NULL,
                                --   [NOT] EXISTS (SELECT ...)
    [GROUP BY cols] [HAVING predicate]
    [ORDER BY cols [ASC|DESC]]
    [LIMIT n [OFFSET m]]

    INSERT INTO table VALUES (...), ...
    UPDATE table SET col = expr, ... [WHERE predicate]
    DELETE FROM table [WHERE predicate]

`plan(sql, catalog)` compiles a statement to the same logical plan trees
the engines execute (`repro.relational.plans`), with single-table
predicate pushdown into the scans and equality conditions turned into
hash joins -- so SQL-submitted queries share work through OSP exactly
like hand-built plans do.
"""

from repro.sql.lexer import SqlError, tokenize
from repro.sql.parser import parse
from repro.sql.planner import plan

__all__ = ["SqlError", "parse", "plan", "run", "tokenize"]


def run(engine, sql: str):
    """Parse, plan, and run *sql* on either engine; returns the rows."""
    return engine.run_query(plan(sql, engine.sm.catalog))
