"""The SQL planner: AST -> logical plan trees.

A deliberately simple, predictable planner:

* single-table WHERE conjuncts are pushed into the table scans (so
  SQL-submitted scans carry their own predicates, like the qgen plans);
* JOIN ... ON equality conditions become hash joins (LEFT JOIN becomes
  the outer-join operator); comma-joins find their equality conjunct in
  the WHERE clause, falling back to a nested-loop join;
* GROUP BY / aggregates map to GroupBy or Aggregate, HAVING to a Filter
  above them, DISTINCT / ORDER BY / LIMIT to their operators;
* join order is exactly the FROM order (left-deep) -- what you write is
  what runs, like the paper's precompiled plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.expressions import (
    AggSpec,
    And,
    Arith,
    Between,
    Cmp,
    Col,
    Const,
    Expr,
    InList,
    Like,
    Not,
    Or,
)
from repro.relational.plans import (
    Aggregate,
    AntiJoin,
    Broadcast,
    DeleteRows,
    Distinct,
    Exchange,
    Filter,
    Gather,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    LeftOuterJoin,
    Limit,
    MergeJoin,
    NLJoin,
    PlanNode,
    Project,
    SemiJoin,
    Shuffle,
    Sort,
    TableScan,
    UpdateRows,
    walk_plan,
)
from repro.sql.lexer import SqlError
from repro.sql.parser import (
    STAR,
    BetweenOp,
    BinaryOp,
    ColumnRef,
    DeleteStmt,
    ExistsOp,
    FuncCall,
    InOp,
    InsertStmt,
    IsNullOp,
    LikeOp,
    Literal,
    SelectStmt,
    UnaryOp,
    UpdateStmt,
    parse,
)

_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/"}


class _Scope:
    """Column-name resolution over the FROM tables."""

    def __init__(self, catalog, tables):
        self.catalog = catalog
        self.tables = tables  # list of TableRef
        self.aliases = [t.alias for t in tables]
        if len(set(self.aliases)) != len(self.aliases):
            raise SqlError("duplicate table aliases in FROM")
        self.qualify = len(tables) > 1
        #: bare column name -> list of aliases defining it
        self.bare: Dict[str, List[str]] = {}
        #: alias -> set of its column names
        self.columns: Dict[str, Set[str]] = {}
        for ref in tables:
            schema = catalog.table_schema(ref.table)
            self.columns[ref.alias] = set(schema.names)
            for name in schema.names:
                self.bare.setdefault(name, []).append(ref.alias)

    def resolve(self, col: ColumnRef) -> Tuple[str, str]:
        """-> (alias, output column name in the join tree's schema)."""
        if col.qualifier is not None:
            alias = col.qualifier
            if alias not in self.columns:
                raise SqlError(f"unknown table alias {alias!r}")
            if col.name not in self.columns[alias]:
                raise SqlError(f"no column {col.name!r} in {alias!r}")
        else:
            owners = self.bare.get(col.name)
            if not owners:
                raise SqlError(f"unknown column {col.name!r}")
            if len(owners) > 1:
                raise SqlError(
                    f"ambiguous column {col.name!r} (in {owners}); qualify it"
                )
            alias = owners[0]
        name = f"{alias}.{col.name}" if self.qualify else col.name
        return alias, name


class _Translator:
    """AST expression -> bound Expr + the set of aliases it references."""

    def __init__(self, scope: _Scope, bare_for_alias: Optional[str] = None):
        self.scope = scope
        #: When set, columns resolve to BARE names and must belong to this
        #: alias (scan-level pushdown binds against the base schema).
        self.bare_for_alias = bare_for_alias
        self.aliases: Set[str] = set()

    def column(self, col: ColumnRef) -> Expr:
        alias, name = self.scope.resolve(col)
        self.aliases.add(alias)
        if self.bare_for_alias is not None:
            if alias != self.bare_for_alias:
                raise SqlError(
                    f"column {col.display()} does not belong to "
                    f"{self.bare_for_alias!r}"
                )
            return Col(col.name)
        return Col(name)

    def expr(self, node) -> Expr:
        if isinstance(node, Literal):
            return Const(node.value)
        if isinstance(node, ColumnRef):
            return self.column(node)
        if isinstance(node, BinaryOp):
            if node.op == "AND":
                return And(self.expr(node.left), self.expr(node.right))
            if node.op == "OR":
                return Or(self.expr(node.left), self.expr(node.right))
            left, right = self.expr(node.left), self.expr(node.right)
            if node.op in _CMP_OPS:
                op = "==" if node.op == "=" else node.op
                return Cmp(op, left, right)
            if node.op in _ARITH_OPS:
                return Arith(node.op, left, right)
            raise SqlError(f"unsupported operator {node.op!r}")
        if isinstance(node, UnaryOp):
            if node.op == "NOT":
                return Not(self.expr(node.operand))
            if node.op == "-":
                return Arith("-", Const(0), self.expr(node.operand))
            raise SqlError(f"unsupported unary {node.op!r}")
        if isinstance(node, BetweenOp):
            inner = self.expr(node.expr)
            lo, hi = self.expr(node.lo), self.expr(node.hi)
            if not isinstance(lo, Const) or not isinstance(hi, Const):
                raise SqlError("BETWEEN bounds must be literals")
            made = Between(inner, lo.value, hi.value)
            return Not(made) if node.negated else made
        if isinstance(node, InOp):
            inner = self.expr(node.expr)
            values = []
            for value in node.values:
                bound = self.expr(value)
                if not isinstance(bound, Const):
                    raise SqlError("IN list entries must be literals")
                values.append(bound.value)
            made = InList(inner, values)
            return Not(made) if node.negated else made
        if isinstance(node, LikeOp):
            made = Like(self.expr(node.expr), node.pattern)
            return Not(made) if node.negated else made
        if isinstance(node, IsNullOp):
            made = Cmp("==", self.expr(node.expr), Const(None))
            return Not(made) if node.negated else made
        if isinstance(node, FuncCall):
            raise SqlError(
                "aggregate functions are only allowed in SELECT and HAVING"
            )
        raise SqlError(f"cannot translate {type(node).__name__}")


def _conjuncts(node) -> List:
    if isinstance(node, BinaryOp) and node.op == "AND":
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _referenced_aliases(node, scope: _Scope) -> Set[str]:
    translator = _Translator(scope)
    translator.expr(node)
    return translator.aliases


def _equi_pair(node, scope: _Scope):
    """col_a = col_b across two different aliases, else None."""
    if not (isinstance(node, BinaryOp) and node.op == "="):
        return None
    if not (
        isinstance(node.left, ColumnRef) and isinstance(node.right, ColumnRef)
    ):
        return None
    left_alias, left_name = scope.resolve(node.left)
    right_alias, right_name = scope.resolve(node.right)
    if left_alias == right_alias:
        return None
    return (left_alias, left_name), (right_alias, right_name)


class _Planner:
    def __init__(self, catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    def plan(self, stmt: SelectStmt) -> PlanNode:
        scope = _Scope(self.catalog, stmt.tables)
        where = _conjuncts(stmt.where) if stmt.where is not None else []

        # EXISTS / NOT EXISTS conjuncts compile to semi/anti joins over
        # the join tree; peel them off before alias partitioning.
        semis: List[Tuple[bool, ExistsOp]] = []
        plain: List = []
        for conjunct in where:
            if isinstance(conjunct, ExistsOp):
                semis.append((False, conjunct))
            elif (
                isinstance(conjunct, UnaryOp)
                and conjunct.op == "NOT"
                and isinstance(conjunct.operand, ExistsOp)
            ):
                semis.append((True, conjunct.operand))
            else:
                plain.append(conjunct)

        # Partition WHERE conjuncts by the aliases they touch.
        pushdown: Dict[str, List] = {alias: [] for alias in scope.aliases}
        joinable: List = []
        residual: List = []
        for conjunct in plain:
            aliases = _referenced_aliases(conjunct, scope)
            if len(aliases) == 1:
                pushdown[next(iter(aliases))].append(conjunct)
            elif _equi_pair(conjunct, scope) is not None:
                joinable.append(conjunct)
            else:
                residual.append(conjunct)

        node = self._join_tree(stmt, scope, pushdown, joinable, residual)
        for negated, exists in semis:
            node = self._semi_join(node, scope, exists, negated)
        node = self._aggregate_or_project(stmt, scope, node)
        if stmt.distinct:
            node = Distinct(node)
        if stmt.order_by:
            node = self._sort(stmt, node)
        if stmt.limit is not None:
            node = Limit(node, stmt.limit, stmt.offset)
        return node

    # ------------------------------------------------------------------
    def _scan(self, ref, scope: _Scope, pushdown) -> PlanNode:
        predicate = None
        if pushdown[ref.alias]:
            translator = _Translator(scope, bare_for_alias=ref.alias)
            bound = [translator.expr(c) for c in pushdown[ref.alias]]
            predicate = bound[0] if len(bound) == 1 else And(*bound)
        alias = ref.alias if scope.qualify else None
        return TableScan(ref.table, predicate=predicate, alias=alias)

    def _join_tree(self, stmt, scope, pushdown, joinable, residual) -> PlanNode:
        refs = stmt.tables
        node = self._scan(refs[0], scope, pushdown)
        joined = {refs[0].alias}
        for ref in refs[1:]:
            right = self._scan(ref, scope, pushdown)
            condition = None
            extra_on: List = []
            if ref.condition is not None:
                for conjunct in _conjuncts(ref.condition):
                    pair = _equi_pair(conjunct, scope)
                    if pair is not None and condition is None:
                        condition = pair
                    else:
                        extra_on.append(conjunct)
            else:
                # Comma join: claim a WHERE equality linking this table
                # to something already joined.
                for conjunct in list(joinable):
                    pair = _equi_pair(conjunct, scope)
                    (la, _ln), (ra, _rn) = pair
                    if {la, ra} & joined and ref.alias in (la, ra):
                        condition = pair
                        joinable.remove(conjunct)
                        break
            if condition is not None:
                (la, ln), (ra, rn) = condition
                if ra == ref.alias:
                    left_key, right_key = ln, rn
                elif la == ref.alias:
                    left_key, right_key = rn, ln
                else:
                    raise SqlError(
                        f"ON condition of {ref.alias!r} references other tables"
                    )
                if ref.join_type == "left":
                    node = LeftOuterJoin(node, right, left_key, right_key)
                else:
                    node = HashJoin(node, right, left_key, right_key)
            else:
                if ref.join_type == "left":
                    raise SqlError("LEFT JOIN requires an equality ON clause")
                translator = _Translator(scope)
                node = NLJoin(node, right, predicate=Const(True))
            joined.add(ref.alias)
            for conjunct in extra_on:
                translator = _Translator(scope)
                node = Filter(node, translator.expr(conjunct))
        # Remaining join-shaped and residual conjuncts filter the tree.
        for conjunct in joinable + residual:
            translator = _Translator(scope)
            node = Filter(node, translator.expr(conjunct))
        return node

    # ------------------------------------------------------------------
    def _semi_join(self, node, outer_scope, exists: ExistsOp, negated: bool):
        """EXISTS (SELECT ... FROM inner WHERE inner.k = outer.k AND ...)
        -> SemiJoin/AntiJoin(outer_tree, inner_scan, outer.k, inner.k)."""
        sub = exists.subquery
        if len(sub.tables) != 1 or sub.group_by or sub.order_by or sub.limit:
            raise SqlError(
                "EXISTS subqueries must be a single-table SELECT with "
                "only a WHERE clause"
            )
        inner_ref = sub.tables[0]
        inner_schema = self.catalog.table_schema(inner_ref.table)
        inner_cols = set(inner_schema.names)

        correlation = None
        inner_preds: List = []
        for conjunct in (
            _conjuncts(sub.where) if sub.where is not None else []
        ):
            pair = self._correlation_pair(
                conjunct, inner_ref, inner_cols, outer_scope
            )
            if pair is not None and correlation is None:
                correlation = pair
                continue
            inner_preds.append(conjunct)

        if correlation is None:
            raise SqlError(
                "EXISTS subquery needs an equality correlating it to the "
                "outer query (inner.col = outer.col)"
            )
        inner_col, outer_name = correlation

        predicate = None
        if inner_preds:
            translator = _SubqueryTranslator(inner_ref, inner_cols)
            bound = [translator.expr(c) for c in inner_preds]
            predicate = bound[0] if len(bound) == 1 else And(*bound)
        inner_scan = TableScan(inner_ref.table, predicate=predicate)
        join_cls = AntiJoin if negated else SemiJoin
        return join_cls(node, inner_scan, outer_name, inner_col)

    def _correlation_pair(self, conjunct, inner_ref, inner_cols, outer_scope):
        """inner.col = outer.col (either side order) -> (inner, outer)."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (
            isinstance(left, ColumnRef) and isinstance(right, ColumnRef)
        ):
            return None

        def side(col: ColumnRef) -> Optional[str]:
            """The inner bare column name, or None if it is outer."""
            if col.qualifier == inner_ref.alias:
                return col.name
            if col.qualifier is None and col.name in inner_cols:
                return col.name
            return None

        left_inner, right_inner = side(left), side(right)
        if (left_inner is None) == (right_inner is None):
            return None  # both inner or both outer: not a correlation
        inner_col = left_inner if left_inner is not None else right_inner
        outer_col = right if left_inner is not None else left
        _alias, outer_name = outer_scope.resolve(outer_col)
        return inner_col, outer_name

    # ------------------------------------------------------------------
    def _aggregate_or_project(self, stmt, scope, node) -> PlanNode:
        has_aggs = any(
            isinstance(item.expr, FuncCall) for item in stmt.items
        )
        if not has_aggs and not stmt.group_by:
            if stmt.having is not None:
                raise SqlError("HAVING requires GROUP BY or aggregates")
            return self._project(stmt, scope, node)

        translator = _Translator(scope)
        group_names = [scope.resolve(c)[1] for c in stmt.group_by]

        # Collect aggregates from SELECT (and HAVING, as hidden specs).
        specs: List[AggSpec] = []
        spec_names: List[str] = []

        def spec_for(call: FuncCall, alias: Optional[str]) -> str:
            func = call.func.lower()
            expr = None if call.arg is None else translator.expr(call.arg)
            name = alias or f"{func}_{len(specs)}"
            spec = AggSpec(func, expr, name)
            signature = spec.signature()
            for existing in specs:
                if existing.signature() == signature:
                    return existing.name
            specs.append(spec)
            spec_names.append(name)
            return name

        output_names: List[str] = []
        for item in stmt.items:
            if item.expr is STAR:
                raise SqlError("SELECT * cannot be combined with GROUP BY")
            if isinstance(item.expr, FuncCall):
                output_names.append(spec_for(item.expr, item.alias))
            elif isinstance(item.expr, ColumnRef):
                _alias, name = scope.resolve(item.expr)
                if name not in group_names:
                    raise SqlError(
                        f"column {name!r} must appear in GROUP BY"
                    )
                output_names.append(item.alias or item.expr.name)
            else:
                raise SqlError(
                    "grouped SELECT items must be columns or aggregates"
                )

        having_expr = None
        if stmt.having is not None:
            having_expr = self._translate_having(
                stmt.having, scope, spec_for, group_names
            )

        if group_names:
            node = GroupBy(node, group_names, specs)
            # GroupBy emits group cols then agg cols under their own names.
            emitted = group_names + spec_names
        else:
            node = Aggregate(node, specs)
            emitted = spec_names
            if any(
                isinstance(item.expr, ColumnRef) for item in stmt.items
            ):
                raise SqlError("plain columns need a GROUP BY")

        if having_expr is not None:
            node = Filter(node, having_expr)

        # Reorder/rename to the SELECT list.
        source_names = []
        for item, out in zip(stmt.items, output_names):
            if isinstance(item.expr, FuncCall):
                source_names.append(out)  # spec name == output name
            else:
                _alias, name = scope.resolve(item.expr)
                source_names.append(name)
        if source_names != emitted or output_names != emitted:
            node = _rename_project(node, source_names, output_names)
        return node

    def _translate_having(self, having, scope, spec_for, group_names) -> Expr:
        """HAVING over group columns and aggregate calls."""

        def walk(node) -> Expr:
            if isinstance(node, FuncCall):
                return Col(spec_for(node, None))
            if isinstance(node, BinaryOp):
                if node.op == "AND":
                    return And(walk(node.left), walk(node.right))
                if node.op == "OR":
                    return Or(walk(node.left), walk(node.right))
                left, right = walk(node.left), walk(node.right)
                if node.op in _CMP_OPS:
                    return Cmp(
                        "==" if node.op == "=" else node.op, left, right
                    )
                return Arith(node.op, left, right)
            if isinstance(node, UnaryOp) and node.op == "NOT":
                return Not(walk(node.operand))
            if isinstance(node, ColumnRef):
                _alias, name = scope.resolve(node)
                if name not in group_names:
                    raise SqlError(
                        f"HAVING column {name!r} must be grouped"
                    )
                return Col(name)
            if isinstance(node, Literal):
                return Const(node.value)
            raise SqlError(
                f"unsupported HAVING construct {type(node).__name__}"
            )

        return walk(having)

    # ------------------------------------------------------------------
    def _project(self, stmt, scope, node) -> PlanNode:
        if len(stmt.items) == 1 and stmt.items[0].expr is STAR:
            return node
        names: List[str] = []
        exprs: List[Expr] = []
        simple = True
        for item in stmt.items:
            if item.expr is STAR:
                raise SqlError("* must be the only SELECT item")
            translator = _Translator(scope)
            bound = translator.expr(item.expr)
            if isinstance(item.expr, ColumnRef):
                _alias, name = scope.resolve(item.expr)
                names.append(item.alias or item.expr.name)
                exprs.append(bound)
                if item.alias and item.alias != name:
                    simple = False
            else:
                simple = False
                names.append(item.alias or f"expr_{len(names)}")
                exprs.append(bound)
        if simple:
            source = [
                scope.resolve(item.expr)[1] for item in stmt.items
            ]
            return Project(node, source)
        return Project(node, names, exprs=exprs)

    def _sort(self, stmt, node) -> PlanNode:
        schema = node.output_schema(self.catalog)
        keys, direction = [], None
        for item in stmt.order_by:
            name = item.column
            if name not in schema:
                # Allow qualified names emitted by multi-table scopes.
                matches = [n for n in schema.names if n.endswith("." + name)]
                if len(matches) == 1:
                    name = matches[0]
                else:
                    raise SqlError(f"ORDER BY column {item.column!r} unknown")
            if direction is None:
                direction = item.descending
            elif direction != item.descending:
                raise SqlError("mixed ASC/DESC is not supported")
            keys.append(name)
        return Sort(node, keys, descending=bool(direction))


class _SubqueryTranslator(_Translator):
    """Translates an EXISTS subquery's inner-only predicates to bare
    column references against the inner table's base schema."""

    def __init__(self, inner_ref, inner_cols):
        self.inner_ref = inner_ref
        self.inner_cols = inner_cols
        self.aliases = set()

    def column(self, col: ColumnRef) -> Expr:
        if col.qualifier not in (None, self.inner_ref.alias):
            raise SqlError(
                f"subquery predicate references outer table "
                f"{col.qualifier!r}; only one correlation equality is "
                "supported"
            )
        if col.name not in self.inner_cols:
            raise SqlError(
                f"no column {col.name!r} in {self.inner_ref.table!r}"
            )
        return Col(col.name)


def _rename_project(node, source_names, output_names) -> PlanNode:
    if list(source_names) == list(output_names):
        return Project(node, source_names)
    return Project(
        node, output_names, exprs=[Col(name) for name in source_names]
    )


def _plan_dml(stmt, catalog) -> PlanNode:
    schema = catalog.table_schema(stmt.table)
    if isinstance(stmt, InsertStmt):
        for row in stmt.rows:
            if len(row) != len(schema):
                raise SqlError(
                    f"INSERT arity {len(row)} != {len(schema)} columns "
                    f"of {stmt.table!r}"
                )
        return InsertRows(stmt.table, stmt.rows)

    predicate = None
    if stmt.where is not None:
        scope = _Scope(catalog, [_DmlRef(stmt.table)])
        translator = _Translator(scope, bare_for_alias=stmt.table)
        bound = [translator.expr(c) for c in _conjuncts(stmt.where)]
        predicate = bound[0] if len(bound) == 1 else And(*bound)

    if isinstance(stmt, DeleteStmt):
        return DeleteRows(stmt.table, predicate)

    # UPDATE: compile SET assignments into a row -> row function.
    scope = _Scope(catalog, [_DmlRef(stmt.table)])
    translator = _Translator(scope, bare_for_alias=stmt.table)
    assignments = []
    for column, expr in stmt.assignments:
        if column not in schema:
            raise SqlError(f"no column {column!r} in {stmt.table!r}")
        assignments.append((schema.index_of(column), translator.expr(expr)))

    def apply(row: tuple) -> tuple:
        out = list(row)
        for idx, bound_expr in assignments:
            out[idx] = bound_expr.bind(schema)(row)
        return tuple(out)

    return UpdateRows(stmt.table, predicate, apply)


class _DmlRef:
    """A minimal TableRef stand-in for single-table DML scopes."""

    def __init__(self, table: str):
        self.table = table
        self.alias = table
        self.join_type = "inner"
        self.condition = None


def plan(sql: str, catalog) -> PlanNode:
    """Compile one statement (SELECT/INSERT/UPDATE/DELETE) to a plan."""
    stmt = parse(sql)
    if isinstance(stmt, (InsertStmt, UpdateStmt, DeleteStmt)):
        return _plan_dml(stmt, catalog)
    return _Planner(catalog).plan(stmt)


# ---------------------------------------------------------------------------
# Pipeline cost rule (the push backend's planner hook)
# ---------------------------------------------------------------------------
#: Below this many estimated input rows a streaming chain is interpreted
#: instead of compiled: binding expressions into specialised closures has
#: a fixed per-query setup cost that tiny inputs never amortise
#: (Shaikhha et al.; Deshmukh et al.'s pipeline-vs-materialize rule).
FUSE_MIN_ROWS = 64

#: Fallback selectivity for predicate shapes the estimator cannot grade.
_DEFAULT_SELECTIVITY = 0.5


@dataclass(frozen=True)
class PipelineChoice:
    """One per-node decision from :func:`plan_pipelines`.

    ``fuse`` selects specialised bound closures over per-row expression
    interpretation for streaming stages; ``materialize`` predicts that a
    sort/hash-join input exceeds work memory and will take the external
    (spilling) path.  Both only steer host-side compilation -- runtime
    guards on actual row counts keep simulated behaviour identical when
    the estimate is wrong.
    """

    op: str
    input_rows: int
    fuse: bool
    materialize: bool
    reason: str


def _expr_selectivity(expr) -> float:
    """Deterministic textbook selectivity constants, no data peeking."""
    if isinstance(expr, Cmp):
        if expr.op == "==":
            return 0.1
        if expr.op == "!=":
            return 0.9
        return 1 / 3
    if isinstance(expr, And):
        sel = 1.0
        for term in expr.terms:
            sel *= _expr_selectivity(term)
        return sel
    if isinstance(expr, Or):
        return min(1.0, sum(_expr_selectivity(t) for t in expr.terms))
    if isinstance(expr, Not):
        return max(0.0, 1.0 - _expr_selectivity(expr.term))
    if isinstance(expr, Between):
        return 0.25
    if isinstance(expr, InList):
        return min(1.0, 0.1 * len(expr.values))
    if isinstance(expr, Like):
        return 0.25
    return _DEFAULT_SELECTIVITY


def estimate_rows(plan_node: PlanNode, catalog) -> int:
    """Estimated output cardinality of *plan_node*, from catalog row
    counts and the selectivity constants above."""
    node = plan_node
    if isinstance(node, TableScan):
        rows = catalog.table(node.table).num_rows
        if node.predicate is not None:
            rows *= _expr_selectivity(node.predicate)
        return max(0, int(rows))
    if isinstance(node, IndexScan):
        rows = catalog.table(node.table).num_rows
        if node.lo is not None and node.lo == node.hi:
            rows *= 0.1  # point lookup band
        else:
            rows *= 0.25  # range band
        if node.predicate is not None:
            rows *= _expr_selectivity(node.predicate)
        return max(0, int(rows))
    if isinstance(node, Filter):
        child = estimate_rows(node.child, catalog)
        return max(0, int(child * _expr_selectivity(node.predicate)))
    if isinstance(node, (Project, Sort)):
        return estimate_rows(node.child, catalog)
    if isinstance(node, Limit):
        return min(estimate_rows(node.child, catalog), node.count)
    if isinstance(node, Distinct):
        return max(0, estimate_rows(node.child, catalog) // 2)
    if isinstance(node, Aggregate):
        return 1
    if isinstance(node, GroupBy):
        return min(estimate_rows(node.child, catalog), 128)
    if isinstance(node, (HashJoin, MergeJoin, LeftOuterJoin)):
        # Foreign-key heuristic: an equi-join rarely multiplies.
        return max(
            estimate_rows(node.left, catalog),
            estimate_rows(node.right, catalog),
        )
    if isinstance(node, (SemiJoin, AntiJoin)):
        return max(0, estimate_rows(node.left, catalog) // 2)
    if isinstance(node, NLJoin):
        cross = estimate_rows(node.left, catalog) * estimate_rows(
            node.right, catalog
        )
        return max(0, int(cross * _expr_selectivity(node.predicate)))
    if isinstance(node, (InsertRows, UpdateRows, DeleteRows)):
        return 1
    return 0


def plan_pipelines(
    plan_node: PlanNode, catalog, work_mem_tuples: int = 50_000
) -> Dict[PlanNode, PipelineChoice]:
    """Decide fuse-vs-interpret and in-memory-vs-materialize per node.

    Returns a mapping from plan node to :class:`PipelineChoice`, keyed
    by node identity, covering every streaming stage (filter, project,
    limit, distinct) and every memory-sensitive breaker (sort, hash
    join).  The push compiler reads ``fuse``; ``materialize`` is the
    recorded spill prediction the docs and tests inspect.
    """
    choices: Dict[PlanNode, PipelineChoice] = {}

    def visit(node: PlanNode) -> None:
        if isinstance(node, (Filter, Project, Limit, Distinct)):
            input_rows = estimate_rows(node.child, catalog)
            fuse = input_rows >= FUSE_MIN_ROWS
            choices[node] = PipelineChoice(
                op=node.op_name,
                input_rows=input_rows,
                fuse=fuse,
                materialize=False,
                reason=(
                    f"~{input_rows} input rows "
                    f"{'>=' if fuse else '<'} {FUSE_MIN_ROWS}: "
                    f"{'fuse closures' if fuse else 'interpret'}"
                ),
            )
        elif isinstance(node, Sort):
            input_rows = estimate_rows(node.child, catalog)
            materialize = input_rows > work_mem_tuples
            choices[node] = PipelineChoice(
                op=node.op_name,
                input_rows=input_rows,
                fuse=True,
                materialize=materialize,
                reason=(
                    f"~{input_rows} rows vs {work_mem_tuples} work mem: "
                    f"{'external runs' if materialize else 'in-memory sort'}"
                ),
            )
        elif isinstance(node, HashJoin):
            input_rows = estimate_rows(node.left, catalog)
            materialize = input_rows > work_mem_tuples
            choices[node] = PipelineChoice(
                op=node.op_name,
                input_rows=input_rows,
                fuse=True,
                materialize=materialize,
                reason=(
                    f"~{input_rows} build rows vs {work_mem_tuples} "
                    f"work mem: "
                    f"{'grace partitions' if materialize else 'in-memory build'}"
                ),
            )
        for child in node.children:
            visit(child)

    visit(plan_node)
    return choices


# ---------------------------------------------------------------------------
# Normalized predicate forms + the subsumption lattice (repro.folding)
# ---------------------------------------------------------------------------
#
# ``predicate_implies(p, q)`` is a *sound, conservative* implication
# test: True only when every row satisfying ``p`` must satisfy ``q``
# (False means "could not prove it", never "disproved").  Conjunctions
# of single-column comparisons against constants, BETWEEN, and IN-lists
# normalize into per-column domains (an interval plus an optional finite
# value set); anything else falls back to exact signature matching,
# which keeps the test safe for arbitrary expressions.  The fold
# coordinator uses the lattice to decide whether a late query may ride
# an in-flight widened scan with only a residual filter.

_CMP_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


class _Domain:
    """The values one column may take under a conjunctive predicate."""

    __slots__ = ("lo", "lo_incl", "hi", "hi_incl", "allowed")

    def __init__(self):
        self.lo = None         # None: unbounded below
        self.lo_incl = True
        self.hi = None         # None: unbounded above
        self.hi_incl = True
        self.allowed = None    # frozenset of values, None: no finite bound

    # -- narrowing (intersection with one atom's constraint) ----------------
    def clamp_lo(self, value, inclusive: bool) -> None:
        if self.lo is None or value > self.lo or (
            value == self.lo and not inclusive
        ):
            self.lo = value
            self.lo_incl = inclusive

    def clamp_hi(self, value, inclusive: bool) -> None:
        if self.hi is None or value < self.hi or (
            value == self.hi and not inclusive
        ):
            self.hi = value
            self.hi_incl = inclusive

    def restrict(self, values) -> None:
        values = frozenset(values)
        self.allowed = (
            values if self.allowed is None else self.allowed & values
        )


def _pred_conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, And):
        out: List[Expr] = []
        for term in expr.terms:
            out.extend(_pred_conjuncts(term))
        return out
    return [expr]


def _atom_constraint(atom: Expr):
    """``(column, kind, payload)`` for a supported atomic predicate.

    ``kind`` is ``"lo"``/``"hi"`` (payload ``(value, inclusive)``),
    ``"between"`` (payload ``(lo, hi)``), or ``"in"`` (payload a value
    set).  None means the atom has no per-column normal form.
    """
    if isinstance(atom, Between) and isinstance(atom.expr, Col):
        return atom.expr.name, "between", (atom.lo, atom.hi)
    if isinstance(atom, InList) and isinstance(atom.expr, Col):
        return atom.expr.name, "in", atom.values
    if isinstance(atom, Cmp):
        op, left, right = atom.op, atom.left, atom.right
        if isinstance(left, Const) and isinstance(right, Col):
            op, left, right = _CMP_FLIP[op], right, left
        if not (isinstance(left, Col) and isinstance(right, Const)):
            return None
        value = right.value
        if op == "==":
            return left.name, "in", frozenset((value,))
        if op == "<":
            return left.name, "hi", (value, False)
        if op == "<=":
            return left.name, "hi", (value, True)
        if op == ">":
            return left.name, "lo", (value, False)
        if op == ">=":
            return left.name, "lo", (value, True)
    return None


def _apply_constraint(domain: _Domain, kind: str, payload) -> None:
    if kind == "lo":
        domain.clamp_lo(*payload)
    elif kind == "hi":
        domain.clamp_hi(*payload)
    elif kind == "between":
        domain.clamp_lo(payload[0], True)
        domain.clamp_hi(payload[1], True)
    else:
        domain.restrict(payload)


def normalize_predicate(expr: Expr) -> Optional[Dict[str, _Domain]]:
    """Per-column :class:`_Domain` map for a conjunctive predicate.

    Unsupported conjuncts are skipped, so the returned domains describe
    a *superset* of the rows the predicate accepts -- exactly the safe
    direction for the left-hand side of :func:`predicate_implies`.
    Returns None when a constraint is unrepresentable (the constants do
    not form a total order).
    """
    domains: Dict[str, _Domain] = {}
    for atom in _pred_conjuncts(expr):
        spec = _atom_constraint(atom)
        if spec is None:
            continue
        column, kind, payload = spec
        domain = domains.setdefault(column, _Domain())
        try:
            _apply_constraint(domain, kind, payload)
        except TypeError:
            return None
    return domains


def _value_in(domain: _Domain, value) -> bool:
    if domain.allowed is not None and value not in domain.allowed:
        return False
    if domain.lo is not None:
        if value < domain.lo or (value == domain.lo and not domain.lo_incl):
            return False
    if domain.hi is not None:
        if value > domain.hi or (value == domain.hi and not domain.hi_incl):
            return False
    return True


def _domain_within(inner: _Domain, outer: _Domain) -> bool:
    """Whether every value of *inner* lies inside *outer* (conservative)."""
    if inner.allowed is not None:
        return all(_value_in(outer, v) for v in inner.allowed)
    if outer.allowed is not None:
        return False  # an interval cannot prove finite-set membership
    if outer.lo is not None:
        if inner.lo is None or inner.lo < outer.lo:
            return False
        if inner.lo == outer.lo and inner.lo_incl and not outer.lo_incl:
            return False
    if outer.hi is not None:
        if inner.hi is None or inner.hi > outer.hi:
            return False
        if inner.hi == outer.hi and inner.hi_incl and not outer.hi_incl:
            return False
    return True


def _atom_implied(p_domains, p_signatures, q_atom: Expr) -> bool:
    if q_atom.signature() in p_signatures:
        return True  # syntactically present among p's conjuncts
    spec = _atom_constraint(q_atom)
    if spec is None:
        return False
    column, kind, payload = spec
    inner = p_domains.get(column)
    if inner is None:
        return False  # p does not constrain this column at all
    outer = _Domain()
    try:
        _apply_constraint(outer, kind, payload)
        return _domain_within(inner, outer)
    except TypeError:
        return False


def predicate_implies(p: Optional[Expr], q: Optional[Expr]) -> bool:
    """Sound implication: True only when ``p`` entails ``q``.

    None is the match-everything predicate.  A False answer means
    "could not prove" -- callers must treat it as "do not fold", never
    as a disproof.
    """
    if q is None:
        return True
    if p is None:
        return False
    if p.signature() == q.signature():
        return True
    if isinstance(p, Or):
        return all(predicate_implies(term, q) for term in p.terms)
    if isinstance(q, And):
        return all(predicate_implies(p, term) for term in q.terms)
    if isinstance(q, Or):
        return any(predicate_implies(p, term) for term in q.terms)
    p_domains = normalize_predicate(p)
    if p_domains is None:
        return False
    p_signatures = {atom.signature() for atom in _pred_conjuncts(p)}
    return _atom_implied(p_domains, p_signatures, q)


def fold_union(p: Optional[Expr], q: Optional[Expr]) -> Optional[Expr]:
    """The widened predicate covering both *p* and *q* (None: match all).

    Prefers the wider of the two when one subsumes the other, so a chain
    of nested predicates widens to a single term instead of a deep Or.
    """
    if p is None or q is None:
        return None
    if predicate_implies(q, p):
        return p
    if predicate_implies(p, q):
        return q
    if isinstance(p, Or):
        return Or(*p.terms, q)
    return Or(p, q)


def predicate_selectivity(expr: Optional[Expr]) -> float:
    """Estimated selectivity of a scan predicate (1.0 when absent)."""
    if expr is None:
        return 1.0
    return _expr_selectivity(expr)


# ---------------------------------------------------------------------------
# Distributed planning (sharded execution; DESIGN.md section 16)
# ---------------------------------------------------------------------------
#
# ``plan_distributed`` splits a logical plan into (a) one *fragment*
# that every shard runs against its local partitions, (b) an exchange
# edge moving the fragment outputs, and (c) a *suffix* of unary
# operators the coordinator applies to the assembled stream.  The split
# is chosen so the final rows are **byte-identical** to the single-host
# run: float accumulation is order-sensitive, so the analysis only
# declares a subtree shard-safe when concatenating its per-shard outputs
# in shard order reproduces the single-host row order (range partitions
# are contiguous slices of stored order, which is what makes this hold;
# hash partitions stay deterministic but permute row order, see
# repro.storage.partition).

#: Per-join "order-driving" side: which input's row order the join's
#: output order follows in the reference operators
#: (repro.baseline.operators).  The partitioned table must live on this
#: side; the other side must be replicated (every shard joins its slice
#: of the driver against the complete other relation).
_JOIN_DRIVER = {
    HashJoin: 1,        # build left, probe right: probe order drives
    NLJoin: 0,          # outer loop over the left input
    SemiJoin: 0,        # left rows filtered by the right key set
    AntiJoin: 0,
    LeftOuterJoin: 0,   # left rows probe the right build table
}

#: Unary operators with *global* semantics: correct only over the whole
#: input, so they peel off the fragment into the coordinator suffix.
_SUFFIX_OPS = (Aggregate, GroupBy, Sort, Limit, Distinct, Filter, Project)


class UnshardablePlan(ValueError):
    """No supported fragment/exchange/suffix split exists for the plan."""


@dataclass(frozen=True)
class DistributedPlan:
    """One distributed execution recipe (see :func:`plan_distributed`).

    ``strategy`` is one of:

    * ``local``     -- no partitioned tables: the coordinator's own
      engine runs the whole plan (every shard holds all referenced
      tables in full).
    * ``gather``    -- every shard runs ``fragment``; outputs stream to
      the coordinator strictly in shard order; ``suffix`` applies there.
    * ``shuffle``   -- every shard runs ``fragment``, hash-partitions
      its output rows on ``shuffle_key``, and ships each bucket to its
      owning shard; shards aggregate their buckets (``groupby``), the
      disjoint group rows gather to the coordinator, and ``suffix``
      applies above.
    * ``broadcast`` -- a partitioned-x-partitioned hash join:
      ``build_fragment`` runs per shard and broadcasts everywhere; each
      shard builds the complete hash table (per-source streams
      assembled in shard order = global build order) and probes its
      local ``fragment``; probe outputs gather in shard order.

    ``suffix`` is in bottom-up application order (innermost operator
    first).  ``tree`` is the annotated logical plan with explicit
    :class:`~repro.relational.plans.Exchange` nodes, used for
    signatures, tracing, and tests.
    """

    strategy: str
    fragment: PlanNode
    suffix: Tuple[PlanNode, ...] = ()
    build_fragment: Optional[PlanNode] = None
    join: Optional[PlanNode] = None
    groupby: Optional[GroupBy] = None
    shuffle_key: Optional[str] = None
    tree: Optional[PlanNode] = None

    def signature(self, catalog) -> str:
        tree = self.tree if self.tree is not None else self.fragment
        return f"dist:{self.strategy}:{tree.signature(catalog)}"


def partitioned_tables(plan: PlanNode, catalog) -> List[str]:
    """Names of referenced tables that are split across shards."""
    names: List[str] = []
    for node in walk_plan(plan):
        if isinstance(node, (TableScan, IndexScan)):
            info = catalog.table(node.table)
            part = info.partitioning
            if (
                part is not None
                and part.partitioned
                and node.table not in names
            ):
                names.append(node.table)
    return names


def _shard_safe(node: PlanNode, catalog) -> Tuple[bool, int]:
    """``(safe, npart)`` for running *node* once per shard.

    ``safe`` with ``npart >= 1`` means: concatenating the per-shard
    outputs in shard order reproduces the single-host output (rows and
    order).  ``safe`` with ``npart == 0`` means: every shard produces an
    *identical copy* of the single-host output (all inputs replicated).
    Both readings compose through the join rules below.
    """
    if isinstance(node, TableScan):
        part = catalog.table(node.table).partitioning
        return True, (1 if part is not None and part.partitioned else 0)
    if isinstance(node, IndexScan):
        part = catalog.table(node.table).partitioning
        if part is not None and part.partitioned:
            return False, 1  # per-shard index order != global key order
        return True, 0
    if isinstance(node, (Filter, Project)):
        return _shard_safe(node.child, catalog)  # row-wise: order-safe
    if isinstance(node, _SUFFIX_OPS):
        # Global semantics: only safe when the input is fully replicated
        # (each shard computes the same complete answer).
        safe, npart = _shard_safe(node.children[0], catalog)
        return (safe and npart == 0), npart
    driver = _JOIN_DRIVER.get(type(node))
    if driver is not None:
        dsafe, dn = _shard_safe(node.children[driver], catalog)
        osafe, on = _shard_safe(node.children[1 - driver], catalog)
        # The non-driver side must be complete on every shard; the
        # driver side's shard order then drives the output order.
        return (dsafe and osafe and on == 0), dn + on
    if isinstance(node, MergeJoin):
        # Key-interleaved output order: shard-order concatenation never
        # reproduces it unless both sides are replicated.
        lsafe, ln = _shard_safe(node.left, catalog)
        rsafe, rn = _shard_safe(node.right, catalog)
        return (lsafe and rsafe and ln == 0 and rn == 0), ln + rn
    if isinstance(node, Exchange):
        raise UnshardablePlan(
            f"plan already contains a {node.op_name} exchange node"
        )
    return False, 0


def _reapply(op: PlanNode, child: PlanNode) -> PlanNode:
    """Rebuild one suffix operator over a new child (tree annotation)."""
    if isinstance(op, Filter):
        return Filter(child, op.predicate)
    if isinstance(op, Project):
        return Project(child, op.names, exprs=op.exprs)
    if isinstance(op, Sort):
        return Sort(child, op.keys, descending=op.descending)
    if isinstance(op, Aggregate):
        return Aggregate(child, op.aggs)
    if isinstance(op, GroupBy):
        return GroupBy(child, op.group_cols, op.aggs)
    if isinstance(op, Limit):
        return Limit(child, op.count, op.offset)
    if isinstance(op, Distinct):
        return Distinct(child)
    raise UnshardablePlan(f"cannot re-root {type(op).__name__}")


def _annotate(base: PlanNode, suffix: Sequence[PlanNode]) -> PlanNode:
    tree = base
    for op in suffix:
        tree = _reapply(op, tree)
    return tree


def plan_distributed(
    plan: PlanNode, catalog, prefer_shuffle: bool = True
) -> DistributedPlan:
    """Split *plan* into fragment + exchange + coordinator suffix.

    Args:
        plan: the logical plan (single-host shape, no Exchange nodes).
        catalog: any shard's catalog -- schemas and partitioning
            metadata are identical on every shard.
        prefer_shuffle: re-partition GroupBy inputs by group key so the
            grouping work parallelizes across shards (all-to-all traffic
            instead of an N-to-1 gather of ungrouped rows).

    Raises:
        UnshardablePlan: when no supported split exists (e.g. a
        partitioned table on the non-driving side of a join, or a
        partitioned MergeJoin input).
    """
    if not partitioned_tables(plan, catalog):
        return DistributedPlan(strategy="local", fragment=plan, tree=plan)

    peeled: List[PlanNode] = []  # root-first
    node = plan
    while True:
        safe, npart = _shard_safe(node, catalog)
        if safe and npart >= 1:
            break
        if isinstance(node, _SUFFIX_OPS):
            peeled.append(node)
            node = node.children[0]
            continue
        if isinstance(node, HashJoin):
            lsafe, ln = _shard_safe(node.left, catalog)
            rsafe, rn = _shard_safe(node.right, catalog)
            if lsafe and rsafe and ln >= 1 and rn >= 1:
                suffix = tuple(reversed(peeled))
                tree = _annotate(
                    Gather(
                        HashJoin(
                            Broadcast(node.left),
                            node.right,
                            node.left_key,
                            node.right_key,
                        )
                    ),
                    suffix,
                )
                return DistributedPlan(
                    strategy="broadcast",
                    fragment=node.right,
                    suffix=suffix,
                    build_fragment=node.left,
                    join=node,
                    tree=tree,
                )
        raise UnshardablePlan(
            f"{type(node).__name__} cannot sit between a partitioned "
            f"fragment and the coordinator suffix "
            f"(signature: {node.signature(catalog)})"
        )

    suffix = tuple(reversed(peeled))  # bottom-up application order
    if (
        prefer_shuffle
        and suffix
        and isinstance(suffix[0], GroupBy)
    ):
        groupby = suffix[0]
        key = groupby.group_cols[0]
        tree = _annotate(
            Gather(_reapply(groupby, Shuffle(node, key))), suffix[1:]
        )
        return DistributedPlan(
            strategy="shuffle",
            fragment=node,
            suffix=suffix[1:],
            groupby=groupby,
            shuffle_key=key,
            tree=tree,
        )
    return DistributedPlan(
        strategy="gather",
        fragment=node,
        suffix=suffix,
        tree=_annotate(Gather(node), suffix),
    )
