"""The sharded query executor: gather / shuffle / broadcast, end to end.

:class:`ShardedExecutor` takes a logical plan, asks
:func:`repro.sql.planner.plan_distributed` for the fragment/exchange/
suffix split, and drives it across the shards:

* ``local``     -- the coordinator's engine runs the whole plan.
* ``gather``    -- every shard's engine runs the fragment against its
  local partitions concurrently (own disk, own buffer pool, own OSP
  sharing domain); outputs ship to the coordinator and are assembled
  strictly in shard order before the suffix applies.
* ``shuffle``   -- fragment outputs re-partition on the group key via
  the stable row hash; each shard aggregates its buckets (processing
  source shards in index order, so per-group accumulation order equals
  the single-host scan order); the disjoint group rows gather to the
  coordinator and merge by key.
* ``broadcast`` -- every shard broadcasts its slice of the build side,
  assembles the complete build table in shard order (= the single-host
  build order), joins its local probe partition, and gathers.

Determinism: all shard work shares one virtual clock, every assembly
point orders by shard index (never by arrival), and the merge-side
arithmetic mirrors the reference operators -- so the rows returned are
byte-identical to the single-host run over range partitions, at any
host count, on any engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.baseline.operators import ExecContext
from repro.relational.plans import PlanNode
from repro.results import QueryResult
from repro.shard.exchange import DEFAULT_BATCH_ROWS, ship
from repro.shard.merge import apply_suffix, group_rows, hash_join_rows
from repro.shard.topology import Shard, ShardedSystem
from repro.sql.planner import DistributedPlan, plan_distributed
from repro.storage.partition import stable_hash


@dataclass
class ShardStats:
    """What the executor moved and how it chose to move it."""

    queries: int = 0
    #: strategy name -> queries executed with it.
    strategies: Dict[str, int] = field(default_factory=dict)
    #: Rows and payload bytes that crossed an exchange edge (loopback
    #: included -- it is free on the wire but still exchanged).
    rows_shipped: int = 0
    bytes_shipped: int = 0

    def note(self, strategy: str) -> None:
        self.queries += 1
        self.strategies[strategy] = self.strategies.get(strategy, 0) + 1


class ShardedExecutor:
    """Distributed query driver over a :class:`ShardedSystem`."""

    def __init__(
        self,
        system: ShardedSystem,
        prefer_shuffle: bool = True,
        batch_rows: int = DEFAULT_BATCH_ROWS,
    ):
        self.system = system
        self.prefer_shuffle = prefer_shuffle
        self.batch_rows = batch_rows
        self.stats = ShardStats()
        self._next_query_id = 0

    @property
    def sim(self):
        return self.system.sim

    @property
    def catalog(self):
        return self.system.catalog

    def _ctx(self, shard: Shard, query_id: int) -> ExecContext:
        return ExecContext(
            sm=shard.sm,
            host=shard.host,
            work_mem_tuples=getattr(shard.engine, "work_mem_tuples", 50_000),
            owner=("dist", shard.index, query_id),
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _ship(
        self, src: Shard, dst: Shard, rows, width: int, query: int, kind: str
    ) -> Generator:
        nbytes = yield from ship(
            self.system.network,
            src.name,
            dst.name,
            rows,
            width,
            query,
            kind,
            batch_rows=self.batch_rows,
        )
        self.stats.rows_shipped += len(rows)
        self.stats.bytes_shipped += nbytes
        return nbytes

    def _run_fragment(
        self, shard: Shard, plan: PlanNode, query_id: int
    ) -> Generator:
        tracer = self.sim.tracer
        tracer.shard(
            "fragment_start", query=query_id, shard=shard.index,
            op=plan.op_name,
        )
        result = yield from shard.engine.execute(plan, query_id=query_id)
        tracer.shard(
            "fragment_done", query=query_id, shard=shard.index,
            rows=len(result.rows),
        )
        return result.rows

    def _spawn_all(self, generators, label: str, query_id: int) -> Generator:
        """Run one coroutine per shard concurrently; returns their
        values ordered by shard index (never by completion time)."""
        procs = [
            self.sim.spawn(gen, name=f"{label}-q{query_id}-s{i}")
            for i, gen in enumerate(generators)
        ]
        yield self.sim.all_of(procs)
        return [proc.value for proc in procs]

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def _gather(self, dist: DistributedPlan, query_id: int) -> Generator:
        coord = self.system.coordinator
        width = dist.fragment.output_schema(self.catalog).row_width
        tracer = self.sim.tracer
        tracer.exchange(
            "start", query=query_id, kind="gather", shards=len(self.system)
        )

        def worker(shard: Shard) -> Generator:
            rows = yield from self._run_fragment(
                shard, dist.fragment, query_id
            )
            yield from self._ship(
                shard, coord, rows, width, query_id, "gather"
            )
            return rows

        streams = yield from self._spawn_all(
            (worker(s) for s in self.system), "gather", query_id
        )
        rows = [row for stream in streams for row in stream]
        tracer.exchange(
            "done", query=query_id, kind="gather", rows=len(rows),
            bytes=len(rows) * width,
        )
        return rows

    def _shuffle(self, dist: DistributedPlan, query_id: int) -> Generator:
        shards = self.system.shards
        count = len(shards)
        schema = dist.fragment.output_schema(self.catalog)
        width = schema.row_width
        key_index = schema.index_of(dist.shuffle_key)
        tracer = self.sim.tracer
        tracer.exchange(
            "start", query=query_id, kind="shuffle", shards=count
        )
        #: inboxes[dst][src] -- bucket rows, assembled by *index* so the
        #: receiving shard replays sources in global order.
        inboxes: List[List[Optional[List[tuple]]]] = [
            [None] * count for _ in range(count)
        ]

        def scatter(shard: Shard) -> Generator:
            rows = yield from self._run_fragment(
                shard, dist.fragment, query_id
            )
            buckets: List[List[tuple]] = [[] for _ in range(count)]
            for row in rows:
                buckets[stable_hash(row[key_index]) % count].append(row)
            for dst in range(count):
                inboxes[dst][shard.index] = buckets[dst]
                yield from self._ship(
                    shard, shards[dst], buckets[dst], width, query_id,
                    "shuffle",
                )
            return len(rows)

        yield from self._spawn_all(
            (scatter(s) for s in shards), "shuffle", query_id
        )

        def reduce(shard: Shard) -> Generator:
            mine = [
                row
                for src in range(count)
                for row in inboxes[shard.index][src]
            ]
            grouped = yield from group_rows(
                dist.groupby, mine, schema, self._ctx(shard, query_id)
            )
            yield from self._ship(
                shard, self.system.coordinator, grouped,
                dist.groupby.output_schema(self.catalog).row_width,
                query_id, "shuffle",
            )
            return grouped

        streams = yield from self._spawn_all(
            (reduce(s) for s in shards), "reduce", query_id
        )
        # Bucket keys are disjoint and each stream is key-sorted, so a
        # key sort of the concatenation IS the single-host GroupBy's
        # sorted(groups.items()) emission order.
        rows = [row for stream in streams for row in stream]
        coord_ctx = self._ctx(self.system.coordinator, query_id)
        yield from coord_ctx.cpu(len(rows))
        nkeys = len(dist.groupby.group_cols)
        rows.sort(key=lambda row: row[:nkeys])
        tracer.exchange(
            "done", query=query_id, kind="shuffle", rows=len(rows),
            bytes=len(rows) * dist.groupby.output_schema(self.catalog).row_width,
        )
        return rows

    def _broadcast(self, dist: DistributedPlan, query_id: int) -> Generator:
        shards = self.system.shards
        count = len(shards)
        join = dist.join
        lschema = dist.build_fragment.output_schema(self.catalog)
        rschema = dist.fragment.output_schema(self.catalog)
        out_width = join.output_schema(self.catalog).row_width
        tracer = self.sim.tracer
        tracer.exchange(
            "start", query=query_id, kind="broadcast", shards=count
        )
        build_slices: List[Optional[List[tuple]]] = [None] * count

        def broadcast_build(shard: Shard) -> Generator:
            rows = yield from self._run_fragment(
                shard, dist.build_fragment, query_id
            )
            build_slices[shard.index] = rows
            for dst in shards:
                yield from self._ship(
                    shard, dst, rows, lschema.row_width, query_id,
                    "broadcast",
                )
            return len(rows)

        yield from self._spawn_all(
            (broadcast_build(s) for s in shards), "bcast", query_id
        )
        # Every shard assembles the complete build side in shard order
        # == the single-host left-input order (range slices concatenate
        # back to the loaded sequence).
        build_rows = [
            row for part in build_slices for row in part
        ]

        def probe(shard: Shard) -> Generator:
            rows = yield from self._run_fragment(
                shard, dist.fragment, query_id
            )
            joined = yield from hash_join_rows(
                join, build_rows, rows, lschema, rschema,
                self._ctx(shard, query_id),
            )
            yield from self._ship(
                shard, self.system.coordinator, joined, out_width,
                query_id, "gather",
            )
            return joined

        streams = yield from self._spawn_all(
            (probe(s) for s in shards), "probe", query_id
        )
        rows = [row for stream in streams for row in stream]
        tracer.exchange(
            "done", query=query_id, kind="broadcast", rows=len(rows),
            bytes=len(rows) * out_width,
        )
        return rows

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(
        self, plan: PlanNode, query_id: Optional[int] = None
    ) -> Generator:
        """Coroutine: run *plan* across the shards; returns a
        :class:`~repro.results.QueryResult` whose rows are
        byte-identical to the single-host run (range partitions)."""
        if query_id is None:
            self._next_query_id += 1
            query_id = self._next_query_id
        submitted = self.sim.now
        dist = plan_distributed(
            plan, self.catalog, prefer_shuffle=self.prefer_shuffle
        )
        tracer = self.sim.tracer
        tracer.shard(
            "query_start", query=query_id, strategy=dist.strategy,
            shards=len(self.system),
        )
        self.stats.note(dist.strategy)
        if dist.strategy == "local":
            result = yield from self.system.coordinator.engine.execute(
                plan, query_id=query_id
            )
            rows = result.rows
        else:
            if dist.strategy == "gather":
                rows = yield from self._gather(dist, query_id)
            elif dist.strategy == "shuffle":
                rows = yield from self._shuffle(dist, query_id)
            elif dist.strategy == "broadcast":
                rows = yield from self._broadcast(dist, query_id)
            else:  # pragma: no cover - planner emits only the above
                raise ValueError(f"unknown strategy {dist.strategy!r}")
            rows = yield from apply_suffix(
                dist.suffix, rows, self.catalog,
                self._ctx(self.system.coordinator, query_id),
            )
        tracer.shard(
            "query_done", query=query_id, strategy=dist.strategy,
            rows=len(rows),
        )
        return QueryResult(
            query_id=query_id,
            rows=rows,
            submitted_at=submitted,
            started_at=submitted,
            finished_at=self.sim.now,
        )

    def run_query(self, plan: PlanNode) -> List[tuple]:
        """Convenience: spawn, run the clock, return the rows (tests)."""
        proc = self.sim.spawn(self.execute(plan), name="dist-query")
        self.sim.run()
        return proc.value.rows
