"""Row shipment over the network model: the exchange data plane.

An exchange edge moves row batches between shards through
:meth:`repro.hw.net.Network.transfer`.  Payload size is
``rows x row_width`` (the relational row-width estimate the storage
layer also uses for paging); the network layer then rounds each
message up to whole frames, exactly like the disk charges whole
blocks.  Loopback shipments (a shard sending to itself -- every gather
includes one, and 1/N of all shuffle traffic) cost nothing, so a
1-host "sharded" run pays no network tax at all.

Batches are framed at ``batch_rows`` rows so large streams occupy the
NICs as a sequence of bounded messages rather than one giant transfer
-- concurrent exchanges interleave at batch granularity, which is what
makes the fabric's FIFO queues model contention at all.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.hw.net import Network

#: Rows per network message.  At the Wisconsin row width (~200 bytes)
#: this is ~25 frames per message -- big enough to amortise latency,
#: small enough that concurrent streams share the NICs fairly.
DEFAULT_BATCH_ROWS = 1024


def ship(
    network: Network,
    src: str,
    dst: str,
    rows: Sequence[tuple],
    row_width: int,
    query: int,
    kind: str,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Generator:
    """Coroutine: ship *rows* from *src* to *dst* in framed batches.

    Returns the total payload bytes (before frame rounding).  Empty
    streams send nothing -- the receiver learns completion from the
    executor's barrier, not from an end-of-stream message, so there is
    no tail exchange to pay for.
    """
    total = 0
    width = max(1, row_width)
    for start in range(0, len(rows), batch_rows):
        chunk = rows[start:start + batch_rows]
        nbytes = len(chunk) * width
        network.sim.tracer.exchange(
            "batch",
            query=query,
            kind=kind,
            src=src,
            dst=dst,
            rows=len(chunk),
            bytes=nbytes,
        )
        yield from network.transfer(src, dst, nbytes, tag=kind)
        total += nbytes
    return total
