"""The sharded deployment: hosts, storage managers, engines, tables.

A :class:`ShardedSystem` wraps a :class:`repro.hw.host.Cluster` (shared
virtual clock, per-host disks, one network fabric) and gives every host
its own storage manager and query engine.  Tables load through
:meth:`ShardedSystem.create_table`, which splits the rows with
:func:`repro.storage.partition.partition_rows` and records each slice's
:class:`~repro.storage.partition.PartitionInfo` in that shard's
catalog -- the metadata :func:`repro.sql.planner.plan_distributed`
plans against.

Range partitions are contiguous slices of the loaded row order, which
is what makes shard-order gathers reproduce the single-host row order
byte for byte (see DESIGN.md section 16.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.hw.host import Cluster, Host
from repro.relational.schema import Schema
from repro.storage.manager import StorageManager
from repro.storage.partition import PartitionInfo, partition_rows


class Shard:
    """One host's slice of the system: machine, storage, engine."""

    def __init__(self, index: int, host: Host, sm: StorageManager, engine):
        self.index = index
        self.host = host
        self.sm = sm
        self.engine = engine

    @property
    def name(self) -> str:
        return self.host.name

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Shard({self.index}, {self.name!r})"


class ShardedSystem:
    """N shards over one cluster, with shard 0 as the coordinator.

    Args:
        cluster: the multi-host hardware model (shared Simulator).
        make_sm: ``host -> StorageManager`` factory, called once per
            host (buffer pool sizing, policy, scan rings).
        make_engine: ``sm -> engine`` factory; any object with the
            common ``execute(plan, query_id=...)`` coroutine contract
            (iterator, packet, or pushed engine).
    """

    def __init__(
        self,
        cluster: Cluster,
        make_sm: Callable[[Host], StorageManager],
        make_engine: Callable[[StorageManager], object],
    ):
        self.cluster = cluster
        self.shards: List[Shard] = []
        for i, host in enumerate(cluster.hosts):
            sm = make_sm(host)
            self.shards.append(Shard(i, host, sm, make_engine(sm)))

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def network(self):
        return self.cluster.network

    @property
    def coordinator(self) -> Shard:
        return self.shards[0]

    @property
    def catalog(self):
        """The coordinator's catalog (metadata is identical per shard)."""
        return self.coordinator.sm.catalog

    def create_table(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[tuple],
        scheme: str = "range",
        column: Optional[str] = None,
        clustered_on: Optional[List[str]] = None,
    ) -> None:
        """Create *name* on every shard and load its slice of *rows*.

        ``scheme`` is ``range`` (contiguous slices of the given row
        order -- the byte-identity-preserving default), ``hash``
        (bucketed on *column* via the stable row hash), or
        ``replicated`` (every shard loads all rows).
        """
        count = len(self.shards)
        slices = partition_rows(rows, schema, scheme, count, column=column)
        for shard, part in zip(self.shards, slices):
            shard.sm.create_table(
                name,
                schema,
                clustered_on=clustered_on,
                partitioning=PartitionInfo(
                    scheme, count, shard.index, column=column
                ),
            )
            shard.sm.load_table(name, part)

    def create_replicated_table(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[tuple],
        clustered_on: Optional[List[str]] = None,
    ) -> None:
        self.create_table(
            name, schema, rows, scheme="replicated", clustered_on=clustered_on
        )
