"""Coordinator-side evaluation of the suffix operators.

The distributed planner peels global operators (aggregation, sort,
limit...) off the per-shard fragment; after the gather, someone has to
apply them to the assembled stream.  Routing the stream back through a
full engine would work but double-charges scans; instead this module
applies each suffix operator directly, using the *same arithmetic* as
the reference operators in :mod:`repro.baseline.operators`:

* aggregates accumulate through the same ``AggState`` objects in input
  order (float accumulation is order-sensitive -- this is where byte
  identity is won or lost);
* GroupBy emits ``sorted(groups.items())``;
* hash joins build left-to-right with ``setdefault`` and emit in probe
  order (``lrow + rrow``), matching the in-memory join path;
* every operator charges the host CPU with the reference operator's
  tuple counts and factors.

All evaluators are coroutines bound to an
:class:`~repro.baseline.operators.ExecContext`, so the virtual-time
cost lands on whichever host runs the merge (the coordinator for
suffixes, the owning shard for shuffle-stage grouping).
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Sequence

from repro.baseline.operators import ExecContext
from repro.relational.expressions import bind_aggregates
from repro.relational.plans import (
    Aggregate,
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Sort,
)
from repro.relational.schema import Schema


def group_rows(
    plan: GroupBy,
    rows: Sequence[tuple],
    schema: Schema,
    ctx: ExecContext,
) -> Generator:
    """Coroutine: the reference GroupBy over an in-memory row stream."""
    specs, fns = bind_aggregates(plan.aggs, schema)
    group = schema.projector(plan.group_cols)
    yield from ctx.cpu(len(rows) * max(1, len(specs)))
    groups: Dict[tuple, list] = {}
    for row in rows:
        key = group(row)
        states = groups.get(key)
        if states is None:
            states = [spec.make_state() for spec in specs]
            groups[key] = states
        for state, fn in zip(states, fns):
            state.add(fn(row))
    return [
        key + tuple(state.result() for state in states)
        for key, states in sorted(groups.items())
    ]


def hash_join_rows(
    plan: HashJoin,
    lrows: Sequence[tuple],
    rrows: Sequence[tuple],
    lschema: Schema,
    rschema: Schema,
    ctx: ExecContext,
) -> Generator:
    """Coroutine: the reference in-memory hash join over row streams.

    Build order is *lrows* order, probe order is *rrows* order --
    callers must assemble both in global (shard-order) sequence for the
    output to match the single-host join byte for byte.
    """
    lkey = lschema.projector([plan.left_key])
    rkey = rschema.projector([plan.right_key])
    yield from ctx.cpu(len(lrows))
    table: Dict[tuple, List[tuple]] = {}
    for row in lrows:
        table.setdefault(lkey(row), []).append(row)
    yield from ctx.cpu(len(rrows))
    out: List[tuple] = []
    for rrow in rrows:
        for lrow in table.get(rkey(rrow), ()):
            out.append(lrow + rrow)
    return out


def _apply_one(
    op: PlanNode, rows: List[tuple], catalog, ctx: ExecContext
) -> Generator:
    schema = op.children[0].output_schema(catalog)
    if isinstance(op, Filter):
        yield from ctx.cpu(len(rows))
        pred = op.predicate.bind(schema)
        return [row for row in rows if pred(row)]
    if isinstance(op, Project):
        yield from ctx.cpu(len(rows))
        if op.exprs is None:
            fn = schema.projector(op.names)
        else:
            bound = [e.bind(schema) for e in op.exprs]
            fn = lambda row: tuple(f(row) for f in bound)  # noqa: E731
        return [fn(row) for row in rows]
    if isinstance(op, Sort):
        n = len(rows)
        comparisons = n * max(1.0, math.log2(max(2, n)))
        yield from ctx.cpu(
            int(comparisons), factor=ctx.host.config.sort_cpu_factor
        )
        out = list(rows)
        out.sort(key=schema.projector(op.keys), reverse=op.descending)
        return out
    if isinstance(op, Aggregate):
        specs, fns = bind_aggregates(op.aggs, schema)
        states = [spec.make_state() for spec in specs]
        yield from ctx.cpu(len(rows) * len(states))
        for row in rows:
            for state, fn in zip(states, fns):
                state.add(fn(row))
        return [tuple(state.result() for state in states)]
    if isinstance(op, GroupBy):
        out = yield from group_rows(op, rows, schema, ctx)
        return out
    if isinstance(op, Limit):
        return list(rows[op.offset:op.offset + op.count])
    if isinstance(op, Distinct):
        yield from ctx.cpu(len(rows))
        seen = set()
        out = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out
    raise TypeError(f"no merge evaluator for {type(op).__name__}")


def apply_suffix(
    suffix: Sequence[PlanNode],
    rows: List[tuple],
    catalog,
    ctx: ExecContext,
) -> Generator:
    """Coroutine: apply the peeled operators (bottom-up order) to the
    assembled stream, charging *ctx*'s host for the work."""
    for op in suffix:
        rows = yield from _apply_one(op, rows, catalog, ctx)
    return rows
