"""Sharded multi-host execution (DESIGN.md section 16).

QPipe's paper is a single-node design; this package scales it out the
classic shared-nothing way: N hosts (each with its own disk, buffer
pool, and engine) joined by a modeled network fabric
(:mod:`repro.hw.net`), with exchange operators moving rows between
them.  The split of a plan into per-shard fragments, exchange edges,
and a coordinator suffix is computed by
:func:`repro.sql.planner.plan_distributed`; everything here executes
that recipe deterministically:

* :mod:`repro.shard.topology` -- :class:`ShardedSystem`: the hosts,
  their storage managers and engines, and partitioned table loading.
* :mod:`repro.shard.exchange` -- framed row shipment over the network
  model (the ``exchange.*`` trace events).
* :mod:`repro.shard.merge` -- the coordinator-side evaluator that
  applies the suffix operators with exactly the reference operators'
  arithmetic, so sharded results are byte-identical to one host.
* :mod:`repro.shard.executor` -- :class:`ShardedExecutor`: drives the
  gather / shuffle / broadcast strategies end to end.
"""

from repro.shard.exchange import ship
from repro.shard.executor import ShardedExecutor, ShardStats
from repro.shard.merge import apply_suffix, group_rows, hash_join_rows
from repro.shard.topology import Shard, ShardedSystem

__all__ = [
    "Shard",
    "ShardStats",
    "ShardedExecutor",
    "ShardedSystem",
    "apply_suffix",
    "group_rows",
    "hash_join_rows",
    "ship",
]
