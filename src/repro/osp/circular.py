"""Circular scans: shared table scans with per-consumer termination points.

Section 4.3.1: "we maintain a dedicated scan thread that is responsible
for scanning a particular relation. ... The scanner thread essentially
plays the role of the host packet and the newly arrived packet becomes a
satellite. ... When the scanner thread reaches the end-of-file for the
first time, it will keep scanning the relation from the beginning, to
serve the unread pages."

Each consumer attaches at the scanner's current position and detaches
after receiving exactly ``num_pages`` consecutive pages -- a full pass
over the relation regardless of where it joined.  Each consumer applies
its *own* predicate and projection, which is why scans with entirely
different selection predicates still share all their page reads (the
Figure 12 workload).

Late activation: a scan packet only attaches once its output buffer has
been flagged ready by its consumer, so queries cannot delay each other
by holding the shared scan back before they are ready to read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.engine.packets import Packet
from repro.faults.errors import FaultError
from repro.sim import ChannelClosed, Event, Interrupted
from repro.storage.locks import LockMode
from repro.storage.streams import next_stream


@dataclass
class ScanConsumer:
    """One query's attachment to a circular scan."""

    packet: Packet
    filter_fn: Optional[Callable]
    project_fn: Optional[Callable]
    pages_remaining: int
    done: Event
    delivered_pages: int = 0
    #: The scan's ``visit_seq`` at this consumer's last delivered page.
    #: A restarted scanner re-reads the page it died on; consumers that
    #: already received it under the same visit are skipped, keeping
    #: delivery exactly-once across crashes.
    last_visit: int = -1
    #: Buffer-pool stream identity for this consumer's private catch-up
    #: scan (process-unique, never a recycled object id).
    stream: Any = field(default_factory=next_stream)
    #: Post-filter row count of the last page delivered to this consumer
    #: (what lineage records as the page's contribution to the output).
    last_out: int = 0


@dataclass
class CircularScan:
    """The scanner-thread state for one table."""

    table: str
    num_pages: int
    #: Deterministic scan instance number (lock-owner identity in traces).
    seq: int = 0
    current_page: int = 0
    consumers: List[ScanConsumer] = field(default_factory=list)
    running: bool = False
    total_pages_scanned: int = 0
    #: Monotonic page-visit counter (never wraps with current_page).
    visit_seq: int = 0
    #: The scanner process currently driving this scan (crash target).
    scanner_proc: Any = None
    #: Buffer-pool stream identity of the shared scanner itself.
    stream: Any = field(default_factory=next_stream)


class CircularScanManager:
    """Owns one circular scan per table, on demand."""

    def __init__(self, engine):
        self.engine = engine
        self.sim = engine.sim
        self.sm = engine.sm
        self.scans: Dict[str, CircularScan] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def serve(self, packet: Packet) -> Generator:
        """Coroutine (runs in an FScan worker): attach *packet* as a
        consumer and wait until its full pass completes.

        Returns False (without attaching) when wrap-around sharing is
        disabled and the scanner is already mid-file -- the caller then
        falls back to a standalone scan (the naive-sharing ablation).
        """
        plan = packet.plan
        table = plan.table
        base = self.sm.catalog.table_schema(table)
        filter_fn = plan.predicate.bind(base) if plan.predicate else None
        project_fn = (
            base.projector(plan.project) if plan.project is not None else None
        )
        # Late activation: wait for the consumer to flag readiness.
        if getattr(self.engine.config, "late_activation", True):
            yield from packet.primary_output.wait_activated()

        scan = self.scans.get(table)
        if (
            scan is not None
            and scan.running
            and scan.current_page != 0
            and not getattr(self.engine.config, "circular_wraparound", True)
        ):
            return False
        done = Event(self.sim)
        done.describe = f"circular scan of {table}"
        consumer = ScanConsumer(
            packet=packet,
            filter_fn=filter_fn,
            project_fn=project_fn,
            pages_remaining=self.sm.num_pages(table),
            done=done,
        )
        if scan is None or not scan.running:
            scan = CircularScan(
                table=table,
                num_pages=self.sm.num_pages(table),
                seq=self._seq,
            )
            self._seq += 1
            scan.running = True
            scan.consumers.append(consumer)
            self.scans[table] = scan
            self.sim.tracer.osp(
                "circular_start", packet=packet.packet_id, table=table
            )
            scan.scanner_proc = self.sim.spawn(
                self._scanner(scan), name=f"scanner-{table}"
            )
        else:
            # Attach at the scanner's current position; the new
            # termination point is one full cycle from here.
            scan.consumers.append(consumer)
            self.engine.osp_stats.record_attach("fscan-circular", packet)
            self.sim.tracer.osp(
                "circular_attach",
                packet=packet.packet_id,
                table=table,
                position=scan.current_page,
            )
        yield consumer.done
        return True

    # ------------------------------------------------------------------
    def _scanner(self, scan: CircularScan) -> Generator:
        """The dedicated scanner thread for one relation.

        The scanner is the *host* of every attached scan: its death must
        not fail its sharers.  A crash (interrupt) while consumers remain
        restarts the scan thread at the current position -- per-consumer
        ``last_visit`` marks keep page delivery exactly-once across the
        restart.  An unrecoverable storage fault aborts the consumers'
        queries with the typed error instead of hanging them.
        """
        sm = self.sm
        # Section 4.3.4: the shared scan holds a shared table lock, so it
        # (and all its satellites with it) waits out concurrent writers.
        owner = ("scanner", scan.table, scan.seq)
        try:
            yield sm.locks.acquire(owner, scan.table, LockMode.SHARED)
            yield from self._scan_loop(scan)
        except Interrupted:
            if scan.consumers and self.scans.get(scan.table) is scan:
                self.sim.tracer.osp(
                    "scanner_restart",
                    table=scan.table,
                    position=scan.current_page,
                    consumers=len(scan.consumers),
                )
                scan.scanner_proc = self.sim.spawn(
                    self._scanner(scan), name=f"scanner-{scan.table}"
                )
            else:
                self._unregister(scan)
                for consumer in list(scan.consumers):
                    self._finish(scan, consumer)
        except FaultError as exc:
            self.sim.tracer.fault(
                "scan_failed", table=scan.table, error=type(exc).__name__
            )
            self._unregister(scan)
            for consumer in list(scan.consumers):
                query = consumer.packet.query
                if query.engine is not None and not query.aborted:
                    query.engine.abort_query(query, str(exc), exc)
                self._finish(scan, consumer)
        finally:
            sm.locks.release_if_held(owner, scan.table)

    def _unregister(self, scan: CircularScan) -> None:
        scan.running = False
        if self.scans.get(scan.table) is scan:
            del self.scans[scan.table]

    def _scan_loop(self, scan: CircularScan) -> Generator:
        sm = self.sm
        while scan.consumers:
            page = yield from sm.read_table_page(
                scan.table, scan.current_page, scan=True, stream=scan.stream
            )
            rows = page.rows()
            scan.total_pages_scanned += 1
            shared_consumers = len(scan.consumers)
            if shared_consumers > 1:
                self.engine.osp_stats.shared_page_deliveries += (
                    shared_consumers - 1
                )
            for consumer in list(scan.consumers):
                if consumer.done.triggered:
                    continue
                if consumer.last_visit == scan.visit_seq:
                    continue  # delivered before a mid-page scanner crash
                status = yield from self._deliver(consumer, rows, scan)
                if status == "gone":
                    self._finish(scan, consumer)
                    continue
                if status == "stalled":
                    # Section 3.3: do not hold everyone to the slowest
                    # consumer forever -- cut it loose.
                    self._detach(scan, consumer)
                    continue
                self._mark_delivered(scan, consumer)
                if consumer.pages_remaining <= 0:
                    self._finish(scan, consumer)
            scan.visit_seq += 1
            scan.current_page = (scan.current_page + 1) % scan.num_pages
        self._unregister(scan)

    @staticmethod
    def _mark_delivered(scan: CircularScan, consumer: ScanConsumer) -> None:
        consumer.last_visit = scan.visit_seq
        consumer.pages_remaining -= 1
        consumer.delivered_pages += 1
        # Lineage sees the delivery only once it is complete (the put
        # accepted), under the *consumer's* identity: each sharer of the
        # circular scan tracks its own wrapped page order from wherever
        # it attached.
        lineage = consumer.packet.query.lineage
        if lineage is not None:
            lineage.scan_page(
                consumer.packet.stream, scan.table, scan.current_page,
                consumer.last_out, scan.num_pages,
            )

    @property
    def _patience(self) -> float:
        """How long the scanner waits on one consumer before detaching it.

        Section 3.3: a consumer that cannot keep up must not hold the
        shared scan hostage -- "it will need to detach from the rest of
        the scans".  A few page-service-times of grace absorbs normal
        jitter without coupling everyone to a stalled pipeline.
        """
        configured = getattr(self.engine.config, "scan_detach_patience", None)
        if configured is not None:
            return configured
        disk = self.engine.host.config
        return 5.0 * (disk.disk_seek_time + disk.disk_transfer_time)

    def _deliver(self, consumer: ScanConsumer, rows, scan: CircularScan) -> Generator:
        """Coroutine: filter/project *rows* for one consumer and push them.

        Returns "gone" when the consumer went away, "stalled" when it
        timed out (caller detaches it), "ok" otherwise.
        """
        packet = consumer.packet
        if packet.output.closed or packet.query.aborted:
            return "gone"
        yield from self.engine.engines["fscan"].charge(packet, len(rows))
        out = rows
        if consumer.filter_fn is not None:
            out = [row for row in out if consumer.filter_fn(row)]
        if consumer.project_fn is not None:
            out = [consumer.project_fn(row) for row in out]
        consumer.last_out = len(out)
        if out:
            before = packet.primary_output.tuples_in
            try:
                accepted = yield from packet.primary_output.put_with_patience(
                    out, self._patience
                )
            except ChannelClosed:
                return "gone"
            except Interrupted:
                # The scanner was killed mid-put.  If the batch slipped
                # in before the interrupt landed, record the delivery so
                # the restarted scanner skips this consumer for this page.
                if packet.primary_output.tuples_in > before:
                    self._mark_delivered(scan, consumer)
                raise
            if not accepted:
                return "stalled"
        return "ok"

    def _detach(self, scan: CircularScan, consumer: ScanConsumer) -> None:
        """Cut a stalled consumer loose with a private catch-up scan."""
        if consumer in scan.consumers:
            scan.consumers.remove(consumer)
        self.engine.osp_stats.scan_detaches += 1
        self.sim.tracer.osp(
            "scan_detach",
            packet=consumer.packet.packet_id,
            table=scan.table,
            position=scan.current_page,
            remaining=consumer.pages_remaining,
        )
        self.sim.spawn(
            self._catchup(consumer, scan.table, scan.current_page,
                          scan.num_pages),
            name=f"catchup-{scan.table}",
        )

    def _catchup(
        self,
        consumer: ScanConsumer,
        table: str,
        start_page: int,
        num_pages: int,
    ) -> Generator:
        """A detached consumer's private scan over its remaining pages.

        Proceeds at the consumer's own pace (blocking puts) from the
        position where it fell off the shared scanner, wrapping at EOF.
        """
        sm = self.sm
        packet = consumer.packet
        page_no = start_page
        try:
            while consumer.pages_remaining > 0:
                page = yield from sm.read_table_page(
                    table, page_no, scan=True, stream=consumer.stream
                )
                status = yield from self._deliver_blocking(consumer, page.rows())
                if not status:
                    break
                consumer.pages_remaining -= 1
                consumer.delivered_pages += 1
                lineage = packet.query.lineage
                if lineage is not None:
                    lineage.scan_page(
                        packet.stream, table, page_no,
                        consumer.last_out, num_pages,
                    )
                page_no = (page_no + 1) % num_pages
        except ChannelClosed:
            pass
        except FaultError as exc:
            # A private catch-up scan failing affects only its own query.
            query = packet.query
            if query.engine is not None and not query.aborted:
                query.engine.abort_query(query, str(exc), exc)
        self._finish(None, consumer)

    def _deliver_blocking(self, consumer: ScanConsumer, rows) -> Generator:
        packet = consumer.packet
        if packet.output.closed:
            return False
        yield from self.engine.engines["fscan"].charge(packet, len(rows))
        out = rows
        if consumer.filter_fn is not None:
            out = [row for row in out if consumer.filter_fn(row)]
        if consumer.project_fn is not None:
            out = [consumer.project_fn(row) for row in out]
        consumer.last_out = len(out)
        if out:
            try:
                yield from packet.primary_output.put(out)
            except ChannelClosed:
                return False
        return True

    def _finish(self, scan, consumer: ScanConsumer) -> None:
        if scan is not None and consumer in scan.consumers:
            scan.consumers.remove(consumer)
        if not consumer.packet.output.closed:
            consumer.packet.output.close()
        if not consumer.done.triggered:
            consumer.done.succeed()
