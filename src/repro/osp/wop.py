"""The window-of-opportunity (WoP) model of section 3.2.

Figure 4a classifies relational operations into four overlap types by the
cost saving a newly-arrived identical operation (Q2) can realise as a
function of the in-progress operation's (Q1) progress:

* ``LINEAR`` -- Q2 gains the *remaining* fraction (unordered scans).
* ``STEP``   -- Q2 gains 100% until the first output tuple, then 0
  (group-by, join probe/merge phases, nested-loop join).
* ``FULL``   -- Q2 gains 100% for the whole lifetime (single aggregates,
  sort phase, hash-join build, RID-list creation).
* ``SPIKE``  -- Q2 gains 100% only at exactly t=0 (ordered scans).

Figure 4b adds two enhancement functions: *buffering* (a ring of recent
output widens step/spike windows) and *materialisation* (retaining the
result converts spike to linear at reduced slope).

This module is the analytic model; the micro-engines realise the same
windows operationally.  The WoP microbenchmark (benchmarks fig4) checks
the measured gains against :func:`expected_gain`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OverlapClass(enum.Enum):
    LINEAR = "linear"
    STEP = "step"
    FULL = "full"
    SPIKE = "spike"


#: Default classification of each operation's phases (section 3.2 text).
OPERATOR_PHASES = {
    "table_scan_unordered": [("scan", OverlapClass.LINEAR)],
    "table_scan_ordered": [("scan", OverlapClass.SPIKE)],
    "clustered_index_scan_unordered": [("scan", OverlapClass.LINEAR)],
    "clustered_index_scan_ordered": [("scan", OverlapClass.SPIKE)],
    "unclustered_index_scan": [
        ("rid_list", OverlapClass.FULL),
        ("fetch", OverlapClass.LINEAR),
    ],
    "sort": [
        ("sort", OverlapClass.FULL),
        ("emit", OverlapClass.LINEAR),
    ],
    "single_aggregate": [("aggregate", OverlapClass.FULL)],
    "group_by": [("group", OverlapClass.STEP)],
    "nested_loop_join": [("join", OverlapClass.STEP)],
    "merge_join": [("merge", OverlapClass.STEP)],
    "hash_join": [
        ("build", OverlapClass.FULL),
        ("probe", OverlapClass.STEP),
    ],
}


@dataclass(frozen=True)
class WoPProfile:
    """The effective window after enhancement functions are applied.

    Args:
        overlap: the base overlap class.
        buffer_fraction: fraction of Q1's total output the replay ring can
            hold (buffering enhancement; widens step/spike).
        materialized: whether results are retained for re-emission
            (materialisation enhancement; converts spike/step to linear).
        materialize_efficiency: slope discount for the materialised path
            (re-reading stored results is not free).
    """

    overlap: OverlapClass
    buffer_fraction: float = 0.0
    materialized: bool = False
    materialize_efficiency: float = 1.0


def expected_gain(profile: WoPProfile, progress: float) -> float:
    """Q2's expected cost saving (0..1) when it arrives at *progress*.

    *progress* is Q1's completed fraction in [0, 1].  This reproduces the
    shapes of Figure 4a/4b analytically.
    """
    if not 0.0 <= progress <= 1.0:
        raise ValueError(f"progress must be in [0, 1]: {progress}")
    overlap = profile.overlap
    if profile.materialized and overlap in (
        OverlapClass.SPIKE,
        OverlapClass.STEP,
    ):
        # Materialisation converts to linear with a reduced slope.
        return profile.materialize_efficiency * (1.0 - progress)

    if overlap is OverlapClass.FULL:
        return 1.0 if progress < 1.0 else 0.0
    if overlap is OverlapClass.LINEAR:
        return 1.0 - progress
    if overlap is OverlapClass.STEP:
        # The step falls when the first output appears; buffering delays
        # that point by the buffered fraction.
        threshold = profile.buffer_fraction
        return 1.0 if progress <= threshold else 0.0
    # SPIKE: only an exactly-simultaneous arrival can share, unless
    # buffering holds the prefix produced so far.
    threshold = profile.buffer_fraction
    return 1.0 if progress <= threshold else 0.0
