"""On-demand simultaneous pipelining (OSP) support.

The pieces every micro-engine shares (Figure 6a):

* :mod:`repro.osp.wop` -- the window-of-opportunity model of section 3.2
  (overlap classes, enhancement functions, expected-gain curves).
* :mod:`repro.osp.circular` -- circular scans with per-consumer
  termination points and late activation (section 4.3.1).
* :mod:`repro.osp.deadlock` -- the buffer-state waits-for-graph deadlock
  detector with cost-based materialisation (section 4.3.3).
* :mod:`repro.osp.stats` -- sharing statistics for the harness.

The attach/terminate/copy/fan-out procedure itself (Figure 6b) lives in
:class:`repro.engine.micro_engine.MicroEngine`, since every micro-engine
embeds its own OSP coordinator.
"""

from repro.osp.circular import CircularScanManager
from repro.osp.deadlock import DeadlockDetector
from repro.osp.stats import OspStats
from repro.osp.wop import OverlapClass, expected_gain

__all__ = [
    "CircularScanManager",
    "DeadlockDetector",
    "OspStats",
    "OverlapClass",
    "expected_gain",
]
