"""Pipeline-deadlock detection and resolution (section 4.3.3).

Simultaneous pipelining turns query plans into a shared dataflow graph;
fan-out producers run at the speed of their slowest consumer, so loops in
the combined plans can deadlock (the crossed-scans scenario of section
3.3).  Following the paper (and its companion report [30]), we build a
waits-for graph from *buffer states* alone:

* a producer blocked on a **full** buffer waits for that buffer's
  consumer packet;
* a consumer blocked on an **empty** buffer waits for its producer packet.

A cycle is a real deadlock.  We resolve it by *materialising* one buffer
on the cycle -- removing its back-pressure, which is the in-simulation
equivalent of spilling the stream to disk -- choosing the candidate with
the lowest estimated materialisation cost (fewest tuples currently
queued, the proxy we have for the paper's "optimal set of nodes").
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

from repro.engine.buffers import TupleBuffer
from repro.engine.packets import PacketState


class DeadlockDetector:
    """Periodic waits-for-graph scan over the engine's live buffers."""

    def __init__(self, engine, period: float = 0.5):
        self.engine = engine
        self.sim = engine.sim
        self.period = period
        self.resolved: List[TupleBuffer] = []
        self._running = False

    def ensure_running(self) -> None:
        """Start the periodic sweep; it parks itself once the engine goes
        idle so the simulation can drain."""
        if not self._running:
            self._running = True
            self.sim.spawn(self._loop(), name="deadlock-detector")

    def _loop(self) -> Generator:
        while self.engine.active_queries > 0:
            yield self.sim.timeout(self.period)
            self.check_once()
        self._running = False

    # ------------------------------------------------------------------
    def check_once(self) -> Optional[List[TupleBuffer]]:
        """One detection pass; returns the cycle's buffers if one was
        found (after resolving it), else None."""
        buffers = [
            buf
            for buf in self.engine.live_buffers()
            if not buf.closed
        ]
        # Build the waits-for graph over packet nodes.
        edges: Dict[object, Set[object]] = {}
        blocking_buffer: Dict[tuple, TupleBuffer] = {}
        for buf in buffers:
            producer, consumer = buf.producer, buf.consumer
            if producer is None or consumer is None:
                continue
            # Stale edge: a completed/aborted endpoint is not waiting on
            # anything; treating it as a node would manufacture phantom
            # cycles (and materialise innocent buffers) during teardown.
            if self._stale(producer) or self._stale(consumer):
                continue
            if buf.full and buf.blocked_producers():
                edges.setdefault(producer, set()).add(consumer)
                blocking_buffer[(producer, consumer)] = buf
            if buf.empty and buf.blocked_consumers():
                edges.setdefault(consumer, set()).add(producer)
        cycle = self._find_cycle(edges)
        if cycle is None:
            return None
        # Candidate resolutions: the full buffers along the cycle.
        candidates = []
        for i, node in enumerate(cycle):
            succ = cycle[(i + 1) % len(cycle)]
            buf = blocking_buffer.get((node, succ))
            if buf is not None:
                candidates.append(buf)
        if not candidates:
            return None
        victim = min(candidates, key=lambda buf: buf.level)
        self.sim.tracer.osp(
            "deadlock_resolved",
            buffer=victim.name,
            level=victim.level,
            cycle_size=len(cycle),
        )
        victim.materialize()
        self.resolved.append(victim)
        self.engine.osp_stats.deadlocks_resolved += 1
        return candidates

    @staticmethod
    def _stale(packet) -> bool:
        state = getattr(packet, "state", None)
        if state in (PacketState.DONE, PacketState.CANCELLED):
            return True
        query = getattr(packet, "query", None)
        return query is not None and getattr(query, "aborted", False)

    @staticmethod
    def _find_cycle(edges: Dict[object, Set[object]]) -> Optional[list]:
        """A cycle in the waits-for graph, as a node list, or None."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[object, int] = {}
        parent: Dict[object, object] = {}

        def visit(node) -> Optional[list]:
            color[node] = GREY
            for succ in edges.get(node, ()):
                state = color.get(succ, WHITE)
                if state == GREY:
                    # Unwind the grey path succ -> ... -> node.
                    cycle = [succ]
                    cursor = node
                    while cursor != succ:
                        cycle.append(cursor)
                        cursor = parent[cursor]
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    parent[succ] = node
                    found = visit(succ)
                    if found is not None:
                        return found
            color[node] = BLACK
            return None

        for node in list(edges):
            if color.get(node, WHITE) == WHITE:
                found = visit(node)
                if found is not None:
                    return found
        return None
