"""Sharing statistics: what OSP actually saved, per micro-engine."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class OspStats:
    """Counters the harness reads after each experiment."""

    #: satellite attaches per micro-engine name
    attaches: Counter = field(default_factory=Counter)
    #: circular-scan page deliveries that avoided a dedicated read
    shared_page_deliveries: int = 0
    #: packets served standalone (no sharing opportunity found)
    solo_packets: Counter = field(default_factory=Counter)
    #: sort re-emissions from materialised results (section 4.3, sort WoP)
    sort_reemissions: int = 0
    #: order-sensitive scans shared via the two-pass strategy (4.3.2)
    mj_splits: int = 0
    #: order-sensitive split opportunities rejected by the cost model
    mj_splits_rejected: int = 0
    #: pipeline deadlocks resolved by materialising a buffer (4.3.3)
    deadlocks_resolved: int = 0
    #: stalled consumers cut loose from a shared scan (section 3.3)
    scan_detaches: int = 0

    def record_attach(self, engine_name: str, _packet=None) -> None:
        self.attaches[engine_name] += 1

    def record_solo(self, engine_name: str) -> None:
        self.solo_packets[engine_name] += 1

    @property
    def total_attaches(self) -> int:
        return sum(self.attaches.values())

    def summary(self) -> str:
        lines = ["OSP sharing summary:"]
        for name, count in sorted(self.attaches.items()):
            lines.append(f"  attaches[{name}] = {count}")
        lines.append(f"  shared page deliveries = {self.shared_page_deliveries}")
        lines.append(f"  sort re-emissions      = {self.sort_reemissions}")
        lines.append(f"  merge-join splits      = {self.mj_splits}")
        lines.append(f"  deadlocks resolved     = {self.deadlocks_resolved}")
        lines.append(f"  scan detaches          = {self.scan_detaches}")
        return "\n".join(lines)
