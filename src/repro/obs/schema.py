"""The declared registry of every trace event the engine may emit.

Each event the :class:`~repro.obs.tracer.Tracer` records has a dotted
name (``packet.dispatch``, ``pool.hit``) drawn from this module's
:data:`EVENTS` registry, together with the set of fields every instance
must carry.  The registry is the single source of truth that two
enforcement layers share:

* **runtime** -- :meth:`Tracer.event` rejects names outside
  :data:`EVENT_NAMES` (a cheap frozenset lookup; the
  :class:`~repro.obs.tracer.NullTracer` skips it entirely), so a typo'd
  emit fails at the call site instead of producing a trace the
  :class:`~repro.obs.invariants.InvariantChecker` silently ignores;
* **static** -- the ``TRC`` rules of :mod:`repro.lint` resolve every
  literal emit call site against the same registry, so an unregistered
  name or a missing required field is flagged before the code ever runs.

Dynamic event families (``osp.*``, ``pool.*``, ``lock.*``, ``fault.*``,
``proc.*``) are emitted through f-strings such as ``f"osp.{etype}"``;
the registry enumerates their allowed suffixes so "dynamic" never means
"unchecked".

Adding an event is one :func:`_event` line here; both layers pick it up
with no further wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Tuple


@dataclass(frozen=True)
class EventSpec:
    """One registered trace event: its name, required fields, meaning."""

    name: str
    #: Fields every instance must carry (beyond ``ts`` and ``type``).
    #: Extra event-specific fields are always allowed.
    required: Tuple[str, ...]
    doc: str


class UnknownTraceEvent(ValueError):
    """An emit used an event name missing from :data:`EVENTS`."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"trace event {name!r} is not in the repro.obs.schema registry; "
            f"register it in EVENTS before emitting it"
        )


class TraceFieldError(ValueError):
    """An emitted event lacked one of its registry-required fields."""


EVENTS: Dict[str, EventSpec] = {}


def _event(name: str, required: Tuple[str, ...], doc: str) -> None:
    EVENTS[name] = EventSpec(name, required, doc)


# -- packet lifecycle (dispatcher / micro-engines) --------------------------
_PKT = ("packet", "query", "engine", "op")
_event("packet.create", _PKT + ("parent",),
       "A packet was built for one operator of a query plan.")
_event("packet.enqueue", _PKT,
       "The packet entered its micro-engine's input queue.")
_event("packet.dispatch", _PKT,
       "A worker thread picked the packet up and started executing it.")
_event("packet.complete", _PKT + ("satellite",),
       "The packet finished producing output (standalone or satellite).")
_event("packet.cancel", _PKT + ("reason",),
       "The packet was cancelled (subtree kill, query abort).")
_event("packet.attach", _PKT + ("host", "mechanism"),
       "OSP attached the packet to a compatible in-progress host packet; "
       "carries the window-of-opportunity evidence for the decision.")
_event("packet.detach", _PKT + ("reason",),
       "A satellite was cut loose from its host (host died or stalled) "
       "and will re-execute privately.")

# -- query lifecycle --------------------------------------------------------
_event("query.abort", ("query", "reason"),
       "A whole query was aborted; all of its packets get cancelled.")

# -- OSP coordinator decisions ----------------------------------------------
_event("osp.circular_start", ("packet", "table"),
       "A dedicated circular scanner thread started for a relation.")
_event("osp.circular_attach", ("packet", "table", "position"),
       "A scan packet attached to the circular scanner mid-file.")
_event("osp.scanner_restart", ("table", "position", "consumers"),
       "A crashed scanner thread restarted at its current position.")
_event("osp.scan_detach", ("packet", "table", "position", "remaining"),
       "A stalled consumer was detached into a private catch-up scan.")
_event("osp.mj_split_rejected", ("packet", "host", "saved", "extra"),
       "A merge-join split failed its worst-case cost check (4.3.2).")
_event("osp.deadlock_resolved", ("buffer", "level", "cycle_size"),
       "The deadlock detector materialised one buffer to break a cycle.")

# -- generalized sharing (query folding) ------------------------------------
_event("fold.group_start", ("table", "host"),
       "A fold group opened around a scan packet; later similar queries "
       "may ride its widened scan.")
_event("fold.widen", ("table", "host", "terms"),
       "A member's predicate was unioned into the group's wide scan "
       "predicate before any page was filtered.")
_event("fold.reject", ("table", "query", "reason"),
       "A candidate query failed the subsumption test or the "
       "window-of-opportunity cost rule and dispatched normally.")
_event("fold.seal", ("table", "host", "reason"),
       "The group stopped admitting members (survivor ring overflowed); "
       "existing members are unaffected.")
_event("fold.unfold", ("packet", "host", "reason"),
       "A fold member fell back to private re-execution (host crashed, "
       "was cancelled, or hit its deadline mid-fold).")
_event("fold.complete", ("table", "host", "members", "pages"),
       "The group's single wide scan finished; every member received its "
       "residual-filtered rows or merged aggregate exactly once.")

# -- buffer pool ------------------------------------------------------------
_POOL = ("file", "block")
_event("pool.hit", _POOL, "Page found in the pool (or a scan ring).")
_event("pool.miss", _POOL, "Page absent; this process performs the read.")
_event("pool.coalesced", _POOL,
       "Request piggybacked on another process's in-flight read.")
_event("pool.evict", _POOL, "A frame was evicted to make room.")
_event("pool.pin", _POOL, "A frame was pinned (unevictable).")
_event("pool.unpin", _POOL, "A pinned frame was released.")

# -- lock manager -----------------------------------------------------------
_LCK = ("owner", "resource")
_event("lock.acquire", _LCK, "A table lock was granted to an owner.")
_event("lock.release", _LCK, "A table lock was released by its owner.")

# -- fault injection / recovery ---------------------------------------------
_event("fault.retry", ("file", "block", "attempt", "error"),
       "A transient disk fault; the pool retries with backoff.")
_event("fault.giveup", ("file", "block", "attempt", "error"),
       "A permanent fault or exhausted retry budget; the error re-raises.")
_event("fault.scan_failed", ("table", "error"),
       "A circular scan died on an unrecoverable storage fault.")
_event("fault.disk_slow", ("file", "block", "extra"),
       "Injected: a disk read was slowed by extra latency.")
_event("fault.disk_error", ("file", "block", "transient"),
       "Injected: a disk read failed.")
_event("fault.page_corrupt", ("file", "block", "transient"),
       "Injected: a page was corrupted; the checksum check will catch it.")
_event("fault.query_crash", ("query",),
       "Injected: a running query's process was crashed.")
_event("fault.scanner_crash", ("table", "position"),
       "Injected: a circular scanner thread was killed mid-scan.")
_event("fault.client_disconnect", ("client",),
       "Injected: a client process disconnected mid-query.")
_event("fault.log_error", ("query", "transient"),
       "Injected: the next lineage-log flush fails with a write error.")
_event("fault.log_torn", ("query",),
       "Injected: the next flushed lineage record is torn (bad checksum).")

# -- write-ahead lineage / mid-query recovery -------------------------------
_event("lineage.append", ("query", "seq", "kind"),
       "A lineage record entered the per-query log buffer (not yet "
       "durable).")
_event("lineage.flush", ("query", "upto", "blocks"),
       "Buffered lineage records were forced to the log device.")
_event("lineage.torn", ("query", "seq"),
       "A durable lineage record failed its checksum; the durable "
       "frontier truncates strictly before it.")
_event("lineage.disabled", ("query", "reason"),
       "Lineage recording stopped (log device failure); recovery "
       "degrades to clean restart.")
_event("lineage.checkpoint", ("query", "rows", "pages"),
       "An operator-state checkpoint was logged at a page-aligned "
       "input frontier.")
_event("lineage.recover", ("query", "mode", "position", "pages_saved",
                           "rows_kept", "attempt"),
       "A crashed query resumed from its last durable lineage frontier.")
_event("lineage.restart", ("query", "attempt", "reason"),
       "A crashed query had no usable durable frontier and restarted "
       "from scratch.")

# -- network fabric (sharded multi-host execution) --------------------------
_NET = ("src", "dst", "bytes", "frames", "tag")
_event("net.send", _NET,
       "A framed message finished serializing onto the source host's "
       "NIC send queue (bytes are whole-frame wire bytes).")
_event("net.recv", _NET,
       "A framed message completed store-and-forward delivery through "
       "the destination host's NIC receive queue.")

# -- exchange operators (gather / shuffle / broadcast edges) -----------------
_event("exchange.start", ("query", "kind", "shards"),
       "An exchange edge opened between plan fragments: rows will move "
       "between shards (kind: gather | shuffle | broadcast).")
_event("exchange.batch", ("query", "kind", "src", "dst", "rows", "bytes"),
       "One columnar batch of rows crossed a shard boundary (bytes are "
       "payload bytes before frame rounding; loopback batches are free).")
_event("exchange.done", ("query", "kind", "rows", "bytes"),
       "The exchange edge drained: total rows moved and payload bytes.")

# -- sharded query execution -------------------------------------------------
_event("shard.query_start", ("query", "strategy", "shards"),
       "A distributed plan started (strategy: local | gather | shuffle "
       "| broadcast).")
_event("shard.fragment_start", ("query", "shard", "op"),
       "One shard began executing its local plan fragment.")
_event("shard.fragment_done", ("query", "shard", "rows"),
       "A shard's local fragment finished with this many output rows.")
_event("shard.query_done", ("query", "strategy", "rows"),
       "The coordinator assembled the final result of a distributed "
       "plan.")

# -- simulation kernel ------------------------------------------------------
_event("proc.spawn", ("name",), "A simulation process was spawned.")
_event("proc.interrupt", ("name",), "A simulation process was interrupted.")


#: Every registered full event name (the runtime membership check).
EVENT_NAMES: FrozenSet[str] = frozenset(EVENTS)

#: Dynamic family prefix -> allowed suffixes (``"osp" -> {"scan_detach",
#: ...}``).  A family method emitting ``f"{family}.{etype}"`` must use a
#: suffix from this table.
FAMILIES: Dict[str, FrozenSet[str]] = {}
for _name in EVENT_NAMES:
    _prefix, _, _suffix = _name.partition(".")
    FAMILIES.setdefault(_prefix, frozenset())
    FAMILIES[_prefix] = FAMILIES[_prefix] | {_suffix}
del _name, _prefix, _suffix


def is_registered(name: str) -> bool:
    """Whether *name* is a declared event (cheap frozenset lookup)."""
    return name in EVENT_NAMES


def required_fields(name: str) -> Tuple[str, ...]:
    """The fields every instance of *name* must carry."""
    return EVENTS[name].required


def family_suffixes(prefix: str) -> FrozenSet[str]:
    """Allowed suffixes of a dynamic family (empty set when unknown)."""
    return FAMILIES.get(prefix, frozenset())


def validate_event(record: Dict[str, Any]) -> None:
    """Full validation of one recorded event dict (tests and tools).

    Raises :class:`UnknownTraceEvent` for an unregistered ``type`` and
    :class:`TraceFieldError` for a missing required field.  The hot-path
    runtime check in :meth:`Tracer.event` does only the (cheap) name
    membership half of this.
    """
    name = record.get("type")
    if name not in EVENT_NAMES:
        raise UnknownTraceEvent(str(name))
    if "ts" not in record:
        raise TraceFieldError(f"event {name!r} lacks a 'ts' timestamp")
    missing = [f for f in EVENTS[name].required if f not in record]
    if missing:
        raise TraceFieldError(
            f"event {name!r} lacks required field(s): {', '.join(missing)}"
        )


def catalogue() -> List[EventSpec]:
    """Every spec, sorted by name (documentation and reporters)."""
    return [EVENTS[name] for name in sorted(EVENTS)]
