"""Observability: packet-lifecycle tracing, trace analysis, invariants.

The subsystem has four parts:

* :mod:`repro.obs.tracer` -- the :class:`Tracer` that records typed
  events with virtual timestamps (and the allocation-free
  :class:`NullTracer` every simulator starts with);
* :mod:`repro.obs.export` -- deterministic JSONL plus Chrome
  ``trace_event`` renderings of a recorded trace;
* :mod:`repro.obs.query_trace` -- the per-query analysis API (critical
  path, wait-time breakdown);
* :mod:`repro.obs.invariants` -- the :class:`InvariantChecker` that
  replays a trace and asserts engine invariants.

Typical use::

    from repro.obs import InvariantChecker, Tracer

    tracer = Tracer(host.sim)          # installs itself on the simulator
    ... run queries ...
    InvariantChecker(tracer.events).assert_ok()
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_dumps,
    read_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.invariants import InvariantChecker, InvariantViolation
from repro.obs.query_trace import PacketTimeline, QueryTrace, query_ids
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "NULL_TRACER",
    "NullTracer",
    "PacketTimeline",
    "QueryTrace",
    "Tracer",
    "chrome_trace",
    "jsonl_dumps",
    "query_ids",
    "read_jsonl",
    "write_chrome",
    "write_jsonl",
]
