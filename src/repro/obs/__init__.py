"""Observability: packet-lifecycle tracing, trace analysis, invariants.

The subsystem has five parts:

* :mod:`repro.obs.schema` -- the declared registry of every trace event
  and its required fields; the tracer validates against it at runtime
  and the ``TRC`` rules of :mod:`repro.lint` validate against it
  statically;
* :mod:`repro.obs.tracer` -- the :class:`Tracer` that records typed
  events with virtual timestamps (and the allocation-free
  :class:`NullTracer` every simulator starts with);
* :mod:`repro.obs.export` -- deterministic JSONL plus Chrome
  ``trace_event`` renderings of a recorded trace;
* :mod:`repro.obs.query_trace` -- the per-query analysis API (critical
  path, wait-time breakdown);
* :mod:`repro.obs.invariants` -- the :class:`InvariantChecker` that
  replays a trace and asserts engine invariants.

Typical use::

    from repro.obs import InvariantChecker, Tracer

    tracer = Tracer(host.sim)          # installs itself on the simulator
    ... run queries ...
    InvariantChecker(tracer.events).assert_ok()
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_dumps,
    read_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.invariants import InvariantChecker, InvariantViolation
from repro.obs.query_trace import PacketTimeline, QueryTrace, query_ids
from repro.obs.schema import (
    EVENT_NAMES,
    EVENTS,
    TraceFieldError,
    UnknownTraceEvent,
    validate_event,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "EVENTS",
    "EVENT_NAMES",
    "InvariantChecker",
    "InvariantViolation",
    "NULL_TRACER",
    "NullTracer",
    "TraceFieldError",
    "UnknownTraceEvent",
    "validate_event",
    "PacketTimeline",
    "QueryTrace",
    "Tracer",
    "chrome_trace",
    "jsonl_dumps",
    "query_ids",
    "read_jsonl",
    "write_chrome",
    "write_jsonl",
]
