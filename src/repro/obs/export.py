"""Trace exporters: JSONL and Chrome ``trace_event`` format.

JSONL is the canonical on-disk format -- one JSON object per line, keys
sorted, minimal separators -- so that two identical runs produce
byte-identical files (the determinism guarantee DESIGN.md claims for the
whole simulation extends to its traces).

The Chrome export renders the same events for ``chrome://tracing`` /
Perfetto: each micro-engine becomes one *thread*, every served packet a
duration slice on its engine's thread, and attaches/OSP decisions
instant markers -- so simultaneous pipelining is literally visible as
one slice serving many queries.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

#: Chrome's ts unit is microseconds; the simulation clock is seconds.
_US = 1_000_000.0


def jsonl_dumps(events: Iterable[Dict[str, Any]]) -> str:
    """The deterministic JSONL rendering of *events* (one dict per line)."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    )


def write_jsonl(events: Iterable[Dict[str, Any]], path) -> None:
    """Write *events* to *path* as deterministic JSONL."""
    with open(path, "w") as handle:
        handle.write(jsonl_dumps(events))


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def chrome_trace(events: Iterable[Dict[str, Any]], process_name: str = "qpipe") -> dict:
    """Convert a trace to the Chrome ``trace_event`` JSON object format.

    Threads: one per micro-engine (named after it), plus ``bufferpool``,
    ``osp``, and ``kernel`` threads for the non-packet event families.
    Packet dispatch..complete pairs become complete ("X") slices; every
    other event an instant ("i") marker.
    """
    tids: Dict[str, int] = {}

    def tid_for(name: str) -> int:
        if name not in tids:
            tids[name] = len(tids) + 1
        return tids[name]

    out: List[dict] = []
    open_slices: Dict[str, Dict[str, Any]] = {}

    def instant(name: str, thread: str, ts: float, args: dict) -> None:
        out.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "i",
                "s": "t",
                "ts": ts * _US,
                "pid": 1,
                "tid": tid_for(thread),
                "args": args,
            }
        )

    for event in events:
        etype = event["type"]
        ts = event["ts"]
        if etype == "packet.dispatch":
            open_slices[event["packet"]] = event
            continue
        if etype == "packet.complete":
            start = open_slices.pop(event["packet"], None)
            begin = start["ts"] if start is not None else ts
            out.append(
                {
                    "name": f"{event['packet']}:{event['op']}",
                    "cat": "packet",
                    "ph": "X",
                    "ts": begin * _US,
                    "dur": (ts - begin) * _US,
                    "pid": 1,
                    "tid": tid_for(event["engine"]),
                    "args": {"query": event["query"]},
                }
            )
            continue
        if etype.startswith("packet."):
            args = {
                k: v for k, v in event.items() if k not in ("ts", "type")
            }
            instant(etype, event["engine"], ts, args)
        elif etype.startswith("pool."):
            instant(etype, "bufferpool", ts,
                    {"file": event["file"], "block": event["block"]})
        elif etype.startswith("osp."):
            args = {
                k: v for k, v in event.items() if k not in ("ts", "type")
            }
            instant(etype, "osp", ts, args)
        else:
            args = {
                k: v for k, v in event.items() if k not in ("ts", "type")
            }
            instant(etype, "kernel", ts, args)

    # Packets still running when the trace ended: emit zero-length slices.
    for start in open_slices.values():
        out.append(
            {
                "name": f"{start['packet']}:{start['op']}",
                "cat": "packet",
                "ph": "X",
                "ts": start["ts"] * _US,
                "dur": 0,
                "pid": 1,
                "tid": tid_for(start["engine"]),
                "args": {"query": start["query"], "unfinished": True},
            }
        )

    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for thread, tid in tids.items():
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_chrome(events: Iterable[Dict[str, Any]], path,
                 process_name: str = "qpipe") -> None:
    """Write the Chrome trace_event rendering of *events* to *path*."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(events, process_name), handle, sort_keys=True)
