"""Structured tracing of packet lifecycles, OSP decisions, and storage.

The tracer records *typed events* with virtual timestamps as the engine
runs.  Every event is a plain dict with at least ``ts`` (simulation
seconds) and ``type`` (a dotted name such as ``packet.dispatch`` or
``pool.hit``, declared in the :mod:`repro.obs.schema` registry --
unregistered names are rejected at emit time); the remaining keys are
event-specific and deliberately
restricted to deterministic values (packet ids, table names, counts --
never Python object ids), so two identical runs produce byte-identical
exports.

Event families:

* ``packet.*``  -- create / enqueue / dispatch / attach / cancel /
  complete, emitted by the dispatcher and the micro-engines.  Attach
  events carry the sharing *mechanism* (``generic``, ``sort-reemit``,
  ``mj-split``) plus the window-of-opportunity evidence the decision was
  based on, which is what :class:`~repro.obs.invariants.InvariantChecker`
  replays.
* ``osp.*``     -- coordinator decisions above single packets: circular
  scan attaches/detaches, rejected merge-join splits, deadlock
  resolutions.
* ``pool.*``    -- buffer pool hit / miss / coalesced / evict and the
  pin / unpin pairs the pin-balance invariant checks.
* ``proc.*``    -- simulation-kernel process spawn / interrupt.

The :class:`NullTracer` is the default on every
:class:`~repro.sim.kernel.Simulator`; all of its hooks are no-ops taking
positional arguments only, so instrumented hot paths (one call per page
access or per packet transition, never per tuple) allocate nothing when
tracing is off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.schema import (
    EVENT_NAMES,
    UnknownTraceEvent,
    family_suffixes,
)

def _family_names(family: str) -> Dict[str, str]:
    """Precomputed ``suffix -> "family.suffix"`` cache for one family.

    Family emit hooks (``pool``/``proc``/``osp``/``lock``/``fault``) are
    the per-page and per-packet hot paths; a dict lookup both validates
    the suffix against the schema registry and returns the interned full
    name, so no f-string is built per event.
    """
    return {suffix: f"{family}.{suffix}" for suffix in family_suffixes(family)}


_POOL_NAMES = _family_names("pool")
_PROC_NAMES = _family_names("proc")
_OSP_NAMES = _family_names("osp")
_LOCK_NAMES = _family_names("lock")
_FAULT_NAMES = _family_names("fault")
_LINEAGE_NAMES = _family_names("lineage")
_FOLD_NAMES = _family_names("fold")
_NET_NAMES = _family_names("net")
_EXCHANGE_NAMES = _family_names("exchange")
_SHARD_NAMES = _family_names("shard")


class NullTracer:
    """The disabled tracer: every hook is an allocation-free no-op."""

    enabled = False
    __slots__ = ()

    # -- packet lifecycle ----------------------------------------------------
    def packet_create(self, packet) -> None:
        pass

    def packet_enqueue(self, packet) -> None:
        pass

    def packet_dispatch(self, packet) -> None:
        pass

    def packet_complete(self, packet) -> None:
        pass

    def packet_cancel(self, packet, reason: str) -> None:
        pass

    def packet_attach(self, packet, host, mechanism: str, **window) -> None:
        pass

    def packet_detach(self, packet, reason: str) -> None:
        pass

    # -- query lifecycle -----------------------------------------------------
    def query_abort(self, query, reason: str) -> None:
        pass

    # -- OSP coordinator decisions ------------------------------------------
    def osp(self, etype: str, **fields) -> None:
        pass

    # -- buffer pool ---------------------------------------------------------
    def pool(self, etype: str, file_id: int, block_no: int) -> None:
        pass

    # -- lock manager --------------------------------------------------------
    def lock(self, etype: str, owner, resource) -> None:
        pass

    # -- fault injection / recovery ------------------------------------------
    def fault(self, etype: str, **fields) -> None:
        pass

    # -- write-ahead lineage / mid-query recovery ----------------------------
    def lineage(self, etype: str, **fields) -> None:
        pass

    # -- generalized sharing (query folding) ----------------------------------
    def fold(self, etype: str, **fields) -> None:
        pass

    # -- network fabric -------------------------------------------------------
    def net(self, etype: str, **fields) -> None:
        pass

    # -- exchange operators ---------------------------------------------------
    def exchange(self, etype: str, **fields) -> None:
        pass

    # -- sharded query execution ----------------------------------------------
    def shard(self, etype: str, **fields) -> None:
        pass

    # -- simulation kernel ---------------------------------------------------
    def proc(self, etype: str, name: str) -> None:
        pass


#: The shared disabled tracer every Simulator starts with.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """An enabled tracer accumulating events in memory.

    Args:
        sim: the simulator whose virtual clock stamps every event.
            The tracer installs itself as ``sim.tracer``.
    """

    enabled = True
    __slots__ = ("sim", "events")

    def __init__(self, sim):
        self.sim = sim
        self.events: List[Dict[str, Any]] = []
        sim.tracer = self

    def clear(self) -> None:
        self.events = []

    def __len__(self):
        return len(self.events)

    # ------------------------------------------------------------------
    def event(self, etype: str, **fields) -> None:
        """Record one raw event at the current virtual time.

        The name must come from the :mod:`repro.obs.schema` registry --
        the same registry the static ``TRC`` lint rules check emit call
        sites against -- so a typo'd event can never silently slip past
        the :class:`~repro.obs.invariants.InvariantChecker`.
        """
        if etype not in EVENT_NAMES:
            raise UnknownTraceEvent(etype)
        record: Dict[str, Any] = {"ts": self.sim.now, "type": etype}
        record.update(fields)
        self.events.append(record)

    def _packet(self, etype: str, packet, **extra) -> None:
        # Internal call sites only, all with literal registered names
        # (covered by the TRC lint rules), so the record is built directly
        # without the event() double-splat.
        record: Dict[str, Any] = {
            "ts": self.sim.now,
            "type": etype,
            "packet": packet.packet_id,
            "query": packet.query.query_id,
            "engine": packet.engine_name,
            "op": packet.plan.op_name,
        }
        if extra:
            record.update(extra)
        self.events.append(record)

    # -- packet lifecycle ----------------------------------------------------
    def packet_create(self, packet) -> None:
        parent = packet.parent
        self._packet(
            "packet.create",
            packet,
            parent=parent.packet_id if parent is not None else None,
        )

    def packet_enqueue(self, packet) -> None:
        self._packet("packet.enqueue", packet)

    def packet_dispatch(self, packet) -> None:
        self._packet("packet.dispatch", packet)

    def packet_complete(self, packet) -> None:
        self._packet(
            "packet.complete", packet, satellite=packet.host is not None
        )

    def packet_cancel(self, packet, reason: str) -> None:
        self._packet("packet.cancel", packet, reason=reason)

    def packet_attach(self, packet, host, mechanism: str, **window) -> None:
        self._packet(
            "packet.attach",
            packet,
            host=host.packet_id,
            mechanism=mechanism,
            **window,
        )

    def packet_detach(self, packet, reason: str) -> None:
        self._packet("packet.detach", packet, reason=reason)

    # -- query lifecycle -----------------------------------------------------
    def query_abort(self, query, reason: str) -> None:
        self.event("query.abort", query=query.query_id, reason=reason)

    # -- OSP coordinator decisions ------------------------------------------
    def osp(self, etype: str, **fields) -> None:
        name = _OSP_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"osp.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- lock manager --------------------------------------------------------
    def lock(self, etype: str, owner, resource) -> None:
        name = _LOCK_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"lock.{etype}")
        self.events.append(
            {
                "ts": self.sim.now,
                "type": name,
                "owner": repr(owner),
                "resource": str(resource),
            }
        )

    # -- fault injection / recovery ------------------------------------------
    def fault(self, etype: str, **fields) -> None:
        name = _FAULT_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"fault.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- write-ahead lineage / mid-query recovery ----------------------------
    def lineage(self, etype: str, **fields) -> None:
        name = _LINEAGE_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"lineage.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- generalized sharing (query folding) ----------------------------------
    def fold(self, etype: str, **fields) -> None:
        name = _FOLD_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"fold.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- network fabric -------------------------------------------------------
    def net(self, etype: str, **fields) -> None:
        name = _NET_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"net.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- exchange operators ---------------------------------------------------
    def exchange(self, etype: str, **fields) -> None:
        name = _EXCHANGE_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"exchange.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- sharded query execution ----------------------------------------------
    def shard(self, etype: str, **fields) -> None:
        name = _SHARD_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"shard.{etype}")
        record: Dict[str, Any] = {"ts": self.sim.now, "type": name}
        record.update(fields)
        self.events.append(record)

    # -- buffer pool ---------------------------------------------------------
    def pool(self, etype: str, file_id: int, block_no: int) -> None:
        # The per-page hot path: the cached-name lookup validates against
        # the registry and avoids any per-event string build.
        name = _POOL_NAMES.get(etype)
        if name is None:
            raise UnknownTraceEvent(f"pool.{etype}")
        self.events.append(
            {
                "ts": self.sim.now,
                "type": name,
                "file": file_id,
                "block": block_no,
            }
        )

    # -- simulation kernel ---------------------------------------------------
    def proc(self, etype: str, name: str) -> None:
        full = _PROC_NAMES.get(etype)
        if full is None:
            raise UnknownTraceEvent(f"proc.{etype}")
        self.events.append({"ts": self.sim.now, "type": full, "name": name})
