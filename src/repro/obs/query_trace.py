"""Per-query trace views: critical path and wait-time breakdowns.

A :class:`QueryTrace` slices one query's packets out of a full trace and
answers the questions Figure 1a asks of the paper's profiler: where did
the time go (queueing vs service, per micro-engine), and which chain of
packets actually bounded the response time?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class PacketTimeline:
    """One packet's lifecycle timestamps (None while the event is absent)."""

    packet_id: str
    engine: str = ""
    op: str = ""
    parent: Optional[str] = None
    children: List[str] = field(default_factory=list)
    created: Optional[float] = None
    enqueued: Optional[float] = None
    dispatched: Optional[float] = None
    attached: Optional[float] = None
    completed: Optional[float] = None
    cancelled: Optional[float] = None
    host: Optional[str] = None
    mechanism: Optional[str] = None

    @property
    def end(self) -> Optional[float]:
        """When the packet stopped mattering (completion or cancellation)."""
        if self.completed is not None:
            return self.completed
        return self.cancelled

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued before a worker picked the packet up."""
        if self.enqueued is None or self.dispatched is None:
            return 0.0
        return self.dispatched - self.enqueued

    @property
    def service(self) -> float:
        """Seconds between dispatch and completion (0 for satellites)."""
        if self.dispatched is None or self.completed is None:
            return 0.0
        return self.completed - self.dispatched


class QueryTrace:
    """All packet events of one query, indexed for analysis."""

    def __init__(self, events: Iterable[Dict[str, Any]], query_id: int):
        self.query_id = query_id
        self.packets: Dict[str, PacketTimeline] = {}
        for event in events:
            etype = event.get("type", "")
            if not etype.startswith("packet."):
                continue
            if event.get("query") != query_id:
                continue
            timeline = self.packets.get(event["packet"])
            if timeline is None:
                timeline = PacketTimeline(packet_id=event["packet"])
                self.packets[event["packet"]] = timeline
            timeline.engine = event["engine"]
            timeline.op = event["op"]
            ts = event["ts"]
            kind = etype.split(".", 1)[1]
            if kind == "create":
                timeline.created = ts
                timeline.parent = event.get("parent")
            elif kind == "enqueue":
                timeline.enqueued = ts
            elif kind == "dispatch":
                timeline.dispatched = ts
            elif kind == "attach":
                timeline.attached = ts
                timeline.host = event.get("host")
                timeline.mechanism = event.get("mechanism")
            elif kind == "complete":
                timeline.completed = ts
            elif kind == "cancel":
                timeline.cancelled = ts
        for timeline in self.packets.values():
            if timeline.parent is not None and timeline.parent in self.packets:
                self.packets[timeline.parent].children.append(
                    timeline.packet_id
                )

    # ------------------------------------------------------------------
    @property
    def root(self) -> Optional[PacketTimeline]:
        """The query's root packet (created first among parentless ones)."""
        roots = [t for t in self.packets.values() if t.parent is None]
        if not roots:
            return None
        return min(roots, key=lambda t: (t.created or 0.0, t.packet_id))

    def critical_path(self) -> List[PacketTimeline]:
        """Root-to-leaf chain of packets that bounded the response time.

        From the root downward, always follows the child that finished
        last (ties broken by packet id for determinism); stops at a
        packet with no traced children.
        """
        path: List[PacketTimeline] = []
        node = self.root
        while node is not None:
            path.append(node)
            children = [self.packets[c] for c in node.children]
            children = [c for c in children if c.end is not None]
            if not children:
                break
            node = max(children, key=lambda c: (c.end, c.packet_id))
        return path

    def wait_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-micro-engine totals of queue wait vs service seconds.

        The Figure 1a-style question: which operators did this query
        actually spend its life in, and how much of that was waiting for
        a worker rather than doing work?
        """
        out: Dict[str, Dict[str, float]] = {}
        for timeline in self.packets.values():
            slot = out.setdefault(
                timeline.engine, {"queue_wait": 0.0, "service": 0.0}
            )
            slot["queue_wait"] += timeline.queue_wait
            slot["service"] += timeline.service
        return out

    def response_time(self) -> float:
        """First create to last completion over this query's packets."""
        starts = [t.created for t in self.packets.values()
                  if t.created is not None]
        ends = [t.end for t in self.packets.values() if t.end is not None]
        if not starts or not ends:
            return 0.0
        return max(ends) - min(starts)

    def shared_packets(self) -> List[PacketTimeline]:
        """Packets this query got for free by attaching to another's."""
        return [t for t in self.packets.values() if t.attached is not None]


def query_ids(events: Iterable[Dict[str, Any]]) -> List[int]:
    """All query ids appearing in packet events, in first-seen order."""
    seen: List[int] = []
    for event in events:
        if event.get("type", "").startswith("packet."):
            qid = event.get("query")
            if qid is not None and qid not in seen:
                seen.append(qid)
    return seen
